"""Reproduction of "Reconfigurable Asynchronous Pipelines: from Formal Models
to Silicon" (Sokolov, de Gennaro, Mokhov -- DATE 2018).

The package is organised around the paper's tool-chain:

``repro.dfs``
    The Dataflow Structures (DFS) formalism -- the paper's main contribution.
    Node types (logic, register, control, push, pop), enabling equations,
    token-level simulation and translation to Petri nets.

``repro.petri``
    A Petri-net substrate with read arcs, explicit-state reachability and
    standard property checks (deadlock, persistence, boundedness).

``repro.reach``
    A small Reach-like predicate language for custom functional properties.

``repro.sdfs``
    The Static Dataflow Structures baseline (logic and plain registers only).

``repro.verification``
    High-level verification of DFS models through their Petri-net semantics,
    with pluggable checkers (exhaustive, inductive, random-walk, portfolio).

``repro.performance``
    Cycle-based performance analysis and bottleneck identification.

``repro.circuits``
    NCL-D dual-rail component library, technology mapping of DFS models to
    asynchronous circuit netlists, event-driven simulation, Verilog export.

``repro.silicon``
    Voltage-dependent delay/energy models and chip measurement harness.

``repro.pipelines``
    The reconfigurable-pipeline design methodology (generic N-stage pipeline,
    static and reconfigurable stages, control loops).

``repro.ope``
    The ordinal pattern encoding case study (behavioural model and pipeline).

``repro.chip``
    The evaluation chip (LFSR, accumulator, static + reconfigurable OPE).

``repro.workcraft``
    A programmatic tool layer (projects, plugins, exporters, CLI) standing in
    for the Workcraft GUI used in the paper.
"""

from repro._version import __version__
from repro.dfs import DataflowStructure, DfsBuilder, NodeType
from repro.petri import Marking, PetriNet
from repro.verification import Verifier

__all__ = [
    "__version__",
    "DataflowStructure",
    "DfsBuilder",
    "NodeType",
    "PetriNet",
    "Marking",
    "Verifier",
]
