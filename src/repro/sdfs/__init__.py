"""Static Dataflow Structures (SDFS) -- the baseline formalism.

SDFS (Sokolov, Poliakov, Yakovlev, *Fundamenta Informaticae* 2008) supports
only logic and plain register nodes; it cannot express dynamic pipeline
reconfiguration, which is the gap the paper's DFS model fills.  The package
provides a restricted model class and helpers to convert between the two
formalisms, so that the motivating example (Fig. 1) can be reproduced with
both and compared by the performance analyser.
"""

from repro.sdfs.model import StaticDataflowStructure, is_static, strip_dynamic
from repro.sdfs.analysis import dataflow_depth, register_chains, static_summary

__all__ = [
    "StaticDataflowStructure",
    "dataflow_depth",
    "is_static",
    "register_chains",
    "static_summary",
    "strip_dynamic",
]
