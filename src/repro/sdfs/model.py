"""The SDFS model: a DFS restricted to logic and plain register nodes."""

from repro.exceptions import ModelError
from repro.dfs.model import DataflowStructure
from repro.dfs.nodes import NodeType


class StaticDataflowStructure(DataflowStructure):
    """A dataflow structure that only allows static (SDFS) node types.

    Attempts to add control, push or pop registers raise
    :class:`~repro.exceptions.ModelError`.  Everything else (simulation,
    translation to Petri nets, verification, performance analysis) is
    inherited unchanged from :class:`~repro.dfs.model.DataflowStructure`,
    reflecting the fact that SDFS is the static fragment of DFS.
    """

    def add_control(self, name, marked=False, value=True, delay=None, annotation=None):
        raise ModelError(
            "SDFS does not support control registers (attempted to add {!r}); "
            "use the DFS model for reconfigurable pipelines".format(name)
        )

    def add_push(self, name, marked=False, value=True, delay=None, annotation=None):
        raise ModelError(
            "SDFS does not support push registers (attempted to add {!r}); "
            "use the DFS model for reconfigurable pipelines".format(name)
        )

    def add_pop(self, name, marked=False, value=True, delay=None, annotation=None):
        raise ModelError(
            "SDFS does not support pop registers (attempted to add {!r}); "
            "use the DFS model for reconfigurable pipelines".format(name)
        )

    def add_node(self, node):
        if node.node_type.is_dynamic:
            raise ModelError(
                "SDFS does not support {} registers (attempted to add {!r})".format(
                    node.node_type.value, node.name
                )
            )
        return super().add_node(node)


def is_static(dfs):
    """Return ``True`` when *dfs* uses only static (SDFS) node types."""
    return not any(dfs.node(name).is_dynamic for name in dfs.nodes)


def strip_dynamic(dfs, name=None):
    """Return a static copy of *dfs* with dynamic registers demoted to plain ones.

    This is a *structural* conversion used to compare a reconfigurable design
    against its "always-on" static equivalent: every control, push and pop
    register becomes a plain register with the same initial marking.  The
    behaviour of the two models differs by design -- that difference is the
    point of the paper's motivating example.
    """
    static = StaticDataflowStructure(name or "{}_static".format(dfs.name))
    for node_name in sorted(dfs.nodes):
        node = dfs.node(node_name)
        if node.node_type is NodeType.LOGIC:
            static.add_logic(node.name, delay=node.delay, function=node.function,
                             annotation=dict(node.annotation))
        else:
            static.add_register(node.name, marked=node.marked, delay=node.delay,
                                annotation=dict(node.annotation))
    for source, target in sorted(dfs.edges):
        static.connect(source, target)
    return static
