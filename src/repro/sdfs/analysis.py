"""Structural analysis helpers for static dataflow structures.

These mirror the kind of "static analysis" performed on SDFS models in the
earlier literature: pipeline depth (the longest register-to-register chain),
register chains between the inputs and outputs, and a compact summary used by
reports and tests.
"""

from repro.utils.graphs import topological_order


def _register_graph(dfs):
    """Edges between registers: ``(r, r')`` when ``r`` is in the R-preset of ``r'``."""
    edges = []
    for register in dfs.register_nodes:
        for successor in dfs.r_postset(register):
            edges.append((register, successor))
    return edges


def dataflow_depth(dfs):
    """Length (in registers) of the longest acyclic register-to-register path.

    Returns ``None`` when the register graph contains a cycle (depth is then
    unbounded in the unrolled sense and the notion of pipeline depth does not
    apply directly).
    """
    edges = _register_graph(dfs)
    registers = dfs.register_nodes
    order = topological_order(edges, nodes=registers)
    if order is None:
        return None
    longest = {name: 1 for name in registers}
    successors = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)
    for name in reversed(order):
        for successor in successors.get(name, []):
            longest[name] = max(longest[name], 1 + longest[successor])
    return max(longest.values()) if longest else 0


def register_chains(dfs):
    """Return all maximal register chains from input registers to output registers.

    Each chain is a list of register names.  Only meaningful for acyclic
    register graphs; cyclic structures return an empty list.
    """
    edges = _register_graph(dfs)
    if topological_order(edges, nodes=dfs.register_nodes) is None:
        return []
    successors = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)
    chains = []

    def _extend(chain):
        tail = chain[-1]
        nexts = successors.get(tail, [])
        if not nexts:
            chains.append(list(chain))
            return
        for target in sorted(nexts):
            _extend(chain + [target])

    for start in dfs.input_registers():
        _extend([start])
    return chains


def static_summary(dfs):
    """Return a dictionary summarising the static structure."""
    chains = register_chains(dfs)
    return {
        "registers": len(dfs.register_nodes),
        "logic": len(dfs.logic_nodes),
        "edges": len(dfs.edges),
        "inputs": dfs.input_registers(),
        "outputs": dfs.output_registers(),
        "depth": dataflow_depth(dfs),
        "chains": len(chains),
        "initial_tokens": sum(1 for _, marked in dfs.initial_marking().items() if marked),
    }
