"""Testbench experiments replicating the paper's measurement campaigns.

Each experiment returns plain dictionaries / lists of rows so that the
benchmark harness can print them as tables matching the paper's figures:

* :func:`random_mode_experiment`     -- a single random-mode run with checksum
  validation against the behavioural model (the basic measurement unit);
* :func:`voltage_sweep_experiment`   -- Fig. 9a: computation time and energy of
  the static and reconfigurable pipelines over a supply-voltage sweep,
  normalised to the static pipeline at the nominal voltage;
* :func:`unstable_supply_experiment` -- Fig. 9b: the power trace of a run while
  the supply dips to the freeze voltage and recovers;
* :func:`depth_scaling_experiment`   -- the linear dependence of time and
  energy on the configured pipeline depth, for several supply voltages.
"""

from repro.chip.top import ChipConfig, ChipMode, OpeChip
from repro.silicon.environment import dip_and_recover


def random_mode_experiment(seed=0xACE1, count=4096, depth=18, config=ChipConfig.RECONFIGURABLE,
                           voltage=1.2, chip=None, functional_count=None):
    """One random-mode run: functional checksum validation plus time/energy.

    ``count`` is the number of items used for the analytic time/energy figures
    (the paper uses 16 M); ``functional_count`` bounds the number of items
    actually pushed through the functional pipeline for checksum validation
    (defaults to ``min(count, 4096)`` to keep runtime reasonable).
    """
    chip = chip or OpeChip()
    chip.set_mode(ChipMode.RANDOM)
    chip.set_config(config)
    if ChipConfig(config) is ChipConfig.RECONFIGURABLE:
        chip.set_depth(depth)
    functional_count = min(count, 4096) if functional_count is None else functional_count
    run = chip.run_random(seed, functional_count)
    golden = chip.behavioural_checksum(seed, functional_count)
    measurement = chip.measure(count, voltage)
    return {
        "config": ChipConfig(config).value,
        "depth": chip.depth,
        "seed": seed,
        "count": count,
        "functional_count": functional_count,
        "checksum": run["checksum"],
        "golden_checksum": golden,
        "checksum_ok": run["checksum"] == golden,
        "voltage": voltage,
        "computation_time_s": measurement.computation_time_s,
        "consumed_energy_j": measurement.consumed_energy_j,
    }


def voltage_sweep_experiment(voltages=(0.5, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6),
                             items=16_000_000, depth=18, chip=None):
    """Fig. 9a: static vs. reconfigurable pipelines over a voltage sweep.

    Returns a list of rows with absolute and normalised (to the static
    pipeline at 1.2 V) computation time and consumed energy.
    """
    chip = chip or OpeChip()
    chip.set_depth(depth)
    static_harness = chip.harness(config=ChipConfig.STATIC)
    reconfigurable_harness = chip.harness(config=ChipConfig.RECONFIGURABLE, depth=depth)
    reference = static_harness.run(items, chip.voltage_model.nominal_voltage)
    rows = []
    for voltage in voltages:
        static = static_harness.run(items, voltage)
        reconfigurable = reconfigurable_harness.run(items, voltage)
        static_time_ratio, static_energy_ratio = static.normalised_to(reference)
        reconf_time_ratio, reconf_energy_ratio = reconfigurable.normalised_to(reference)
        rows.append({
            "voltage": float(voltage),
            "static_time_s": static.computation_time_s,
            "static_energy_j": static.consumed_energy_j,
            "reconfigurable_time_s": reconfigurable.computation_time_s,
            "reconfigurable_energy_j": reconfigurable.consumed_energy_j,
            "static_time_norm": static_time_ratio,
            "static_energy_norm": static_energy_ratio,
            "reconfigurable_time_norm": reconf_time_ratio,
            "reconfigurable_energy_norm": reconf_energy_ratio,
            "time_overhead": (reconfigurable.computation_time_s / static.computation_time_s) - 1.0,
            "energy_overhead": (reconfigurable.consumed_energy_j / static.consumed_energy_j) - 1.0,
        })
    return {
        "reference_time_s": reference.computation_time_s,
        "reference_energy_j": reference.consumed_energy_j,
        "items": items,
        "rows": rows,
    }


def unstable_supply_experiment(items=4_000_000, depth=18, waveform=None, time_step=0.1,
                               chip=None):
    """Fig. 9b: power consumption while the supply dips to the freeze voltage.

    The default waveform starts at 0.5 V, ramps down to 0.34 V (where the chip
    freezes), holds, then ramps back up so the computation completes.
    """
    chip = chip or OpeChip()
    chip.set_config(ChipConfig.RECONFIGURABLE)
    chip.set_depth(depth)
    waveform = waveform or dip_and_recover()
    measurement = chip.measure_with_waveform(
        items, waveform, time_step=time_step,
        max_time=waveform.duration * 20.0,
        config=ChipConfig.RECONFIGURABLE, depth=depth)
    trace_rows = measurement.trace.rows() if measurement.trace else []
    frozen_samples = [row for row in trace_rows
                      if not chip.voltage_model.is_operational(row["voltage_v"])]
    return {
        "items": items,
        "depth": depth,
        "completed": measurement.completed,
        "computation_time_s": measurement.computation_time_s,
        "consumed_energy_j": measurement.consumed_energy_j,
        "freeze_voltage": chip.voltage_model.freeze_voltage,
        "frozen_interval_s": len(frozen_samples) * time_step,
        "trace": trace_rows,
    }


def depth_scaling_experiment(depths=None, voltages=(0.5, 0.8, 1.2, 1.6),
                             items=16_000_000, chip=None):
    """Time and energy versus configured depth for several supply voltages.

    The paper reports that "both the computation time and the energy
    consumption increase linearly with the pipeline length; the slope of
    increment is reverse-proportional to the supply voltage".
    """
    chip = chip or OpeChip()
    depths = depths or list(range(chip.min_depth, chip.stages + 1))
    rows = []
    for depth in depths:
        chip.set_depth(depth)
        for voltage in voltages:
            measurement = chip.measure(items, voltage,
                                       config=ChipConfig.RECONFIGURABLE, depth=depth)
            rows.append({
                "depth": depth,
                "voltage": float(voltage),
                "computation_time_s": measurement.computation_time_s,
                "consumed_energy_j": measurement.consumed_energy_j,
            })
    return {"items": items, "rows": rows}
