"""The evaluation chip (Fig. 8): OPE pipelines plus test infrastructure.

The fabricated chip contains two OPE implementations -- an 18-stage static
pipeline and a reconfigurable pipeline supporting depths 3 to 18 -- selected
by the ``config`` input, plus the infrastructure needed for accurate
measurements: a linear-feedback shift register (LFSR) that generates the
input stream in *random* mode, and an accumulator that folds the produced
rank lists into a single checksum so that only one output word has to cross
the chip boundary.  The checksum is validated against the behavioural OPE
model initialised with the same seed and count.
"""

from repro.chip.lfsr import Lfsr
from repro.chip.accumulator import ChecksumAccumulator
from repro.chip.top import ChipConfig, ChipMode, OpeChip
from repro.chip.testbench import (
    depth_scaling_experiment,
    random_mode_experiment,
    unstable_supply_experiment,
    voltage_sweep_experiment,
)

__all__ = [
    "ChecksumAccumulator",
    "ChipConfig",
    "ChipMode",
    "Lfsr",
    "OpeChip",
    "depth_scaling_experiment",
    "random_mode_experiment",
    "unstable_supply_experiment",
    "voltage_sweep_experiment",
]
