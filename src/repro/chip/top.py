"""The top level of the evaluation chip (Fig. 8a).

The chip exposes:

* ``config`` -- which OPE implementation processes the stream: the 18-stage
  **static** pipeline or the **reconfigurable** pipeline (depth 3 to 18);
* ``mode``   -- **normal** (data supplied on the ``in`` port, a rank list on
  the ``out`` port per iteration) or **random** (an on-chip LFSR generates
  ``count`` items from a user ``seed`` and the accumulator produces a single
  checksum at the end);
* the functional data path (window storage, comparisons, rank update,
  checksum) and the analytic silicon model used to report computation time,
  energy and power for a given supply voltage or supply waveform.
"""

from enum import Enum

from repro.exceptions import ConfigurationError
from repro.chip.accumulator import ChecksumAccumulator
from repro.chip.lfsr import Lfsr
from repro.ope.circuit import ope_silicon_model
from repro.ope.functional import OpePipelineFunctional
from repro.ope.pipeline import CHIP_MIN_DEPTH, CHIP_STAGES
from repro.ope.reference import OpeReference
from repro.silicon.chip import SyncStructure
from repro.silicon.measurement import MeasurementHarness
from repro.silicon.voltage import VoltageModel


class ChipConfig(Enum):
    """Which OPE implementation is activated by the ``config`` input."""

    STATIC = "static"
    RECONFIGURABLE = "reconfigurable"


class ChipMode(Enum):
    """Operating mode selected by the ``mode`` input."""

    NORMAL = "normal"
    RANDOM = "random"


class OpeChip:
    """A functional-plus-analytic model of the fabricated evaluation chip."""

    def __init__(self, stages=CHIP_STAGES, min_depth=CHIP_MIN_DEPTH,
                 voltage_model=None, lfsr_width=16,
                 reconfigurable_sync=SyncStructure.DAISY_CHAIN):
        self.stages = int(stages)
        self.min_depth = int(min_depth)
        self.voltage_model = voltage_model or VoltageModel()
        self.lfsr_width = int(lfsr_width)
        self.reconfigurable_sync = reconfigurable_sync
        self.config = ChipConfig.STATIC
        self.mode = ChipMode.RANDOM
        self._depth = self.stages
        self._silicon_cache = {}

    # -- configuration inputs ------------------------------------------------------

    def set_config(self, config):
        """Drive the ``config`` input (which pipeline processes the data)."""
        self.config = ChipConfig(config)
        return self.config

    def set_mode(self, mode):
        """Drive the ``mode`` input (normal or random)."""
        self.mode = ChipMode(mode)
        return self.mode

    def set_depth(self, depth):
        """Select the reconfigurable pipeline depth (the OPE window size)."""
        depth = int(depth)
        if not self.min_depth <= depth <= self.stages:
            raise ConfigurationError(
                "depth {} is outside the supported range {}..{}".format(
                    depth, self.min_depth, self.stages))
        self._depth = depth
        return depth

    @property
    def depth(self):
        """The effective window size of the active pipeline."""
        if self.config is ChipConfig.STATIC:
            return self.stages
        return self._depth

    # -- silicon model --------------------------------------------------------------

    def silicon_model(self, config=None, depth=None, sync_structure=None):
        """The analytic timing/energy model of the selected implementation."""
        config = ChipConfig(config) if config is not None else self.config
        if config is ChipConfig.STATIC:
            depth = self.stages
            reconfigurable = False
            sync = SyncStructure.TREE if sync_structure is None else sync_structure
        else:
            depth = self.depth if depth is None else int(depth)
            reconfigurable = True
            sync = self.reconfigurable_sync if sync_structure is None else sync_structure
        key = (config, depth, sync)
        if key not in self._silicon_cache:
            self._silicon_cache[key] = ope_silicon_model(
                depth, reconfigurable, sync_structure=sync,
                voltage_model=self.voltage_model)
        return self._silicon_cache[key]

    def harness(self, **kwargs):
        """A measurement harness bound to the currently selected implementation."""
        return MeasurementHarness(self.silicon_model(**kwargs))

    # -- functional data path ----------------------------------------------------------

    def process_stream(self, stream):
        """Normal mode: process an externally supplied stream, return rank lists."""
        pipeline = OpePipelineFunctional(self.depth)
        return pipeline.process(stream)

    def run_random(self, seed, count):
        """Random mode: run `count` LFSR items through the pipeline, return results.

        Returns a dictionary with the checksum produced by the accumulator,
        the number of rank lists produced, and the LFSR parameters used.
        """
        if self.mode is not ChipMode.RANDOM:
            raise ConfigurationError("the chip is not in random mode")
        lfsr = Lfsr(seed=seed, width=self.lfsr_width)
        pipeline = OpePipelineFunctional(self.depth)
        accumulator = ChecksumAccumulator()
        outputs = 0
        for item in lfsr.iter_stream(count):
            ranks = pipeline.push(item)
            if ranks is not None:
                accumulator.add_rank_list(ranks)
                outputs += 1
        return {
            "checksum": accumulator.digest(),
            "outputs": outputs,
            "ranks_accumulated": accumulator.ranks_accumulated,
            "seed": seed,
            "count": count,
            "depth": self.depth,
            "config": self.config.value,
        }

    def behavioural_checksum(self, seed, count):
        """The golden checksum: the behavioural OPE model run on the same stimulus."""
        lfsr = Lfsr(seed=seed, width=self.lfsr_width)
        reference = OpeReference(self.depth)
        return reference.checksum(lfsr.stream(count))

    # -- measurements --------------------------------------------------------------------

    def measure(self, items, voltage, config=None, depth=None, sync_structure=None):
        """Computation time and energy for *items* data items at a constant voltage."""
        if depth is not None:
            self.set_depth(depth)
        harness = self.harness(config=config, depth=depth, sync_structure=sync_structure)
        return harness.run(items, voltage)

    def measure_with_waveform(self, items, waveform, time_step=0.1, max_time=None,
                              config=None, depth=None, sync_structure=None):
        """Run under a supply waveform (the unstable-supply experiment of Fig. 9b)."""
        if depth is not None:
            self.set_depth(depth)
        harness = self.harness(config=config, depth=depth, sync_structure=sync_structure)
        return harness.run_with_waveform(items, waveform, time_step=time_step,
                                         max_time=max_time)

    def __repr__(self):
        return "OpeChip(stages={}, config={}, mode={}, depth={})".format(
            self.stages, self.config.value, self.mode.value, self.depth)
