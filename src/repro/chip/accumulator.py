"""The checksum accumulator of the evaluation chip.

"A checksum of the output stream is calculated in the accumulator and a
single data item is produced after all generated data is processed."  The
accumulator folds every rank of every produced rank list into a 32-bit
multiplicative rolling checksum; the behavioural model
(:meth:`repro.ope.reference.OpeReference.checksum`) implements the identical
computation, which is how random-mode runs are validated.
"""


class ChecksumAccumulator:
    """A 32-bit rolling checksum over produced rank lists."""

    #: Multiplier of the rolling hash (matches the behavioural model).
    MULTIPLIER = 31

    def __init__(self, modulus=2 ** 32):
        self.modulus = int(modulus)
        self._digest = 0
        self._count = 0

    def reset(self):
        """Clear the accumulated checksum."""
        self._digest = 0
        self._count = 0

    def add_rank(self, rank):
        """Fold a single rank value into the checksum."""
        self._digest = (self._digest * self.MULTIPLIER + int(rank)) % self.modulus
        self._count += 1
        return self._digest

    def add_rank_list(self, ranks):
        """Fold a whole rank list (one OPE output) into the checksum."""
        for rank in ranks:
            self.add_rank(rank)
        return self._digest

    def digest(self):
        """The current checksum value (the chip's single output word)."""
        return self._digest

    @property
    def ranks_accumulated(self):
        """How many individual ranks have been folded in."""
        return self._count

    def __repr__(self):
        return "ChecksumAccumulator(digest=0x{:08X}, ranks={})".format(
            self._digest, self._count)
