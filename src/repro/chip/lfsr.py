"""Linear-feedback shift register: the on-chip stimulus generator.

In random mode the chip feeds the OPE pipelines from a user-seeded LFSR
instead of the external input port, which removes the chip-to-testbench
interfacing overhead from the measurements.  A Galois LFSR with a maximal
-length polynomial is used; the default taps correspond to the maximal 16-bit
polynomial ``x^16 + x^15 + x^13 + x^4 + 1``.
"""

from repro.exceptions import ConfigurationError

#: Maximal-length Galois tap masks per register width.
DEFAULT_TAPS = {
    8: 0xB8,
    16: 0xD008,
    24: 0xE10000,
    32: 0xA3000000,
}


class Lfsr:
    """A Galois linear-feedback shift register."""

    def __init__(self, seed=0xACE1, width=16, taps=None):
        if width not in DEFAULT_TAPS and taps is None:
            raise ConfigurationError(
                "no default taps for a {}-bit LFSR; pass the taps explicitly".format(width))
        self.width = int(width)
        self.mask = (1 << self.width) - 1
        self.taps = taps if taps is not None else DEFAULT_TAPS[width]
        seed = int(seed) & self.mask
        if seed == 0:
            raise ConfigurationError("an LFSR seed of zero locks the register at zero")
        self.seed = seed
        self.state = seed
        self._period = None

    def reset(self, seed=None):
        """Reload the seed (optionally a new one)."""
        if seed is not None:
            seed = int(seed) & self.mask
            if seed == 0:
                raise ConfigurationError("an LFSR seed of zero locks the register at zero")
            self.seed = seed
            # Non-primitive taps split the state space into several cycles,
            # so a new seed can land on a cycle of a different length.
            self._period = None
        self.state = self.seed
        return self.state

    def next(self):
        """Advance one step and return the new state."""
        self.state = self._step_state(self.state)
        return self.state

    def stream(self, count):
        """Generate *count* successive values (the chip's random-mode stimulus)."""
        return [self.next() for _ in range(count)]

    def iter_stream(self, count):
        """Like :meth:`stream` but as a generator (for very long runs)."""
        for _ in range(count):
            yield self.next()

    #: Widths above this measure their period by stepping a shadow register,
    #: which is only feasible for short cycles; see :attr:`period`.
    _PERIOD_MEASUREMENT_LIMIT = 1 << 22

    @property
    def period(self):
        """Period of the sequence generated from the current seed.

        The built-in :data:`DEFAULT_TAPS` are maximal-length polynomials, for
        which the period is ``2**width - 1`` regardless of the (non-zero)
        seed.  For custom taps no such guarantee exists -- the polynomial may
        be non-primitive and split the state space into several shorter
        cycles, possibly reached through a pre-periodic tail -- so the
        eventual period is measured with Brent's cycle detection on a shadow
        register.  Measurement is capped: custom taps whose cycle is not
        found within ``2**22`` steps raise
        :class:`~repro.exceptions.ConfigurationError` instead of silently
        claiming maximality.
        """
        if self.taps == DEFAULT_TAPS.get(self.width):
            return self.mask
        if self._period is None:
            self._period = self._measure_period()
        return self._period

    def _step_state(self, state):
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= self.taps
        return state

    def _measure_period(self):
        limit = min(2 * (self.mask + 1), self._PERIOD_MEASUREMENT_LIMIT)
        power = cycle = 1
        tortoise = self.seed
        hare = self._step_state(tortoise)
        steps = 1
        while tortoise != hare:
            if power == cycle:
                tortoise = hare
                power *= 2
                cycle = 0
            hare = self._step_state(hare)
            cycle += 1
            steps += 1
            if steps > limit:
                raise ConfigurationError(
                    "period of custom taps 0x{:X} not found within {} steps "
                    "(the cycle may be longer, including maximal-length); use "
                    "the default taps for this width for a guaranteed period "
                    "of 2**width - 1, or compute the period "
                    "externally".format(self.taps, limit)
                )
        return cycle

    def __repr__(self):
        return "Lfsr(width={}, seed=0x{:X}, state=0x{:X})".format(
            self.width, self.seed, self.state)
