"""Linear-feedback shift register: the on-chip stimulus generator.

In random mode the chip feeds the OPE pipelines from a user-seeded LFSR
instead of the external input port, which removes the chip-to-testbench
interfacing overhead from the measurements.  A Galois LFSR with a maximal
-length polynomial is used; the default taps correspond to the maximal 16-bit
polynomial ``x^16 + x^15 + x^13 + x^4 + 1``.
"""

from repro.exceptions import ConfigurationError

#: Maximal-length Galois tap masks per register width.
DEFAULT_TAPS = {
    8: 0xB8,
    16: 0xD008,
    24: 0xE10000,
    32: 0xA3000000,
}


class Lfsr:
    """A Galois linear-feedback shift register."""

    def __init__(self, seed=0xACE1, width=16, taps=None):
        if width not in DEFAULT_TAPS and taps is None:
            raise ConfigurationError(
                "no default taps for a {}-bit LFSR; pass the taps explicitly".format(width))
        self.width = int(width)
        self.mask = (1 << self.width) - 1
        self.taps = taps if taps is not None else DEFAULT_TAPS[width]
        seed = int(seed) & self.mask
        if seed == 0:
            raise ConfigurationError("an LFSR seed of zero locks the register at zero")
        self.seed = seed
        self.state = seed

    def reset(self, seed=None):
        """Reload the seed (optionally a new one)."""
        if seed is not None:
            seed = int(seed) & self.mask
            if seed == 0:
                raise ConfigurationError("an LFSR seed of zero locks the register at zero")
            self.seed = seed
        self.state = self.seed
        return self.state

    def next(self):
        """Advance one step and return the new state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self.taps
        return self.state

    def stream(self, count):
        """Generate *count* successive values (the chip's random-mode stimulus)."""
        return [self.next() for _ in range(count)]

    def iter_stream(self, count):
        """Like :meth:`stream` but as a generator (for very long runs)."""
        for _ in range(count):
            yield self.next()

    @property
    def period(self):
        """Period of a maximal-length LFSR of this width."""
        return (1 << self.width) - 1

    def __repr__(self):
        return "Lfsr(width={}, seed=0x{:X}, state=0x{:X})".format(
            self.width, self.seed, self.state)
