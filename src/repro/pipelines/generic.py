"""The generic N-stage pipeline with local and global channels (Fig. 6a)."""

from repro.exceptions import ConfigurationError
from repro.dfs.model import DataflowStructure
from repro.pipelines.stage import add_reconfigurable_stage, add_static_stage


class GenericPipeline:
    """A built pipeline: the DFS model plus the bookkeeping of its stages."""

    def __init__(self, dfs, stages, input_register, output_register, aggregator):
        self.dfs = dfs
        self.stages = list(stages)
        self.input_register = input_register
        self.output_register = output_register
        self.aggregator = aggregator

    @property
    def depth(self):
        """Number of stages (static plus reconfigurable)."""
        return len(self.stages)

    @property
    def reconfigurable_stages(self):
        return [stage for stage in self.stages if stage.reconfigurable]

    @property
    def static_stages(self):
        return [stage for stage in self.stages if not stage.reconfigurable]

    def stage(self, index):
        """Stage by 1-based index (as in the paper's ``s1 ... sN``)."""
        if not 1 <= index <= len(self.stages):
            raise ConfigurationError("stage index {} out of range".format(index))
        return self.stages[index - 1]

    def control_loops(self):
        """All control loops of the pipeline, keyed by stage name."""
        loops = {}
        for stage in self.stages:
            if stage.control_loops:
                loops[stage.name] = stage.control_loops
        return loops

    def __repr__(self):
        return "GenericPipeline({!r}, depth={}, reconfigurable={})".format(
            self.dfs.name, self.depth, len(self.reconfigurable_stages))


def build_generic_pipeline(stages, static_prefix_stages=1, included_depth=None,
                           name="pipeline", f_delay=1.0, g_delay=1.0,
                           share_control_second_stage=True):
    """Build a generic pipeline with a static prefix and a reconfigurable tail.

    Parameters
    ----------
    stages:
        Total number of stages ``N``.
    static_prefix_stages:
        How many leading stages are always included and therefore built in the
        static style (the OPE chip uses 1: stage ``s1``).
    included_depth:
        Initial configuration: the number of leading stages included in the
        pipeline.  Defaults to ``stages`` (everything active).  Must be at
        least ``static_prefix_stages``.
    share_control_second_stage:
        Apply the paper's ``s2`` optimisation: the first reconfigurable stage
        directly after the static prefix uses a single shared control loop.

    Returns a :class:`GenericPipeline`.
    """
    if stages < 1:
        raise ConfigurationError("a pipeline needs at least one stage")
    if not 0 <= static_prefix_stages <= stages:
        raise ConfigurationError("invalid number of static prefix stages")
    included_depth = stages if included_depth is None else int(included_depth)
    if not static_prefix_stages <= included_depth <= stages:
        raise ConfigurationError(
            "included depth {} must be between the static prefix ({}) and the "
            "total number of stages ({})".format(included_depth, static_prefix_stages, stages))

    dfs = DataflowStructure(name)
    dfs.add_register("in")

    built = []
    for index in range(1, stages + 1):
        stage_name = "s{}".format(index)
        if index <= static_prefix_stages:
            stage = add_static_stage(dfs, stage_name, f_delay=f_delay, g_delay=g_delay)
        else:
            share = share_control_second_stage and index == static_prefix_stages + 1
            stage = add_reconfigurable_stage(
                dfs, stage_name, included=(index <= included_depth),
                f_delay=f_delay, g_delay=g_delay, share_control=share)
        built.append(stage)

    # Local channels: the common input feeds the first stage's local input;
    # each stage's local output feeds the next stage's local input.
    dfs.connect("in", built[0].local_in)
    for previous, current in zip(built, built[1:]):
        dfs.connect(previous.local_out, current.local_in)

    # Global channels: the common input is broadcast to every stage's global
    # input; every stage's global output feeds the aggregation function.
    dfs.add_logic("aggregate", delay=g_delay, function="aggregate")
    dfs.add_register("out")
    for stage in built:
        dfs.connect("in", stage.global_in)
        dfs.connect(stage.global_out, "aggregate")
    dfs.connect("aggregate", "out")

    return GenericPipeline(dfs, built, "in", "out", "aggregate")
