"""Control loops: the token oscillators that configure reconfigurable stages.

A control loop is a ring of control registers around which a single True or
False token oscillates.  Three registers is the minimum for oscillation (with
fewer, the token has nowhere to move), which is why the paper's stages use
3-register loops.  One register of the loop (the *head*) is connected to the
push/pop registers it guards; the token can only advance past the head after
the guarded registers have accepted a data token, which synchronises one
control oscillation with one data item.
"""

from repro.exceptions import ModelError


def add_control_loop(dfs, base_name, length=3, value=True, guards=(), marked_index=0):
    """Add a control loop to *dfs* and return the list of its register names.

    Parameters
    ----------
    dfs:
        The dataflow structure to extend.
    base_name:
        Prefix of the loop's register names (``<base_name>0`` ... ``<base_name>{length-1}``).
    length:
        Number of control registers in the loop (at least 3).
    value:
        Initial token value: ``True`` includes the guarded stage in the
        pipeline, ``False`` excludes it.
    guards:
        Names of the push/pop registers guarded by the head of the loop.
    marked_index:
        Which register of the loop initially holds the token (the head by
        default).
    """
    if length < 3:
        raise ModelError(
            "a control loop needs at least 3 registers for a token to oscillate "
            "(got {})".format(length))
    if not 0 <= marked_index < length:
        raise ModelError("marked_index {} is outside the loop".format(marked_index))
    names = ["{}{}".format(base_name, index) for index in range(length)]
    for index, name in enumerate(names):
        dfs.add_control(name, marked=(index == marked_index), value=value)
    for index, name in enumerate(names):
        dfs.connect(name, names[(index + 1) % length])
    head = names[0]
    for guard in guards:
        dfs.connect(head, guard)
    return names


def loop_head(loop_names):
    """The register of the loop that guards the data path."""
    return loop_names[0]


def set_loop_value(dfs, loop_names, value):
    """Re-initialise a control loop with a True or False token.

    The token stays on the register that currently holds it (or the head if
    none does) and only its value changes; this models re-programming the
    configuration before a run.
    """
    marked = [name for name in loop_names if dfs.node(name).marked]
    if not marked:
        marked = [loop_head(loop_names)]
        dfs.node(marked[0]).marked = True
    for name in loop_names:
        node = dfs.node(name)
        if name in marked:
            node.initial_value = bool(value)
        else:
            node.marked = False
            node.initial_value = None
