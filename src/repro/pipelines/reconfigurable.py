"""Configuration management of reconfigurable pipelines.

The fabricated chip selects the pipeline depth (the OPE window size) by
initialising the control loops of the leading stages with True tokens and the
remaining ones with False tokens.  :class:`PipelineConfiguration` applies such
depth settings to a built :class:`~repro.pipelines.generic.GenericPipeline`,
validates them, and can enumerate every supported depth (3 to 18 on the chip).
"""

from repro.exceptions import ConfigurationError
from repro.pipelines.control import set_loop_value


class PipelineConfiguration:
    """Applies and validates depth configurations of a generic pipeline."""

    def __init__(self, pipeline, min_depth=None):
        self.pipeline = pipeline
        static_stages = len(pipeline.static_stages)
        self.min_depth = static_stages if min_depth is None else int(min_depth)
        if self.min_depth < static_stages:
            raise ConfigurationError(
                "the minimum depth cannot exclude the {} static stage(s)".format(static_stages))

    @property
    def max_depth(self):
        return self.pipeline.depth

    def supported_depths(self):
        """All depths this pipeline supports (min_depth ... total stages)."""
        return list(range(max(self.min_depth, 1), self.max_depth + 1))

    def current_depth(self):
        """The depth currently encoded in the control-loop initial values."""
        depth = len(self.pipeline.static_stages)
        for stage in self.pipeline.stages:
            if not stage.reconfigurable:
                continue
            if self._stage_value(stage):
                depth += 1
        return depth

    def _stage_value(self, stage):
        dfs = self.pipeline.dfs
        for loop in stage.control_loops:
            for name in loop:
                node = dfs.node(name)
                if node.marked:
                    return bool(node.initial_value)
        return False

    def set_depth(self, depth):
        """Include the first *depth* stages and exclude the rest."""
        if depth not in self.supported_depths():
            raise ConfigurationError(
                "depth {} is not supported (valid depths: {}..{})".format(
                    depth, self.min_depth, self.max_depth))
        dfs = self.pipeline.dfs
        for index, stage in enumerate(self.pipeline.stages, start=1):
            if not stage.reconfigurable:
                continue
            include = index <= depth
            for loop in stage.control_loops:
                set_loop_value(dfs, loop, include)
        return self.pipeline

    def included_stages(self):
        """Names of the stages currently included in the pipeline."""
        names = [stage.name for stage in self.pipeline.static_stages]
        for stage in self.pipeline.stages:
            if stage.reconfigurable and self._stage_value(stage):
                names.append(stage.name)
        return names

    def validate(self):
        """Check that the configuration is a contiguous prefix of stages.

        A "hole" (an excluded stage followed by an included one) starves the
        downstream stage of local tokens and deadlocks the pipeline -- exactly
        the class of initialisation mistake the paper reports catching with
        formal verification.  Returns the list of problems found.
        """
        problems = []
        seen_excluded = False
        for index, stage in enumerate(self.pipeline.stages, start=1):
            if not stage.reconfigurable:
                if seen_excluded:
                    problems.append(
                        "static stage {} (index {}) follows an excluded stage".format(
                            stage.name, index))
                continue
            included = self._stage_value(stage)
            if included and seen_excluded:
                problems.append(
                    "stage {} (index {}) is included after an excluded stage; the "
                    "configuration is not a contiguous prefix".format(stage.name, index))
            if not included:
                seen_excluded = True
        return problems

    def __repr__(self):
        return "PipelineConfiguration(depth={}/{})".format(
            self.current_depth(), self.max_depth)
