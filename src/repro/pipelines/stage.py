"""Pipeline stages: the static (Fig. 6b) and reconfigurable (Fig. 6c) designs.

A stage applies a function ``f`` to the token arriving on its *local* input
(data from the previous stage) and stores the result in its *local* output
register (data for the next stage).  The produced token, paired with the
common input token arriving on the *global* input, is passed to a function
``g`` whose result goes to the *global* output, which is aggregated with the
other stages' outputs.

In the reconfigurable stage the local input is a push register guarded by the
``local_ctrl`` loop, and the global input / global output are a push / pop
pair guarded by the ``global_ctrl`` loop.  Initialising both loops with True
includes the stage; False excludes it -- the pushes then destroy the tokens
they receive and the pop keeps producing "empty" tokens so that the
aggregated output still completes.
"""

from repro.pipelines.control import add_control_loop


class StagePorts:
    """Names of the interface registers (and control loops) of one stage."""

    def __init__(self, name, local_in, local_out, global_in, global_out,
                 local_ctrl=None, global_ctrl=None, reconfigurable=False):
        self.name = name
        self.local_in = local_in
        self.local_out = local_out
        self.global_in = global_in
        self.global_out = global_out
        self.local_ctrl = list(local_ctrl or [])
        self.global_ctrl = list(global_ctrl or [])
        self.reconfigurable = reconfigurable

    @property
    def control_loops(self):
        """All control loops of the stage (empty for a static stage)."""
        loops = []
        if self.local_ctrl:
            loops.append(self.local_ctrl)
        if self.global_ctrl:
            loops.append(self.global_ctrl)
        return loops

    def __repr__(self):
        return "StagePorts({!r}, reconfigurable={})".format(self.name, self.reconfigurable)


def add_static_stage(dfs, name, f_delay=1.0, g_delay=1.0,
                     f_function="compare", g_function="rank"):
    """Add a static pipeline stage (Fig. 6b) and return its :class:`StagePorts`."""
    local_in = "{}.local_in".format(name)
    local_out = "{}.local_out".format(name)
    global_in = "{}.global_in".format(name)
    global_out = "{}.global_out".format(name)
    f_logic = "{}.f".format(name)
    g_logic = "{}.g".format(name)

    dfs.add_register(local_in)
    dfs.add_register(local_out)
    dfs.add_register(global_in)
    dfs.add_register(global_out)
    dfs.add_logic(f_logic, delay=f_delay, function=f_function)
    dfs.add_logic(g_logic, delay=g_delay, function=g_function)

    dfs.connect(local_in, f_logic)
    dfs.connect(f_logic, local_out)
    dfs.connect(local_out, g_logic)
    dfs.connect(global_in, g_logic)
    dfs.connect(g_logic, global_out)

    return StagePorts(name, local_in, local_out, global_in, global_out,
                      reconfigurable=False)


def add_reconfigurable_stage(dfs, name, included=True, f_delay=1.0, g_delay=1.0,
                             f_function="compare", g_function="rank",
                             share_control=False):
    """Add a reconfigurable pipeline stage (Fig. 6c) and return its ports.

    Parameters
    ----------
    included:
        Initial configuration of the stage: ``True`` includes it in the
        pipeline, ``False`` bypasses it.
    share_control:
        When true, a single control loop guards both the local and the global
        interfaces -- the optimisation the paper applies to stage ``s2`` of
        the OPE pipeline (possible when the previous stage is always included).
    """
    local_in = "{}.local_in".format(name)
    local_out = "{}.local_out".format(name)
    global_in = "{}.global_in".format(name)
    global_out = "{}.global_out".format(name)
    f_logic = "{}.f".format(name)
    g_logic = "{}.g".format(name)

    dfs.add_push(local_in)
    dfs.add_register(local_out)
    dfs.add_push(global_in)
    dfs.add_pop(global_out)
    dfs.add_logic(f_logic, delay=f_delay, function=f_function)
    dfs.add_logic(g_logic, delay=g_delay, function=g_function)

    dfs.connect(local_in, f_logic)
    dfs.connect(f_logic, local_out)
    dfs.connect(local_out, g_logic)
    dfs.connect(global_in, g_logic)
    dfs.connect(g_logic, global_out)

    if share_control:
        global_ctrl = add_control_loop(
            dfs, "{}.ctrl".format(name), value=included,
            guards=[local_in, global_in, global_out])
        local_ctrl = []
    else:
        local_ctrl = add_control_loop(
            dfs, "{}.local_ctrl".format(name), value=included, guards=[local_in])
        global_ctrl = add_control_loop(
            dfs, "{}.global_ctrl".format(name), value=included,
            guards=[global_in, global_out])

    return StagePorts(name, local_in, local_out, global_in, global_out,
                      local_ctrl=local_ctrl, global_ctrl=global_ctrl,
                      reconfigurable=True)
