"""The reconfigurable-pipeline design methodology (Section III of the paper).

A generic pipeline (Fig. 6a) is a row of stages exchanging data through
*local* channels (stage to stage) while also receiving the *global* common
input and contributing to the aggregated output.  A static stage (Fig. 6b)
uses plain registers on all four interfaces; a reconfigurable stage (Fig. 6c)
replaces the local and global input registers with push registers and the
global output register with a pop register, each guarded by a 3-register
control loop.  Initialising the loops with True tokens includes the stage in
the pipeline; False tokens exclude (bypass) it.
"""

from repro.pipelines.control import add_control_loop
from repro.pipelines.stage import StagePorts, add_reconfigurable_stage, add_static_stage
from repro.pipelines.generic import GenericPipeline, build_generic_pipeline
from repro.pipelines.reconfigurable import PipelineConfiguration

__all__ = [
    "GenericPipeline",
    "PipelineConfiguration",
    "StagePorts",
    "add_control_loop",
    "add_reconfigurable_stage",
    "add_static_stage",
    "build_generic_pipeline",
]
