"""Project workspaces: named models persisted as a directory of JSON files."""

import os

from repro.exceptions import ModelError, SerializationError
from repro.utils.serialization import dump_json, load_json
from repro.workcraft.plugins import default_registry

_MANIFEST_NAME = "project.json"
_MANIFEST_FORMAT = "repro-project"


class Project:
    """A named collection of models (the tool's workspace)."""

    def __init__(self, name="workspace", registry=None):
        self.name = name
        self.registry = registry or default_registry()
        self._models = {}       # model name -> (plugin name, model object)

    # -- membership -----------------------------------------------------------------

    def add(self, name, model):
        """Add a model under a name; the handling plugin is found automatically."""
        if name in self._models:
            raise ModelError("the project already contains a model named {!r}".format(name))
        plugin = self.registry.plugin_for(model)
        self._models[name] = (plugin.name, model)
        return model

    def get(self, name):
        try:
            return self._models[name][1]
        except KeyError:
            raise ModelError("no model named {!r} in the project".format(name))

    def plugin_of(self, name):
        """The plugin handling the named model."""
        try:
            return self.registry.plugin(self._models[name][0])
        except KeyError:
            raise ModelError("no model named {!r} in the project".format(name))

    def remove(self, name):
        if name not in self._models:
            raise ModelError("no model named {!r} in the project".format(name))
        del self._models[name]

    def names(self):
        return sorted(self._models)

    def __contains__(self, name):
        return name in self._models

    def __len__(self):
        return len(self._models)

    # -- operations -------------------------------------------------------------------

    def run(self, model_name, operation, **kwargs):
        """Run a plugin operation (validate, verify, analyse, ...) on a model."""
        plugin = self.plugin_of(model_name)
        if operation not in plugin.operations:
            raise ModelError(
                "model {!r} (type {!r}) does not support operation {!r}; "
                "available: {}".format(model_name, plugin.name, operation,
                                       ", ".join(sorted(plugin.operations))))
        return plugin.operations[operation](self.get(model_name), **kwargs)

    # -- persistence --------------------------------------------------------------------

    def save(self, directory):
        """Save every serialisable model plus a manifest to *directory*."""
        if not os.path.isdir(directory):
            os.makedirs(directory)
        manifest = {"format": _MANIFEST_FORMAT, "version": 1,
                    "name": self.name, "models": []}
        for name in self.names():
            plugin_name, model = self._models[name]
            plugin = self.registry.plugin(plugin_name)
            if plugin.serializer is None:
                continue
            filename = "{}.json".format(name)
            dump_json(plugin.to_document(model), os.path.join(directory, filename))
            manifest["models"].append({"name": name, "plugin": plugin_name,
                                       "file": filename})
        dump_json(manifest, os.path.join(directory, _MANIFEST_NAME))
        return directory

    @classmethod
    def load(cls, directory, registry=None):
        """Load a project previously written by :meth:`save`."""
        manifest_path = os.path.join(directory, _MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise SerializationError("no project manifest found in {!r}".format(directory))
        manifest = load_json(manifest_path)
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise SerializationError("not a repro project manifest: {!r}".format(manifest_path))
        project = cls(manifest.get("name", "workspace"), registry=registry)
        for entry in manifest.get("models", []):
            plugin = project.registry.plugin(entry["plugin"])
            document = load_json(os.path.join(directory, entry["file"]))
            project.add(entry["name"], plugin.from_document(document))
        return project

    def __repr__(self):
        return "Project({!r}, models={})".format(self.name, self.names())
