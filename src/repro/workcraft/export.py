"""Exporters: DFS/Petri-net models to DOT, JSON, ``.g`` and Verilog."""

from repro.exceptions import SerializationError
from repro.dfs.model import DataflowStructure
from repro.dfs.nodes import NodeType
from repro.dfs.serialization import dfs_to_json
from repro.dfs.translation import to_petri_net
from repro.petri.export import to_dot as petri_to_dot
from repro.petri.export import to_g_format
from repro.petri.net import PetriNet
from repro.circuits.mapping import map_dfs_to_netlist
from repro.circuits.verilog import to_verilog

#: Shapes used when rendering DFS node types (mirroring the tool's icons).
_NODE_SHAPES = {
    NodeType.LOGIC: ("ellipse", "white"),
    NodeType.REGISTER: ("box", "white"),
    NodeType.CONTROL: ("box", "lightblue"),
    NodeType.PUSH: ("box", "lightyellow"),
    NodeType.POP: ("box", "lightpink"),
}


def dfs_to_dot(dfs, graph_name=None, highlight=()):
    """Render a dataflow structure as a Graphviz DOT digraph."""
    highlight = set(highlight)
    lines = ['digraph "{}" {{'.format(graph_name or dfs.name)]
    lines.append("  rankdir=LR;")
    lines.append("  node [fontsize=10];")
    for name in sorted(dfs.nodes):
        node = dfs.node(name)
        shape, fill = _NODE_SHAPES[node.node_type]
        label = name
        if node.is_register and node.marked:
            if node.is_dynamic and node.initial_value is not None:
                label += "\\n({})".format("T" if node.initial_value else "F")
            else:
                label += "\\n(*)"
        color = "red" if name in highlight else "black"
        lines.append(
            '  "{}" [shape={}, style=filled, fillcolor={}, label="{}", color={}];'.format(
                name, shape, fill, label, color))
    for source, target in sorted(dfs.edges):
        lines.append('  "{}" -> "{}";'.format(source, target))
    lines.append("}")
    return "\n".join(lines) + "\n"


#: Export format registry: format name -> (description, callable(model) -> text).
_EXPORTERS = {
    "dot": ("Graphviz DOT drawing of a DFS or Petri-net model", None),
    "json": ("JSON document of a DFS model", None),
    "pn-dot": ("Graphviz DOT drawing of the Petri-net translation", None),
    "g": ("petrify/MPSAT .g file of the Petri-net translation", None),
    "verilog": ("structural Verilog netlist of the mapped circuit", None),
}


def available_formats():
    """Return ``{format name: description}`` of the supported export formats."""
    return {name: description for name, (description, _) in _EXPORTERS.items()}


def export_model(model, format_name):
    """Export *model* (a DFS or a Petri net) in the requested format."""
    format_name = format_name.lower()
    if format_name not in _EXPORTERS:
        raise SerializationError(
            "unknown export format {!r}; available: {}".format(
                format_name, ", ".join(sorted(_EXPORTERS))))
    if isinstance(model, PetriNet):
        if format_name in ("dot", "pn-dot"):
            return petri_to_dot(model)
        if format_name == "g":
            return to_g_format(model)
        raise SerializationError(
            "format {!r} is not applicable to a Petri net".format(format_name))
    if not isinstance(model, DataflowStructure):
        raise SerializationError(
            "cannot export an object of type {!r}".format(type(model).__name__))
    if format_name == "dot":
        return dfs_to_dot(model)
    if format_name == "json":
        return dfs_to_json(model)
    if format_name == "pn-dot":
        return petri_to_dot(to_petri_net(model))
    if format_name == "g":
        return to_g_format(to_petri_net(model))
    if format_name == "verilog":
        return to_verilog(map_dfs_to_netlist(model))
    raise SerializationError("unhandled export format {!r}".format(format_name))
