"""A programmatic tool layer standing in for the Workcraft GUI.

The paper's EDA support is a plugin of the Workcraft framework: models are
edited and simulated interactively, translated to Petri nets for
verification, analysed for performance and exported to Verilog.  This package
exposes the same operations programmatically:

* :mod:`repro.workcraft.project` -- a workspace of named models that can be
  saved to / loaded from a directory of JSON documents;
* :mod:`repro.workcraft.plugins` -- a registry describing the model types the
  tool understands and the operations available on each;
* :mod:`repro.workcraft.export`  -- exporters (DOT, JSON, Petri-net ``.g``,
  Verilog) addressed by format name;
* :mod:`repro.workcraft.cli`     -- the ``repro-dfs`` command-line interface
  (validate, verify, simulate, analyse, translate, export, info).
"""

from repro.workcraft.project import Project
from repro.workcraft.plugins import PluginRegistry, default_registry
from repro.workcraft.export import available_formats, dfs_to_dot, export_model

__all__ = [
    "PluginRegistry",
    "Project",
    "available_formats",
    "default_registry",
    "dfs_to_dot",
    "export_model",
]
