"""The ``repro-dfs`` command-line interface.

Sub-commands (each takes a DFS model file produced by
:func:`repro.dfs.serialization.dfs_to_json`, or ``--example`` to use a
built-in model):

* ``info``      -- node/edge statistics;
* ``validate``  -- structural checks;
* ``verify``    -- deadlock / mismatch / persistence verification;
* ``simulate``  -- a random token-game run;
* ``analyse``   -- cycle-throughput performance analysis;
* ``export``    -- export to dot / json / pn-dot / g / verilog.

``campaign`` takes no model file: it expands a scenario grid
(``--grid depth=2..5 prefix=1``, ``--holes 0,1``, ...) into verification
jobs, fans them out over worker processes, and writes JSON/markdown reports
(see :mod:`repro.campaign`).  With ``--server URL`` the jobs are submitted
to a running verification daemon instead of a local pool.

``serve`` starts that daemon: the stdlib HTTP/JSON verification service of
:mod:`repro.service` (submit, poll, stream events, fetch reports), with
single-flight result reuse, per-tenant cache namespaces, backpressure and
rate limits.
"""

import argparse
import os
import sys

from repro._version import __version__
from repro.campaign import ScenarioSpec, generate_scenarios, run_campaign
from repro.campaign.jobs import DEFAULT_PROPERTIES, FACTORIES
from repro.dfs.examples import conditional_comp_dfs, token_ring
from repro.dfs.serialization import dfs_from_json
from repro.dfs.simulation import DfsSimulator
from repro.dfs.validation import has_errors, validate_structure
from repro.performance.analyzer import PerformanceAnalyzer
from repro.verification.checkers import CHECKERS
from repro.verification.verifier import CUSTOM_PROPERTIES, Verifier
from repro.workcraft.export import available_formats, export_model

#: Default on-disk verdict cache of ``repro-dfs campaign``.
DEFAULT_CAMPAIGN_CACHE = ".repro-campaign-cache"

_EXAMPLES = {
    "conditional": lambda: conditional_comp_dfs(),
    "ring": lambda: token_ring(),
}


def _load_model(args):
    if args.example:
        return _EXAMPLES[args.example]()
    if not args.model:
        raise SystemExit("either a model file or --example must be given")
    return dfs_from_json(args.model)


def _add_model_arguments(parser):
    parser.add_argument("model", nargs="?", help="path to a .json DFS model file")
    parser.add_argument("--example", choices=sorted(_EXAMPLES),
                        help="use a built-in example model instead of a file")


def _command_info(args):
    dfs = _load_model(args)
    stats = dfs.stats()
    print("model: {}".format(dfs.name))
    for key in ("nodes", "logic", "register", "control", "push", "pop", "edges"):
        print("  {:<10} {}".format(key, stats[key]))
    print("  inputs     {}".format(", ".join(dfs.input_registers()) or "-"))
    print("  outputs    {}".format(", ".join(dfs.output_registers()) or "-"))
    return 0


def _command_validate(args):
    dfs = _load_model(args)
    issues = validate_structure(dfs)
    if not issues:
        print("no structural issues found")
        return 0
    for issue in issues:
        print("[{}] {}".format(issue.severity.value, issue.message))
    return 1 if has_errors(issues) else 0


def _checker_help(default="exhaustive"):
    """The ``--checker`` help text, generated from the registry.

    Hand-maintained checker lists rot the moment a checker is registered;
    this renders every entry's one-line ``summary`` instead.
    """
    entries = ("{}: {}".format(name, CHECKERS[name].summary or "no summary")
               for name in sorted(CHECKERS))
    return "verification engine (default {}) -- {}".format(
        default, "; ".join(entries))


def _resolve_checker(args):
    """The effective (checker, checker_options) of ``--checker``/``--race``.

    ``--race`` turns the portfolio's budgeted rotation into a true process
    race; it implies ``--checker portfolio`` when no checker was named and
    rejects any other explicit choice.  A checker that cannot work without
    the SMT solver fails here, up front, with the install hint and exit
    code 2 (infrastructure, not a verdict) instead of a per-property
    inconclusive crawl.
    """
    checker = args.checker
    options = {}
    if args.race:
        if checker not in (None, "portfolio"):
            raise SystemExit(
                "--race races the portfolio's members; it cannot be combined "
                "with --checker {}".format(checker))
        checker = "portfolio"
        options["portfolio"] = {"race": True}
    checker = checker or "exhaustive"
    walk_options = {}
    if getattr(args, "walks", None):
        walk_options["walks"] = args.walks
    if getattr(args, "walk_backend", None):
        walk_options["backend"] = args.walk_backend
    if walk_options:
        # Top-level walk options reach the walk checker standalone or as a
        # portfolio member (the Verifier routes them either way).
        options.setdefault("walk", {}).update(walk_options)
    cls = CHECKERS.get(checker)
    if cls is not None and cls.requires_solver:
        from repro.exceptions import SolverUnavailableError
        from repro.smt.solver import require_solver
        try:
            require_solver()
        except SolverUnavailableError as exc:
            print("error: --checker {} needs an SMT solver: {}".format(
                checker, exc), file=sys.stderr)
            raise SystemExit(2)
    return checker, options


def _command_verify(args):
    dfs = _load_model(args)
    checker, checker_options = _resolve_checker(args)
    verifier = Verifier(dfs, max_states=args.max_states, engine=args.engine,
                        checker=checker, checker_options=checker_options,
                        workers=args.workers, spill_dir=args.spill_dir,
                        spill_bytes=args.spill_bytes, resume=args.resume)
    summary = verifier.verify_all(include_persistence=not args.no_persistence)
    print(summary.report())
    return 0 if summary.passed else 1


def _command_simulate(args):
    dfs = _load_model(args)
    simulator = DfsSimulator(dfs)
    fired = simulator.run_random(args.steps, seed=args.seed)
    print("fired {} event(s)".format(len(fired)))
    if args.trace:
        for name in fired:
            print("  {}".format(name))
    print("final state: {}".format(simulator.state.describe()))
    print("deadlocked: {}".format(simulator.is_deadlocked()))
    return 0


def _command_analyse(args):
    dfs = _load_model(args)
    report = PerformanceAnalyzer(dfs).analyse(slowest_count=args.slowest)
    print(report.render())
    return 0


def _command_export(args):
    dfs = _load_model(args)
    text = export_model(dfs, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("written {}".format(args.output))
    else:
        sys.stdout.write(text)
    return 0


def _parse_axis_values(text, convert=int):
    """Parse an axis value list: ``"2..5"`` ranges and/or comma lists."""
    values = []
    for chunk in str(text).split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            if ".." in chunk:
                if convert is not int:
                    raise SystemExit(
                        "ranges like {!r} are only supported for integer axes".format(
                            chunk))
                low, _, high = chunk.partition("..")
                start, stop = int(low, 0), int(high, 0)
                if stop < start:
                    raise SystemExit("empty axis range: {!r}".format(chunk))
                values.extend(range(start, stop + 1))
            elif convert is int:
                values.append(int(chunk, 0))
            else:
                values.append(convert(chunk))
        except ValueError:
            raise SystemExit("invalid axis value {!r} in {!r}".format(chunk, text))
    if not values:
        raise SystemExit("empty axis value list: {!r}".format(text))
    return values


def _parse_grid(entries):
    """Parse repeated ``--grid key=values`` entries into axis lists."""
    axes = {}
    known = {"depth": "depths", "prefix": "static_prefixes"}
    for entry in entries or []:
        key, separator, value = entry.partition("=")
        key = key.strip()
        if not separator or key not in known:
            raise SystemExit(
                "invalid --grid entry {!r} (expected depth=... or prefix=...)".format(
                    entry))
        axes[known[key]] = _parse_axis_values(value)
    return axes


def _parse_custom_properties(entries):
    """Parse repeated ``--custom name=expression`` entries."""
    custom = {}
    for entry in entries or []:
        name, separator, expression = entry.partition("=")
        name, expression = name.strip(), expression.strip()
        if not separator or not name or not expression:
            raise SystemExit(
                "invalid --custom entry {!r} (expected name=reach-expression)"
                .format(entry))
        if name in Verifier.PROPERTY_CHECKS:
            raise SystemExit(
                "--custom name {!r} collides with a built-in property".format(name))
        custom[name] = expression
    return custom


def _command_campaign(args):
    axes = _parse_grid(args.grid)
    custom = _parse_custom_properties(args.custom)
    properties = [name.strip() for name in args.properties.split(",") if name.strip()]
    known = set(Verifier.PROPERTY_CHECKS) | set(custom) | set(CUSTOM_PROPERTIES)
    unknown = [name for name in properties if name not in known]
    if unknown or not properties:
        raise SystemExit(
            "unknown --properties value(s): {} (known: {})".format(
                ", ".join(unknown) or "(none given)", ", ".join(sorted(known))))
    checker, checker_options = _resolve_checker(args)
    spec = ScenarioSpec(
        depths=axes.get("depths", (2, 3)),
        static_prefixes=axes.get("static_prefixes", (1,)),
        holes=_parse_axis_values(args.holes),
        lfsr_seeds=_parse_axis_values(args.seeds) if args.seeds else (None,),
        voltages=_parse_axis_values(args.voltages, float) if args.voltages else (None,),
        family=args.family,
        properties=properties,
        engine=args.engine,
        max_states=args.max_states,
        checker=checker,
        checker_options=checker_options,
        custom_properties=custom,
        simulate_steps=args.simulate_steps,
        workers=args.workers,
        spill_dir=args.spill_dir,
        spill_bytes=args.spill_bytes,
    )
    jobs, skipped = generate_scenarios(spec)
    # Fail on unwritable report locations *before* spending the campaign.
    for path in (args.json, args.markdown):
        if path:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
    if args.timeout is not None and args.jobs <= 0 and not args.quiet:
        print("note: --timeout only applies to worker processes; "
              "--jobs 0 runs inline without deadlines")
    if args.server:
        report = _run_remote_campaign(args, jobs, spec, skipped)
    else:
        cache_dir = None if args.no_cache else args.cache_dir
        report = run_campaign(
            jobs, parallelism=args.jobs, timeout=args.timeout,
            cache_dir=cache_dir, spec=spec, skipped=skipped)
    if not args.quiet:
        print(report.render_text())
    if args.json:
        report.write_json(args.json)
        if not args.quiet:
            print("json report written to {}".format(args.json))
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report.to_markdown())
        if not args.quiet:
            print("markdown report written to {}".format(args.markdown))
    # Infrastructure failures (a hung or dying worker) are not verdicts:
    # they exit 2 so CI can tell "the design is wrong" (1) from "the
    # campaign never actually ran to completion" (2).
    if report.count("crashed", "timeout", "cancelled"):
        return 2
    if not report.ok:
        return 1
    if args.strict and report.inconclusive:
        return 1
    return 0


def _run_remote_campaign(args, jobs, spec, skipped):
    """Submit *jobs* to a running daemon; rebuild a local report."""
    import time

    from repro.campaign.report import CampaignReport
    from repro.service.client import ServiceClient, result_from_record

    client = ServiceClient(args.server, tenant=args.tenant)
    started = time.perf_counter()
    tickets = [client.submit(job, retries=8) for job in jobs]
    results = []
    for job, ticket in zip(jobs, tickets):
        record = client.wait(ticket["id"],
                             timeout=args.timeout or 600.0)
        results.append(result_from_record(job, record))
    return CampaignReport(
        results, spec=spec, skipped=skipped, parallelism=0,
        timeout=args.timeout, cache_dir=None,
        elapsed=time.perf_counter() - started)


def _command_serve(args):
    from repro.service import VerificationService, run_daemon

    cache_dir = None if args.no_cache else args.cache_dir
    service = VerificationService(
        parallelism=max(1, args.jobs), timeout=args.timeout,
        cache_dir=cache_dir, max_depth=args.max_depth,
        rate=args.rate, burst=args.burst, state_dir=args.state_dir)

    def ready(daemon):
        print("serving verification on {}".format(daemon.address), flush=True)

    return run_daemon(service, host=args.host, port=args.port, ready=ready)


def build_parser():
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dfs",
        description="Design and verification of reconfigurable asynchronous pipelines",
    )
    parser.add_argument("--version", action="version", version="repro-dfs " + __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show model statistics")
    _add_model_arguments(info)
    info.set_defaults(handler=_command_info)

    validate = subparsers.add_parser("validate", help="run structural checks")
    _add_model_arguments(validate)
    validate.set_defaults(handler=_command_validate)

    verify = subparsers.add_parser("verify", help="run formal verification")
    _add_model_arguments(verify)
    verify.add_argument("--max-states", type=int, default=200000)
    verify.add_argument("--checker", choices=sorted(CHECKERS), default=None,
                        help=_checker_help())
    verify.add_argument("--engine",
                        choices=("auto", "batch", "compiled", "explicit"),
                        default="auto",
                        help="state-space engine of the exhaustive path "
                             "(auto prefers the NumPy batch engine when "
                             "the optional extra is installed)")
    verify.add_argument("--workers", type=int, default=0,
                        help="worker processes for sharded state-space "
                             "exploration (default 0: sequential; the "
                             "sharded graph is bit-identical)")
    verify.add_argument("--spill-dir", default=None, metavar="DIR",
                        help="directory for out-of-core exploration spill "
                             "files (default: REPRO_SPILL_DIR, else the "
                             "system temp dir when --spill-bytes is set)")
    verify.add_argument("--spill-bytes", type=int, default=None, metavar="N",
                        help="RAM budget in bytes for columnar state-space "
                             "arrays; above it they move to disk-backed "
                             "memmaps (default: REPRO_SPILL_BYTES)")
    verify.add_argument("--resume", default=None, metavar="DIR",
                        help="checkpoint directory for crash-safe "
                             "exploration: a manifest is committed after "
                             "every BFS level, and a leftover checkpoint "
                             "(from a killed run) is resumed from its last "
                             "complete level, bit-identical to an "
                             "uninterrupted run (NumPy engines only)")
    verify.add_argument("--race", action="store_true",
                        help="race the portfolio members in separate "
                             "processes, first conclusive verdict wins "
                             "(implies --checker portfolio)")
    verify.add_argument("--walks", type=int, default=None, metavar="N",
                        help="total guided random walks of the walk "
                             "checker (standalone or as a portfolio "
                             "member)")
    verify.add_argument("--walk-backend",
                        choices=("auto", "batch", "scalar"), default=None,
                        help="walk engine: the vectorised swarm (batch) or "
                             "the pure-int walker (scalar); auto prefers "
                             "the swarm when NumPy is available")
    verify.add_argument("--no-persistence", action="store_true",
                        help="skip the (slower) persistence check")
    verify.set_defaults(handler=_command_verify)

    simulate = subparsers.add_parser("simulate", help="run a random token-game simulation")
    _add_model_arguments(simulate)
    simulate.add_argument("--steps", type=int, default=100)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--trace", action="store_true", help="print the fired events")
    simulate.set_defaults(handler=_command_simulate)

    analyse = subparsers.add_parser("analyse", help="cycle-throughput performance analysis")
    _add_model_arguments(analyse)
    analyse.add_argument("--slowest", type=int, default=5)
    analyse.set_defaults(handler=_command_analyse)

    campaign = subparsers.add_parser(
        "campaign", help="verify a scenario grid in parallel (with a verdict cache)")
    campaign.add_argument("--grid", action="append", metavar="KEY=VALUES",
                          help="axis values, e.g. depth=2..5 or prefix=1,2 "
                               "(repeatable; defaults: depth=2..3 prefix=1)")
    campaign.add_argument("--holes", default="0",
                          help="comma list of injected-hole counts (default 0)")
    campaign.add_argument("--seeds", default=None,
                          help="comma list of LFSR stimulus seeds (e.g. 0xACE1)")
    campaign.add_argument("--voltages", default=None,
                          help="comma list of supply voltages (e.g. 1.2,0.5)")
    campaign.add_argument("--family", choices=sorted(FACTORIES), default="pipeline",
                          help="model family to sweep (default pipeline)")
    campaign.add_argument("--properties", default=",".join(DEFAULT_PROPERTIES),
                          help="comma list of checks (default {})".format(
                              ",".join(DEFAULT_PROPERTIES)))
    campaign.add_argument("--engine",
                          choices=("auto", "batch", "compiled", "explicit"),
                          default="auto")
    campaign.add_argument("--checker", choices=sorted(CHECKERS),
                          default=None,
                          help="per job: " + _checker_help())
    campaign.add_argument("--race", action="store_true",
                          help="race the portfolio members per job (implies "
                               "--checker portfolio; effective with --jobs 0, "
                               "pool workers fall back to rotation)")
    campaign.add_argument("--walks", type=int, default=None, metavar="N",
                          help="per job: total guided random walks of the "
                               "walk checker")
    campaign.add_argument("--walk-backend",
                          choices=("auto", "batch", "scalar"), default=None,
                          help="per job: walk engine (vectorised swarm or "
                               "pure-int scalar; auto prefers the swarm "
                               "when NumPy is available)")
    campaign.add_argument("--workers", type=int, default=0,
                          help="sharded-exploration workers per job "
                               "(effective with --jobs 0; pool workers fall "
                               "back to sequential exploration)")
    campaign.add_argument("--spill-dir", default=None, metavar="DIR",
                          help="per-job out-of-core spill directory "
                               "(default: REPRO_SPILL_DIR)")
    campaign.add_argument("--spill-bytes", type=int, default=None, metavar="N",
                          help="per-job RAM budget in bytes before columnar "
                               "state-space arrays spill to disk "
                               "(default: REPRO_SPILL_BYTES)")
    campaign.add_argument("--custom", action="append", metavar="NAME=EXPR",
                          help="define a named custom Reach property "
                               "(repeatable); reference it in --properties")
    campaign.add_argument("--max-states", type=int, default=200000)
    campaign.add_argument("--simulate-steps", type=int, default=0,
                          help="run an LFSR-seeded token-game smoke of N steps per job")
    campaign.add_argument("--jobs", "-j", type=int, default=1,
                          help="worker processes (0 runs inline, without "
                               "timeout enforcement; default 1)")
    campaign.add_argument("--timeout", type=float, default=None,
                          help="per-job deadline in seconds (worker mode only)")
    campaign.add_argument("--cache-dir", default=DEFAULT_CAMPAIGN_CACHE,
                          help="verdict cache directory (default {})".format(
                              DEFAULT_CAMPAIGN_CACHE))
    campaign.add_argument("--no-cache", action="store_true",
                          help="disable the verdict cache")
    campaign.add_argument("--server", metavar="URL", default=None,
                          help="submit jobs to a running `repro-dfs serve` "
                               "daemon instead of a local worker pool "
                               "(caching and parallelism are then the "
                               "server's; --timeout bounds the wait)")
    campaign.add_argument("--tenant", default=None,
                          help="tenant namespace for --server submissions "
                               "(isolated verdict cache per tenant)")
    campaign.add_argument("--json", metavar="PATH", help="write a JSON report")
    campaign.add_argument("--markdown", metavar="PATH", help="write a markdown report")
    campaign.add_argument("--strict", action="store_true",
                          help="fail on inconclusive (truncated) verdicts too")
    campaign.add_argument("--quiet", action="store_true")
    campaign.set_defaults(handler=_command_campaign)

    serve = subparsers.add_parser(
        "serve", help="run the verification service daemon (HTTP/JSON API)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks an ephemeral port; default 8765)")
    serve.add_argument("--jobs", "-j", type=int, default=2,
                       help="worker processes of the verification pool "
                            "(default 2)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-job deadline in seconds")
    serve.add_argument("--cache-dir", default=DEFAULT_CAMPAIGN_CACHE,
                       help="verdict cache root; tenants get isolated "
                            "namespaces below it (default {})".format(
                                DEFAULT_CAMPAIGN_CACHE))
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the verdict cache (single-flight "
                            "coalescing still deduplicates concurrent work)")
    serve.add_argument("--max-depth", type=int, default=64,
                       help="in-flight job bound before submissions get "
                            "429 + Retry-After (default 64)")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-tenant submissions/second budget "
                            "(default: unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="per-tenant burst size (default: max(1, rate))")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="durability root: ticket transitions are "
                            "write-ahead journaled below it, and a "
                            "restarted daemon replays the journal -- "
                            "finished tickets answer under their old ids, "
                            "in-flight jobs are re-run (default: no "
                            "durability)")
    serve.set_defaults(handler=_command_serve)

    export = subparsers.add_parser("export", help="export the model")
    _add_model_arguments(export)
    export.add_argument("--format", choices=sorted(available_formats()), default="dot")
    export.add_argument("--output", "-o", help="output file (stdout when omitted)")
    export.set_defaults(handler=_command_export)

    return parser


def main(argv=None):
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
