"""The ``repro-dfs`` command-line interface.

Sub-commands (each takes a DFS model file produced by
:func:`repro.dfs.serialization.dfs_to_json`, or ``--example`` to use a
built-in model):

* ``info``      -- node/edge statistics;
* ``validate``  -- structural checks;
* ``verify``    -- deadlock / mismatch / persistence verification;
* ``simulate``  -- a random token-game run;
* ``analyse``   -- cycle-throughput performance analysis;
* ``export``    -- export to dot / json / pn-dot / g / verilog.
"""

import argparse
import sys

from repro._version import __version__
from repro.dfs.examples import conditional_comp_dfs, token_ring
from repro.dfs.serialization import dfs_from_json
from repro.dfs.simulation import DfsSimulator
from repro.dfs.validation import has_errors, validate_structure
from repro.performance.analyzer import PerformanceAnalyzer
from repro.verification.verifier import Verifier
from repro.workcraft.export import available_formats, export_model

_EXAMPLES = {
    "conditional": lambda: conditional_comp_dfs(),
    "ring": lambda: token_ring(),
}


def _load_model(args):
    if args.example:
        return _EXAMPLES[args.example]()
    if not args.model:
        raise SystemExit("either a model file or --example must be given")
    return dfs_from_json(args.model)


def _add_model_arguments(parser):
    parser.add_argument("model", nargs="?", help="path to a .json DFS model file")
    parser.add_argument("--example", choices=sorted(_EXAMPLES),
                        help="use a built-in example model instead of a file")


def _command_info(args):
    dfs = _load_model(args)
    stats = dfs.stats()
    print("model: {}".format(dfs.name))
    for key in ("nodes", "logic", "register", "control", "push", "pop", "edges"):
        print("  {:<10} {}".format(key, stats[key]))
    print("  inputs     {}".format(", ".join(dfs.input_registers()) or "-"))
    print("  outputs    {}".format(", ".join(dfs.output_registers()) or "-"))
    return 0


def _command_validate(args):
    dfs = _load_model(args)
    issues = validate_structure(dfs)
    if not issues:
        print("no structural issues found")
        return 0
    for issue in issues:
        print("[{}] {}".format(issue.severity.value, issue.message))
    return 1 if has_errors(issues) else 0


def _command_verify(args):
    dfs = _load_model(args)
    verifier = Verifier(dfs, max_states=args.max_states)
    summary = verifier.verify_all(include_persistence=not args.no_persistence)
    print(summary.report())
    return 0 if summary.passed else 1


def _command_simulate(args):
    dfs = _load_model(args)
    simulator = DfsSimulator(dfs)
    fired = simulator.run_random(args.steps, seed=args.seed)
    print("fired {} event(s)".format(len(fired)))
    if args.trace:
        for name in fired:
            print("  {}".format(name))
    print("final state: {}".format(simulator.state.describe()))
    print("deadlocked: {}".format(simulator.is_deadlocked()))
    return 0


def _command_analyse(args):
    dfs = _load_model(args)
    report = PerformanceAnalyzer(dfs).analyse(slowest_count=args.slowest)
    print(report.render())
    return 0


def _command_export(args):
    dfs = _load_model(args)
    text = export_model(dfs, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("written {}".format(args.output))
    else:
        sys.stdout.write(text)
    return 0


def build_parser():
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dfs",
        description="Design and verification of reconfigurable asynchronous pipelines",
    )
    parser.add_argument("--version", action="version", version="repro-dfs " + __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show model statistics")
    _add_model_arguments(info)
    info.set_defaults(handler=_command_info)

    validate = subparsers.add_parser("validate", help="run structural checks")
    _add_model_arguments(validate)
    validate.set_defaults(handler=_command_validate)

    verify = subparsers.add_parser("verify", help="run formal verification")
    _add_model_arguments(verify)
    verify.add_argument("--max-states", type=int, default=200000)
    verify.add_argument("--no-persistence", action="store_true",
                        help="skip the (slower) persistence check")
    verify.set_defaults(handler=_command_verify)

    simulate = subparsers.add_parser("simulate", help="run a random token-game simulation")
    _add_model_arguments(simulate)
    simulate.add_argument("--steps", type=int, default=100)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--trace", action="store_true", help="print the fired events")
    simulate.set_defaults(handler=_command_simulate)

    analyse = subparsers.add_parser("analyse", help="cycle-throughput performance analysis")
    _add_model_arguments(analyse)
    analyse.add_argument("--slowest", type=int, default=5)
    analyse.set_defaults(handler=_command_analyse)

    export = subparsers.add_parser("export", help="export the model")
    _add_model_arguments(export)
    export.add_argument("--format", choices=sorted(available_formats()), default="dot")
    export.add_argument("--output", "-o", help="output file (stdout when omitted)")
    export.set_defaults(handler=_command_export)

    return parser


def main(argv=None):
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
