"""A small plugin registry describing the tool's model types and operations.

Workcraft organises its functionality as plugins contributed per model type
(editors, simulators, verifiers, exporters).  The registry here captures the
same structure so that generic code -- the project workspace and the CLI --
can operate on any registered model type without hard-coding it.
"""

from repro.exceptions import ModelError
from repro.dfs.model import DataflowStructure
from repro.dfs.serialization import dfs_from_document, dfs_to_document
from repro.petri.net import PetriNet


class ModelPlugin:
    """Description of one model type supported by the tool."""

    def __init__(self, name, model_class, description="", serializer=None,
                 deserializer=None, operations=None):
        self.name = name
        self.model_class = model_class
        self.description = description
        self.serializer = serializer
        self.deserializer = deserializer
        self.operations = dict(operations or {})

    def handles(self, model):
        return isinstance(model, self.model_class)

    def to_document(self, model):
        if self.serializer is None:
            raise ModelError("model type {!r} has no serializer".format(self.name))
        return self.serializer(model)

    def from_document(self, document):
        if self.deserializer is None:
            raise ModelError("model type {!r} has no deserializer".format(self.name))
        return self.deserializer(document)

    def __repr__(self):
        return "ModelPlugin({!r}, operations={})".format(self.name, sorted(self.operations))


class PluginRegistry:
    """A collection of :class:`ModelPlugin` objects."""

    def __init__(self):
        self._plugins = {}

    def register(self, plugin):
        if plugin.name in self._plugins:
            raise ModelError("duplicate plugin: {!r}".format(plugin.name))
        self._plugins[plugin.name] = plugin
        return plugin

    @property
    def plugins(self):
        return dict(self._plugins)

    def plugin(self, name):
        try:
            return self._plugins[name]
        except KeyError:
            raise ModelError("unknown plugin: {!r}".format(name))

    def plugin_for(self, model):
        """Find the plugin handling the given model instance."""
        for plugin in self._plugins.values():
            if plugin.handles(model):
                return plugin
        raise ModelError(
            "no registered plugin handles objects of type {!r}".format(type(model).__name__))

    def __contains__(self, name):
        return name in self._plugins

    def __repr__(self):
        return "PluginRegistry({})".format(sorted(self._plugins))


def _dfs_operations():
    # Imported lazily to keep module import costs low and avoid cycles.
    from repro.dfs.simulation import DfsSimulator
    from repro.dfs.translation import to_petri_net
    from repro.dfs.validation import validate_structure
    from repro.performance.analyzer import PerformanceAnalyzer
    from repro.verification.verifier import Verifier

    return {
        "validate": validate_structure,
        "verify": lambda dfs, **kw: Verifier(dfs, **kw).verify_all(),
        "simulate": lambda dfs, **kw: DfsSimulator(dfs),
        "translate": to_petri_net,
        "analyse": lambda dfs, **kw: PerformanceAnalyzer(dfs).analyse(**kw),
    }


def default_registry():
    """The registry with the built-in DFS and Petri-net plugins."""
    registry = PluginRegistry()
    registry.register(ModelPlugin(
        "dfs", DataflowStructure,
        description="Dataflow Structures (reconfigurable asynchronous pipelines)",
        serializer=dfs_to_document,
        deserializer=dfs_from_document,
        operations=_dfs_operations(),
    ))
    registry.register(ModelPlugin(
        "petri", PetriNet,
        description="Petri nets with read arcs (verification back-end)",
        operations={},
    ))
    return registry
