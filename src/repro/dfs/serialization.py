"""Serialization of DFS models to and from a JSON document format.

The format plays the role of Workcraft ``.work`` files: it is self-describing
(``format`` / ``version`` header), lists every node with its type, initial
marking and delay, and lists the interconnect edges.
"""

from repro.exceptions import SerializationError
from repro.dfs.model import DataflowStructure
from repro.dfs.nodes import NodeType
from repro.utils.serialization import dump_json, expect_format, load_json

FORMAT_NAME = "repro-dfs"
FORMAT_VERSION = 1


def dfs_to_document(dfs):
    """Convert a dataflow structure into a JSON-serialisable document."""
    nodes = []
    for name in sorted(dfs.nodes):
        node = dfs.node(name)
        entry = {
            "name": name,
            "type": node.node_type.value,
            "delay": node.delay,
        }
        if node.is_register:
            entry["marked"] = node.marked
            if node.is_dynamic and node.marked:
                entry["value"] = bool(node.initial_value)
        else:
            if node.function is not None:
                entry["function"] = node.function
        if node.annotation:
            entry["annotation"] = dict(node.annotation)
        nodes.append(entry)
    edges = [[source, target] for source, target in sorted(dfs.edges)]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": dfs.name,
        "nodes": nodes,
        "edges": edges,
    }


def dfs_to_json(dfs, path=None, indent=2):
    """Serialize a DFS model to JSON text or to a file (when *path* is given)."""
    return dump_json(dfs_to_document(dfs), path=path, indent=indent)


def dfs_from_document(document):
    """Reconstruct a dataflow structure from a document produced by
    :func:`dfs_to_document`."""
    expect_format(document, FORMAT_NAME)
    if document.get("version") != FORMAT_VERSION:
        raise SerializationError(
            "unsupported {} document version: {!r}".format(
                FORMAT_NAME, document.get("version")
            )
        )
    dfs = DataflowStructure(document.get("name", "dfs"))
    for entry in document.get("nodes", []):
        name = entry.get("name")
        type_name = entry.get("type")
        try:
            node_type = NodeType(type_name)
        except ValueError:
            raise SerializationError("unknown node type: {!r}".format(type_name))
        delay = entry.get("delay")
        if node_type is NodeType.LOGIC:
            dfs.add_logic(name, delay=delay, function=entry.get("function"),
                          annotation=entry.get("annotation"))
        else:
            marked = bool(entry.get("marked", False))
            value = entry.get("value", True)
            if node_type is NodeType.REGISTER:
                dfs.add_register(name, marked=marked, delay=delay,
                                 annotation=entry.get("annotation"))
            elif node_type is NodeType.CONTROL:
                dfs.add_control(name, marked=marked, value=value, delay=delay,
                                annotation=entry.get("annotation"))
            elif node_type is NodeType.PUSH:
                dfs.add_push(name, marked=marked, value=value, delay=delay,
                             annotation=entry.get("annotation"))
            else:
                dfs.add_pop(name, marked=marked, value=value, delay=delay,
                            annotation=entry.get("annotation"))
    for edge in document.get("edges", []):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise SerializationError("malformed edge entry: {!r}".format(edge))
        dfs.connect(edge[0], edge[1])
    return dfs


def dfs_from_json(source):
    """Load a DFS model from a JSON string or file path."""
    return dfs_from_document(load_json(source))
