"""Node types of the DFS formalism (Fig. 2 of the paper)."""

from enum import Enum

from repro.exceptions import ModelError
from repro.utils.naming import is_valid_name


class NodeType(Enum):
    """The five DFS node types."""

    LOGIC = "logic"
    REGISTER = "register"
    CONTROL = "control"
    PUSH = "push"
    POP = "pop"

    @property
    def is_register(self):
        """True for all register-like nodes (everything except LOGIC)."""
        return self is not NodeType.LOGIC

    @property
    def is_dynamic(self):
        """True for the dynamic register types introduced by the DFS model."""
        return self in (NodeType.CONTROL, NodeType.PUSH, NodeType.POP)


#: Default delays (in arbitrary time units) used by the performance analyser
#: when a node does not specify its own delay.  Logic is the "computation"
#: and dominates; registers add a small latching overhead.
DEFAULT_DELAYS = {
    NodeType.LOGIC: 1.0,
    NodeType.REGISTER: 0.2,
    NodeType.CONTROL: 0.2,
    NodeType.PUSH: 0.25,
    NodeType.POP: 0.25,
}


class Node:
    """Common base class of DFS nodes."""

    node_type = None

    def __init__(self, name, delay=None, annotation=None):
        if not is_valid_name(name):
            raise ModelError("invalid node name: {!r}".format(name))
        self.name = name
        self.delay = float(delay) if delay is not None else DEFAULT_DELAYS[self.node_type]
        self.annotation = dict(annotation) if annotation else {}

    @property
    def is_register(self):
        return self.node_type.is_register

    @property
    def is_dynamic(self):
        return self.node_type.is_dynamic

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, self.name)


class LogicNode(Node):
    """A combinational dataflow component.

    The optional *function* annotation records the operation the node stands
    for (used by the functional OPE simulation and by the circuit mapping);
    it plays no role in the abstract token semantics.
    """

    node_type = NodeType.LOGIC

    def __init__(self, name, delay=None, function=None, annotation=None):
        super().__init__(name, delay=delay, annotation=annotation)
        self.function = function


class RegisterNode(Node):
    """A register node of any of the four register types.

    Parameters
    ----------
    name:
        Node name.
    node_type:
        One of ``REGISTER``, ``CONTROL``, ``PUSH``, ``POP``.
    marked:
        Whether the register initially holds a token.
    initial_value:
        For dynamic registers that are initially marked: ``True`` or
        ``False``.  A control loop of a reconfigurable stage is included in
        the pipeline by initialising it with True tokens and excluded with
        False tokens.  Ignored (and normalised to ``None``) when the register
        is initially unmarked or is a plain register.
    """

    def __init__(self, name, node_type, marked=False, initial_value=None,
                 delay=None, annotation=None):
        if node_type is NodeType.LOGIC or not isinstance(node_type, NodeType):
            raise ModelError(
                "register node {!r} must have a register node type, got {!r}".format(
                    name, node_type
                )
            )
        self.node_type = node_type
        super().__init__(name, delay=delay, annotation=annotation)
        self.marked = bool(marked)
        if not self.marked or not node_type.is_dynamic:
            self.initial_value = None
        else:
            self.initial_value = True if initial_value is None else bool(initial_value)

    def __repr__(self):
        flags = []
        if self.marked:
            flags.append("marked")
            if self.initial_value is not None:
                flags.append("value={}".format(self.initial_value))
        inside = ", ".join([repr(self.name), self.node_type.value] + flags)
        return "RegisterNode({})".format(inside)
