"""A fluent builder for dataflow structures.

The builder is a thin convenience layer over
:class:`~repro.dfs.model.DataflowStructure`: it remembers the last node added
so that pipelines can be written as chains, and it offers a ``control`` helper
that wires a control register to all the push/pop nodes it guards.
"""

from repro.exceptions import ModelError
from repro.dfs.model import DataflowStructure


class DfsBuilder:
    """Builds a :class:`DataflowStructure` with a chainable API.

    Example
    -------
    >>> dfs = (DfsBuilder("pipe")
    ...        .register("in", marked=True)
    ...        .logic("f")
    ...        .register("out")
    ...        .chain("in", "f", "out")
    ...        .build())
    >>> sorted(dfs.nodes)
    ['f', 'in', 'out']
    """

    def __init__(self, name="dfs"):
        self._dfs = DataflowStructure(name)
        self._last = None

    # -- node creation ----------------------------------------------------------

    def logic(self, name, delay=None, function=None):
        """Add a logic node."""
        self._dfs.add_logic(name, delay=delay, function=function)
        self._last = name
        return self

    def register(self, name, marked=False, delay=None):
        """Add a plain register node."""
        self._dfs.add_register(name, marked=marked, delay=delay)
        self._last = name
        return self

    def control(self, name, marked=False, value=True, delay=None, controls=()):
        """Add a control register, optionally wiring it to the nodes it guards."""
        self._dfs.add_control(name, marked=marked, value=value, delay=delay)
        self._last = name
        for target in controls:
            self._dfs.connect(name, target)
        return self

    def push(self, name, marked=False, value=True, delay=None):
        """Add a push register node."""
        self._dfs.add_push(name, marked=marked, value=value, delay=delay)
        self._last = name
        return self

    def pop(self, name, marked=False, value=True, delay=None):
        """Add a pop register node."""
        self._dfs.add_pop(name, marked=marked, value=value, delay=delay)
        self._last = name
        return self

    # -- wiring -------------------------------------------------------------------

    def connect(self, source, target):
        """Add a single edge."""
        self._dfs.connect(source, target)
        return self

    def chain(self, *names):
        """Connect the given nodes into a chain ``a -> b -> c -> ...``."""
        if len(names) < 2:
            raise ModelError("a chain needs at least two nodes")
        self._dfs.connect_chain(*names)
        return self

    def then(self, target):
        """Connect the most recently added node to *target*."""
        if self._last is None:
            raise ModelError("no node has been added yet")
        self._dfs.connect(self._last, target)
        return self

    def guard(self, control_name, *targets):
        """Wire an existing control register to the nodes it guards."""
        for target in targets:
            self._dfs.connect(control_name, target)
        return self

    def control_loop(self, base_name, length=3, value=True, guards=()):
        """Create a token-oscillation loop of control registers.

        The paper's reconfigurable stages use 3-register loops -- the minimum
        number of registers required for a token to oscillate.  The first
        register of the loop is initially marked with the configured value;
        the others are empty.  The first register is also connected to every
        node in *guards*.

        Returns the list of register names of the loop.
        """
        if length < 3:
            raise ModelError(
                "a control loop needs at least 3 registers for a token to oscillate"
            )
        names = ["{}{}".format(base_name, index) for index in range(length)]
        for index, name in enumerate(names):
            self._dfs.add_control(name, marked=(index == 0), value=value)
        for index, name in enumerate(names):
            self._dfs.connect(name, names[(index + 1) % length])
        for target in guards:
            self._dfs.connect(names[0], target)
        self._last = names[0]
        return names

    # -- finalisation -----------------------------------------------------------------

    @property
    def model(self):
        """The structure being built (live reference)."""
        return self._dfs

    def build(self):
        """Return the constructed dataflow structure."""
        return self._dfs
