"""Structural validation of DFS models.

These are the quick, purely structural checks performed before the (more
expensive) behavioural verification: combinational cycles, dangling logic,
uncontrolled dynamic registers, too-short control loops, and mixed-value
control sets that would disable a node from the very start.
"""

from enum import Enum

from repro.utils.graphs import enumerate_simple_cycles


class Severity(Enum):
    """Severity of a validation issue."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


class Issue:
    """A single validation finding."""

    def __init__(self, severity, message, nodes=()):
        self.severity = severity
        self.message = message
        self.nodes = tuple(nodes)

    @property
    def is_error(self):
        return self.severity is Severity.ERROR

    def __repr__(self):
        return "Issue({}, {!r}, nodes={})".format(
            self.severity.value, self.message, list(self.nodes)
        )


def _logic_only_cycles(dfs):
    """Cycles made entirely of logic nodes (combinational feedback)."""
    logic = set(dfs.logic_nodes)
    edges = [(s, t) for s, t in dfs.edges if s in logic and t in logic]
    return enumerate_simple_cycles(edges, nodes=logic)


def _control_loops(dfs):
    """Cycles made entirely of control registers (token oscillation loops)."""
    controls = set(dfs.control_registers)
    edges = [(s, t) for s, t in dfs.edges if s in controls and t in controls]
    return enumerate_simple_cycles(edges, nodes=controls)


def validate_structure(dfs):
    """Run all structural checks and return a list of :class:`Issue` objects."""
    issues = []

    # Combinational feedback: a cycle of logic nodes has no register to break it.
    for cycle in _logic_only_cycles(dfs):
        issues.append(Issue(
            Severity.ERROR,
            "combinational cycle through logic nodes: {}".format(" -> ".join(cycle)),
            nodes=cycle,
        ))

    # Logic nodes must sit between registers: dangling logic can never settle.
    for name in dfs.logic_nodes:
        if not dfs.preset(name):
            issues.append(Issue(
                Severity.ERROR,
                "logic node {!r} has no preset (it can never evaluate meaningfully)".format(name),
                nodes=[name],
            ))
        if not dfs.postset(name):
            issues.append(Issue(
                Severity.WARNING,
                "logic node {!r} has no postset (its result is unused)".format(name),
                nodes=[name],
            ))

    # Dynamic registers without a controlling register act as plain registers.
    for name in dfs.push_registers + dfs.pop_registers:
        if not dfs.controls_of(name):
            issues.append(Issue(
                Severity.WARNING,
                "{} register {!r} has no control register in its R-preset; "
                "it will behave as a static register".format(dfs.kind(name).value, name),
                nodes=[name],
            ))

    # Control loops shorter than 3 registers cannot oscillate a token.
    for loop in _control_loops(dfs):
        if len(loop) in (1, 2):
            issues.append(Issue(
                Severity.ERROR,
                "control loop {} has fewer than 3 registers; a token cannot "
                "oscillate in it".format(" -> ".join(loop)),
                nodes=loop,
            ))

    # Mixed initial values among the controls of one node disable it permanently.
    for name in dfs.push_registers + dfs.pop_registers + dfs.control_registers:
        values = set()
        for control in dfs.controls_of(name):
            node = dfs.node(control)
            if node.marked and node.initial_value is not None:
                values.add(node.initial_value)
        if len(values) > 1:
            issues.append(Issue(
                Severity.ERROR,
                "node {!r} is guarded by control registers initialised with "
                "both True and False tokens; it is disabled from the start".format(name),
                nodes=[name],
            ))

    # Isolated nodes are almost certainly a modelling mistake.
    for name in sorted(dfs.nodes):
        if not dfs.preset(name) and not dfs.postset(name):
            issues.append(Issue(
                Severity.WARNING,
                "node {!r} is isolated (no incident edges)".format(name),
                nodes=[name],
            ))

    # A model without any register cannot hold tokens at all.
    if not dfs.register_nodes:
        issues.append(Issue(
            Severity.ERROR,
            "the model contains no register nodes",
        ))

    return issues


def has_errors(issues):
    """Return ``True`` when the issue list contains at least one error."""
    return any(issue.is_error for issue in issues)
