"""Ready-made DFS models used throughout the paper, tests and benchmarks.

* :func:`conditional_comp_dfs` -- the motivating example of Fig. 1b: a costly
  pipelined function ``comp`` guarded by a cheap predicate ``cond`` through a
  control register, a push register (``filt``) and a pop register (``out``).
* :func:`conditional_comp_sdfs` -- the SDFS rendering of the same pipeline
  (Fig. 1a) where both ``cond`` and ``comp`` are always executed and the
  result is filtered at the end.
* :func:`linear_pipeline` -- a plain linear pipeline of alternating registers
  and logic, useful for throughput analysis and unit tests.
* :func:`token_ring` -- a ring of registers with a configurable number of
  tokens, the canonical example for cycle-throughput analysis.
"""

from repro.dfs.model import DataflowStructure


def conditional_comp_dfs(comp_stages=1, comp_delay=4.0, cond_delay=0.5, name="conditional_dfs"):
    """Build the DFS model of the motivating example (Fig. 1b).

    Parameters
    ----------
    comp_stages:
        Number of register+logic stages of the expensive ``comp`` pipeline.
    comp_delay:
        Delay of each ``comp`` logic node (the expensive computation).
    cond_delay:
        Delay of the cheap ``cond`` predicate.
    """
    dfs = DataflowStructure(name)
    dfs.add_register("in", marked=False)
    dfs.add_logic("cond", delay=cond_delay, function="cond")
    dfs.add_control("ctrl")
    dfs.add_push("filt")
    dfs.add_pop("out")

    dfs.connect("in", "cond")
    dfs.connect("cond", "ctrl")
    dfs.connect("ctrl", "filt")
    dfs.connect("ctrl", "out")
    dfs.connect("in", "filt")

    previous = "filt"
    for index in range(comp_stages):
        logic = "comp{}".format(index + 1)
        register = "r{}".format(index + 1)
        dfs.add_logic(logic, delay=comp_delay, function="comp")
        dfs.add_register(register)
        dfs.connect(previous, logic)
        dfs.connect(logic, register)
        previous = register
    dfs.connect(previous, "out")
    return dfs


def conditional_comp_sdfs(comp_stages=1, comp_delay=4.0, cond_delay=0.5, name="conditional_sdfs"):
    """Build the SDFS model of the motivating example (Fig. 1a).

    The static model has no way to bypass the expensive computation: both
    ``cond`` and ``comp`` are evaluated for every token, and a final ``filt``
    logic stage merges them before the output register.
    """
    dfs = DataflowStructure(name)
    dfs.add_register("in", marked=False)
    dfs.add_logic("cond", delay=cond_delay, function="cond")
    dfs.add_register("c")
    dfs.connect("in", "cond")
    dfs.connect("cond", "c")

    previous = "in"
    for index in range(comp_stages):
        logic = "comp{}".format(index + 1)
        register = "r{}".format(index + 1)
        dfs.add_logic(logic, delay=comp_delay, function="comp")
        dfs.add_register(register)
        dfs.connect(previous, logic)
        dfs.connect(logic, register)
        previous = register

    dfs.add_logic("filt", delay=cond_delay, function="filt")
    dfs.add_register("out")
    dfs.connect(previous, "filt")
    dfs.connect("c", "filt")
    dfs.connect("filt", "out")
    return dfs


def linear_pipeline(stages=3, marked_first=True, logic_delay=1.0, name="linear_pipeline"):
    """Build a linear pipeline ``r0 -> f1 -> r1 -> ... -> fN -> rN``."""
    dfs = DataflowStructure(name)
    dfs.add_register("r0", marked=marked_first)
    previous = "r0"
    for index in range(1, stages + 1):
        logic = "f{}".format(index)
        register = "r{}".format(index)
        dfs.add_logic(logic, delay=logic_delay, function="f{}".format(index))
        dfs.add_register(register)
        dfs.connect(previous, logic)
        dfs.connect(logic, register)
        previous = register
    return dfs


def token_ring(registers=4, tokens=1, logic_delay=1.0, name="token_ring"):
    """Build a ring of registers separated by logic nodes, with some tokens.

    The ring is the canonical structure for cycle-throughput analysis: its
    throughput is limited by ``tokens / total_delay`` (token-limited) and by
    ``holes / total_delay`` (bubble-limited).
    """
    if tokens >= registers:
        raise ValueError("a ring with {} registers can hold at most {} tokens".format(
            registers, registers - 1))
    dfs = DataflowStructure(name)
    for index in range(registers):
        dfs.add_register("r{}".format(index), marked=(index < tokens))
        dfs.add_logic("f{}".format(index), delay=logic_delay)
    for index in range(registers):
        nxt = (index + 1) % registers
        dfs.connect("r{}".format(index), "f{}".format(index))
        dfs.connect("f{}".format(index), "r{}".format(nxt))
    return dfs
