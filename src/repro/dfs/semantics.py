"""Enabling rules of DFS nodes (equations (1)-(5) of the paper).

This module is the single source of truth for the behavioural semantics:
it turns a :class:`~repro.dfs.model.DataflowStructure` into a set of
:class:`Event` objects, each with a guard expressed as a conjunction of
literals over the state variables of *other* nodes.  The token-game
simulator evaluates the guards directly; the Petri-net translation maps each
literal to a read arc.  Because both views are generated from the same
events, a DFS-level trace and its Petri-net counterpart use identical names.

State variables (per node ``x``):

* ``C(x)``  -- evaluation state of a logic node;
* ``M(x)``  -- marking of a register node;
* ``Mt(x)`` -- the register is marked *and* carries a True (real) token;
* ``Mf(x)`` -- the register is marked *and* carries a False (empty) token.

Interpretation choices documented here (the paper leaves them implicit):

* A push or pop register with no control register in its R-preset behaves as
  a plain register: only the "true" events are generated for it.
* A control register whose R-preset contains no control register makes a
  non-deterministic True/False choice (both marking events are enabled), as
  in Fig. 4 of the paper.
* The ``Mt`` restriction on pop registers in the R-postset (equation (4))
  applies to data-path registers only; a *control* register acknowledging a
  pop it controls accepts either token value.  Without this refinement the
  False branch of the paper's own motivating example (Fig. 1b) would
  deadlock, because the control register could never observe ``Mt`` of the
  pop it has just steered into bypass mode.
* A false-controlled pop may produce the next empty token only after its
  control registers have been released (their marking consumed), which ties
  empty-token production one-to-one to control tokens.
"""

from enum import Enum

from repro.dfs.nodes import NodeType
from repro.exceptions import TranslationError


class Literal:
    """A single condition ``kind(node) == value`` in an event guard."""

    __slots__ = ("kind", "node", "value")

    #: Valid literal kinds.
    KINDS = ("C", "M", "Mt", "Mf")

    def __init__(self, kind, node, value):
        if kind not in self.KINDS:
            raise ValueError("unknown literal kind: {!r}".format(kind))
        self.kind = kind
        self.node = node
        self.value = bool(value)

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.kind == other.kind
            and self.node == other.node
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.kind, self.node, self.value))

    def __repr__(self):
        text = "{}({})".format(self.kind, self.node)
        return text if self.value else "!" + text


class EventAction(Enum):
    """What an event does to its node's state."""

    EVALUATE = "evaluate"          # C: 0 -> 1
    RESET = "reset"                # C: 1 -> 0
    MARK = "mark"                  # M: 0 -> 1 (plain register)
    UNMARK = "unmark"              # M: 1 -> 0 (plain register)
    MARK_TRUE = "mark_true"        # M: 0 -> 1 with a True token
    MARK_FALSE = "mark_false"      # M: 0 -> 1 with a False token
    UNMARK_TRUE = "unmark_true"    # M: 1 -> 0 releasing a True token
    UNMARK_FALSE = "unmark_false"  # M: 1 -> 0 releasing a False token


#: Actions that mark a register.
MARKING_ACTIONS = (EventAction.MARK, EventAction.MARK_TRUE, EventAction.MARK_FALSE)
#: Actions that unmark a register.
UNMARKING_ACTIONS = (
    EventAction.UNMARK,
    EventAction.UNMARK_TRUE,
    EventAction.UNMARK_FALSE,
)


class Event:
    """An atomic state change of one DFS node, with its guard."""

    __slots__ = ("name", "node", "action", "guard")

    def __init__(self, name, node, action, guard):
        self.name = name
        self.node = node
        self.action = action
        self.guard = tuple(guard)

    @property
    def is_marking(self):
        return self.action in MARKING_ACTIONS

    @property
    def is_unmarking(self):
        return self.action in UNMARKING_ACTIONS

    @property
    def token_value(self):
        """The token value involved, for dynamic register events."""
        if self.action in (EventAction.MARK_TRUE, EventAction.UNMARK_TRUE):
            return True
        if self.action in (EventAction.MARK_FALSE, EventAction.UNMARK_FALSE):
            return False
        return None

    def __repr__(self):
        return "Event({!r}, {}, guard={})".format(self.name, self.action.value, list(self.guard))


def event_name(node, action):
    """The canonical (paper-style) name of an event / Petri-net transition."""
    suffix = "+" if action in MARKING_ACTIONS or action is EventAction.EVALUATE else "-"
    if action in (EventAction.EVALUATE, EventAction.RESET):
        return "C_{}{}".format(node, suffix)
    if action in (EventAction.MARK, EventAction.UNMARK):
        return "M_{}{}".format(node, suffix)
    if action in (EventAction.MARK_TRUE, EventAction.UNMARK_TRUE):
        return "Mt_{}{}".format(node, suffix)
    return "Mf_{}{}".format(node, suffix)


def marking_event_names(node):
    """All event names that mark register *node*, plain or by token value.

    The single source of truth for "a token arrived at this register":
    simulators and analyzers that count token arrivals match fired event
    names against this set instead of re-deriving the naming scheme.

    >>> sorted(marking_event_names("out"))
    ['M_out+', 'Mf_out+', 'Mt_out+']
    """
    return frozenset(event_name(node, action) for action in MARKING_ACTIONS)


def place_name(kind, node, bit):
    """Name of the translation place encoding ``kind(node) == bit``.

    Every Boolean state variable of the Petri-net translation becomes a
    complementary place pair named by this function; verification code that
    needs to address e.g. "register ``x`` holds a True token" must build the
    name here (``place_name("Mt", x, 1)``) rather than formatting it inline.

    >>> place_name("M", "ctrl", 1)
    'M_ctrl_1'
    """
    if bit not in (0, 1):
        raise TranslationError("place bit must be 0 or 1, got {!r}".format(bit))
    if kind not in Literal.KINDS:
        raise TranslationError(
            "unknown state-variable kind {!r} (known: {})".format(
                kind, ", ".join(Literal.KINDS)))
    return "{}_{}_{}".format(kind, node, bit)


def _sorted(literals):
    return sorted(literals, key=lambda lit: (lit.kind, lit.node, lit.value))


# -- guard fragments -----------------------------------------------------------


def _logic_up_guard(dfs, name):
    """Guard of C(l): 0 -> 1 (equation (3), set part)."""
    guard = []
    for k in sorted(dfs.preset(name)):
        node = dfs.node(k)
        if node.node_type is NodeType.LOGIC:
            guard.append(Literal("C", k, True))
        else:
            guard.append(Literal("M", k, True))
            if node.node_type is NodeType.PUSH:
                guard.append(Literal("Mt", k, True))
    return guard


def _logic_down_guard(dfs, name):
    """Guard of C(l): 1 -> 0 (equation (3), reset part)."""
    guard = []
    for k in sorted(dfs.preset(name)):
        node = dfs.node(k)
        if node.node_type is NodeType.LOGIC:
            guard.append(Literal("C", k, False))
        else:
            guard.append(Literal("M", k, False))
    return guard


def _register_up_guard(dfs, name):
    """Static+dynamic guard of M(r): 0 -> 1 (equations (2) and (4), set part)."""
    guard = []
    for k in sorted(dfs.logic_preset(name)):
        guard.append(Literal("C", k, True))
    for q in sorted(dfs.r_preset(name)):
        guard.append(Literal("M", q, True))
        if dfs.kind(q) is NodeType.PUSH:
            guard.append(Literal("Mt", q, True))
    for q in sorted(dfs.r_postset(name)):
        guard.append(Literal("M", q, False))
    return guard


def _register_down_guard(dfs, name):
    """Static+dynamic guard of M(r): 1 -> 0 (equations (2) and (4), reset part)."""
    node = dfs.node(name)
    guard = []
    for k in sorted(dfs.logic_preset(name)):
        guard.append(Literal("C", k, False))
    for q in sorted(dfs.r_preset(name)):
        guard.append(Literal("M", q, False))
    for q in sorted(dfs.r_postset(name)):
        guard.append(Literal("M", q, True))
        # Data-path registers must see a *real* token in a downstream pop
        # before releasing their own token; a control register acknowledging
        # the pop it controls accepts either token value (see module
        # docstring).
        if dfs.kind(q) is NodeType.POP and node.node_type is not NodeType.CONTROL:
            guard.append(Literal("Mt", q, True))
    return guard


# -- per-node events -----------------------------------------------------------


def _logic_events(dfs, name):
    return [
        Event(event_name(name, EventAction.EVALUATE), name, EventAction.EVALUATE,
              _sorted(_logic_up_guard(dfs, name))),
        Event(event_name(name, EventAction.RESET), name, EventAction.RESET,
              _sorted(_logic_down_guard(dfs, name))),
    ]


def _plain_register_events(dfs, name):
    return [
        Event(event_name(name, EventAction.MARK), name, EventAction.MARK,
              _sorted(_register_up_guard(dfs, name))),
        Event(event_name(name, EventAction.UNMARK), name, EventAction.UNMARK,
              _sorted(_register_down_guard(dfs, name))),
    ]


def _control_events(dfs, name):
    controls = sorted(dfs.controls_of(name))
    base_up = _register_up_guard(dfs, name)
    base_down = _register_down_guard(dfs, name)
    true_guard = base_up + [Literal("Mt", c, True) for c in controls]
    false_guard = base_up + [Literal("Mf", c, True) for c in controls]
    return [
        Event(event_name(name, EventAction.MARK_TRUE), name, EventAction.MARK_TRUE,
              _sorted(true_guard)),
        Event(event_name(name, EventAction.MARK_FALSE), name, EventAction.MARK_FALSE,
              _sorted(false_guard)),
        Event(event_name(name, EventAction.UNMARK_TRUE), name, EventAction.UNMARK_TRUE,
              _sorted(base_down)),
        Event(event_name(name, EventAction.UNMARK_FALSE), name, EventAction.UNMARK_FALSE,
              _sorted(base_down)),
    ]


def _push_events(dfs, name):
    controls = sorted(dfs.controls_of(name))
    base_up = _register_up_guard(dfs, name)
    base_down = _register_down_guard(dfs, name)
    events = [
        Event(event_name(name, EventAction.MARK_TRUE), name, EventAction.MARK_TRUE,
              _sorted(base_up + [Literal("Mt", c, True) for c in controls])),
        Event(event_name(name, EventAction.UNMARK_TRUE), name, EventAction.UNMARK_TRUE,
              _sorted(base_down)),
    ]
    if controls:
        # A false-controlled push accepts the incoming token in order to
        # destroy it.  Because the token never propagates downstream, the
        # push does NOT wait for its R-postset to be empty (unlike the static
        # behaviour): in the circuit the bypassed datapath register is simply
        # not written.  Requiring an empty R-postset here would deadlock the
        # reconfigurable stage, where the bypassing pop of the same stage may
        # already hold its "empty" output token.
        false_up = [Literal("C", k, True) for k in sorted(dfs.logic_preset(name))]
        for q in sorted(dfs.r_preset(name)):
            false_up.append(Literal("M", q, True))
            if dfs.kind(q) is NodeType.PUSH:
                false_up.append(Literal("Mt", q, True))
        false_up += [Literal("Mf", c, True) for c in controls]
        # The destroyed token leaves as soon as the handshake with the
        # R-preset has completed, again without waiting for the R-postset.
        false_down = [Literal("C", k, False) for k in sorted(dfs.logic_preset(name))]
        false_down += [Literal("M", q, False) for q in sorted(dfs.r_preset(name))]
        events.append(
            Event(event_name(name, EventAction.MARK_FALSE), name, EventAction.MARK_FALSE,
                  _sorted(false_up))
        )
        events.append(
            Event(event_name(name, EventAction.UNMARK_FALSE), name,
                  EventAction.UNMARK_FALSE, _sorted(false_down))
        )
    return events


def _pop_events(dfs, name):
    controls = sorted(dfs.controls_of(name))
    base_up = _register_up_guard(dfs, name)
    base_down = _register_down_guard(dfs, name)
    events = [
        Event(event_name(name, EventAction.MARK_TRUE), name, EventAction.MARK_TRUE,
              _sorted(base_up + [Literal("Mt", c, True) for c in controls])),
        Event(event_name(name, EventAction.UNMARK_TRUE), name, EventAction.UNMARK_TRUE,
              _sorted(base_down)),
    ]
    if controls:
        # A false-controlled pop produces an "empty" token: it only needs its
        # controls to show False and the R-postset to be free.
        false_up = [Literal("Mf", c, True) for c in controls]
        false_up += [Literal("M", q, False) for q in sorted(dfs.r_postset(name))]
        # The empty token leaves once the R-postset has accepted it and the
        # control token has been released (one empty token per control token).
        false_down = [Literal("M", q, True) for q in sorted(dfs.r_postset(name))]
        false_down += [Literal("M", c, False) for c in controls]
        events.append(
            Event(event_name(name, EventAction.MARK_FALSE), name, EventAction.MARK_FALSE,
                  _sorted(false_up))
        )
        events.append(
            Event(event_name(name, EventAction.UNMARK_FALSE), name,
                  EventAction.UNMARK_FALSE, _sorted(false_down))
        )
    return events


def events_for_node(dfs, name):
    """Return the list of events of a single node."""
    kind = dfs.kind(name)
    if kind is NodeType.LOGIC:
        return _logic_events(dfs, name)
    if kind is NodeType.REGISTER:
        return _plain_register_events(dfs, name)
    if kind is NodeType.CONTROL:
        return _control_events(dfs, name)
    if kind is NodeType.PUSH:
        return _push_events(dfs, name)
    return _pop_events(dfs, name)


def model_events(dfs):
    """Return all events of the model as a ``{event name: Event}`` mapping."""
    events = {}
    for name in sorted(dfs.nodes):
        for event in events_for_node(dfs, name):
            events[event.name] = event
    return events
