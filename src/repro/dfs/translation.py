"""Translation of DFS models into Petri nets with read arcs (Fig. 3 / Fig. 4).

Every Boolean state variable of a node becomes a pair of complementary
places (``x_0`` / ``x_1``); every event of :mod:`repro.dfs.semantics` becomes
a transition that moves the token between the two places of the variables it
changes, with the guard literals attached as read arcs.  Because the events
carry the paper-style names (``Mt_ctrl+``, ``C_f-`` ...), the transition
names of the generated net match the paper's Fig. 4.
"""

from repro.dfs.nodes import NodeType
from repro.dfs.semantics import EventAction, model_events, place_name
from repro.petri.net import PetriNet

__all__ = [
    "marking_to_dfs_state",
    "place_name",  # canonical definition lives in repro.dfs.semantics
    "to_compiled_net",
    "to_petri_net",
    "transition_name",
]


def transition_name(event):
    """Name of the transition implementing *event* (the event name itself)."""
    return event.name


def _variables_of_node(node):
    """The state-variable kinds used to encode a node of the given type."""
    if node.node_type is NodeType.LOGIC:
        return ("C",)
    if node.node_type is NodeType.REGISTER:
        return ("M",)
    return ("M", "Mt", "Mf")


def _initial_bits(node):
    """Initial value of each state variable of *node*."""
    if node.node_type is NodeType.LOGIC:
        return {"C": 0}
    marked = 1 if node.marked else 0
    if node.node_type is NodeType.REGISTER:
        return {"M": marked}
    value = node.initial_value if node.marked else None
    return {
        "M": marked,
        "Mt": 1 if (marked and value is True) else 0,
        "Mf": 1 if (marked and value is False) else 0,
    }


#: Which variables an action toggles, and in which direction (0->1 or 1->0).
_ACTION_EFFECTS = {
    EventAction.EVALUATE: {"C": 1},
    EventAction.RESET: {"C": 0},
    EventAction.MARK: {"M": 1},
    EventAction.UNMARK: {"M": 0},
    EventAction.MARK_TRUE: {"M": 1, "Mt": 1},
    EventAction.MARK_FALSE: {"M": 1, "Mf": 1},
    EventAction.UNMARK_TRUE: {"M": 0, "Mt": 0},
    EventAction.UNMARK_FALSE: {"M": 0, "Mf": 0},
}


def to_petri_net(dfs, name=None):
    """Translate a dataflow structure into a :class:`~repro.petri.net.PetriNet`.

    The resulting net is 1-safe by construction; its initial marking encodes
    the DFS initial marking (all logic nodes reset).
    """
    net = PetriNet(
        name or "{}_pn".format(dfs.name),
        # Provenance metadata only: complementary place pairs keep every
        # place at zero or one token.  The compiled bitmask engine does not
        # trust this flag -- it still verifies 1-safeness dynamically.
        annotation={"source": dfs.name, "one_safe": "by-construction"},
    )
    # Places: a complementary pair per state variable.
    for node_name in sorted(dfs.nodes):
        node = dfs.node(node_name)
        bits = _initial_bits(node)
        for kind in _variables_of_node(node):
            initial = bits[kind]
            net.add_place(place_name(kind, node_name, 0), tokens=1 - initial, capacity=1,
                          annotation={"node": node_name, "variable": kind, "value": 0})
            net.add_place(place_name(kind, node_name, 1), tokens=initial, capacity=1,
                          annotation={"node": node_name, "variable": kind, "value": 1})
    # Transitions: one per DFS event.
    for event_id, event in sorted(model_events(dfs).items()):
        effects = _ACTION_EFFECTS[event.action]
        transition = net.add_transition(
            transition_name(event),
            annotation={"node": event.node, "action": event.action.value},
        )
        for kind, new_bit in effects.items():
            old_bit = 1 - new_bit
            net.add_arc(place_name(kind, event.node, old_bit), transition.name)
            net.add_arc(transition.name, place_name(kind, event.node, new_bit))
        for literal in event.guard:
            bit = 1 if literal.value else 0
            net.add_read_arc(place_name(literal.kind, literal.node, bit), transition.name)
    net.validate()
    return net


def to_compiled_net(dfs, name=None):
    """Translate a DFS straight into a compiled bitmask net.

    Convenience for benchmarks and callers that only need the fast engine of
    :mod:`repro.petri.compiled`; equivalent to compiling the result of
    :func:`to_petri_net` (which is 1-safe by construction, so compilation
    cannot fail).
    """
    from repro.petri.compiled import CompiledNet

    return CompiledNet.compile(to_petri_net(dfs, name=name))


def marking_to_dfs_state(dfs, marking):
    """Summarise a Petri-net marking in DFS terms.

    Returns a dictionary ``{"evaluated": [...], "marked": {...}}`` where the
    ``marked`` mapping gives the token value of marked dynamic registers
    (``True``/``False``) and ``None`` for plain registers.  Useful when
    reporting verification counterexamples back at the DFS level.
    """
    evaluated = []
    for name in dfs.logic_nodes:
        if marking[place_name("C", name, 1)] > 0:
            evaluated.append(name)
    marked = {}
    for name in dfs.register_nodes:
        if marking[place_name("M", name, 1)] == 0:
            continue
        node = dfs.node(name)
        if not node.is_dynamic:
            marked[name] = None
        elif marking[place_name("Mt", name, 1)] > 0:
            marked[name] = True
        elif marking[place_name("Mf", name, 1)] > 0:
            marked[name] = False
        else:
            marked[name] = None
    return {"evaluated": sorted(evaluated), "marked": marked}
