"""Dataflow Structures (DFS) -- the paper's main formalism.

A DFS is a graph of *logic* nodes and *register* nodes.  The paper extends
the static SDFS model with three dynamic register types -- *control*, *push*
and *pop* -- which make pipelines dynamically reconfigurable:

* a **control** register carries a True or False token and "guards" the push
  and pop registers in its R-postset;
* a **push** register behaves as a plain register when true-controlled and
  consumes-and-destroys incoming tokens when false-controlled;
* a **pop** register behaves as a plain register when true-controlled and
  spontaneously produces an "empty" token when false-controlled.

The enabling rules (equations (1)-(5) of the paper) are implemented once, in
:mod:`repro.dfs.semantics`, and shared by the token-game simulator and the
Petri-net translation so the two views cannot drift apart.
"""

from repro.dfs.nodes import LogicNode, NodeType, RegisterNode
from repro.dfs.model import DataflowStructure
from repro.dfs.builder import DfsBuilder
from repro.dfs.semantics import Event, EventAction, Literal, events_for_node, model_events
from repro.dfs.state import DfsState
from repro.dfs.simulation import DfsSimulator
from repro.dfs.translation import place_name, to_petri_net, transition_name
from repro.dfs.serialization import dfs_from_document, dfs_from_json, dfs_to_document, dfs_to_json
from repro.dfs.validation import Issue, Severity, validate_structure

__all__ = [
    "DataflowStructure",
    "DfsBuilder",
    "DfsSimulator",
    "DfsState",
    "Event",
    "EventAction",
    "Issue",
    "Literal",
    "LogicNode",
    "NodeType",
    "RegisterNode",
    "Severity",
    "dfs_from_document",
    "dfs_from_json",
    "dfs_to_document",
    "dfs_to_json",
    "events_for_node",
    "model_events",
    "place_name",
    "to_petri_net",
    "transition_name",
    "validate_structure",
]
