"""The dynamic state of a DFS model during token-game simulation."""

from repro.exceptions import SimulationError
from repro.dfs.nodes import NodeType
from repro.dfs.semantics import EventAction


class DfsState:
    """Evaluation/marking state of every node of a dataflow structure.

    The state tracks, per logic node, its evaluation flag ``C`` and, per
    register node, its marking ``M`` together with the token value for
    dynamic registers (``True`` for a real token, ``False`` for an empty
    token, ``None`` when unmarked or for plain registers).
    """

    def __init__(self, dfs):
        self.dfs = dfs
        self.evaluated = {name: False for name in dfs.logic_nodes}
        self.marked = {}
        self.value = {}
        for name in dfs.register_nodes:
            node = dfs.node(name)
            self.marked[name] = node.marked
            if node.is_dynamic and node.marked:
                self.value[name] = node.initial_value if node.initial_value is not None else True
            else:
                self.value[name] = None

    # -- literal evaluation ----------------------------------------------------

    def literal_holds(self, literal):
        """Evaluate a single guard :class:`~repro.dfs.semantics.Literal`."""
        if literal.kind == "C":
            actual = self.evaluated[literal.node]
        elif literal.kind == "M":
            actual = self.marked[literal.node]
        elif literal.kind == "Mt":
            actual = self.marked[literal.node] and self.value[literal.node] is True
        else:  # "Mf"
            actual = self.marked[literal.node] and self.value[literal.node] is False
        return actual == literal.value

    def guard_holds(self, event):
        """Evaluate the whole guard of an event."""
        return all(self.literal_holds(literal) for literal in event.guard)

    def self_precondition_holds(self, event):
        """Check the implicit precondition on the event's own node."""
        action = event.action
        if action is EventAction.EVALUATE:
            return not self.evaluated[event.node]
        if action is EventAction.RESET:
            return self.evaluated[event.node]
        if action in (EventAction.MARK, EventAction.MARK_TRUE, EventAction.MARK_FALSE):
            return not self.marked[event.node]
        if action is EventAction.UNMARK:
            return self.marked[event.node]
        if action is EventAction.UNMARK_TRUE:
            return self.marked[event.node] and self.value[event.node] is True
        if action is EventAction.UNMARK_FALSE:
            return self.marked[event.node] and self.value[event.node] is False
        raise SimulationError("unknown event action: {!r}".format(action))

    def is_enabled(self, event):
        """An event is enabled when both its own-node precondition and guard hold."""
        return self.self_precondition_holds(event) and self.guard_holds(event)

    # -- state update ------------------------------------------------------------

    def apply(self, event):
        """Apply the effect of *event* to this state (no enabledness check)."""
        action = event.action
        node = event.node
        if action is EventAction.EVALUATE:
            self.evaluated[node] = True
        elif action is EventAction.RESET:
            self.evaluated[node] = False
        elif action is EventAction.MARK:
            self.marked[node] = True
        elif action is EventAction.UNMARK:
            self.marked[node] = False
        elif action is EventAction.MARK_TRUE:
            self.marked[node] = True
            self.value[node] = True
        elif action is EventAction.MARK_FALSE:
            self.marked[node] = True
            self.value[node] = False
        elif action in (EventAction.UNMARK_TRUE, EventAction.UNMARK_FALSE):
            self.marked[node] = False
            self.value[node] = None
        else:
            raise SimulationError("unknown event action: {!r}".format(action))

    # -- queries -------------------------------------------------------------------

    def is_marked(self, name):
        return self.marked[name]

    def is_evaluated(self, name):
        return self.evaluated[name]

    def token_value(self, name):
        """The True/False value held by a dynamic register (``None`` otherwise)."""
        return self.value[name]

    def marked_registers(self):
        """Sorted list of currently marked registers."""
        return sorted(name for name, flag in self.marked.items() if flag)

    def token_count(self):
        """Total number of tokens in the structure."""
        return sum(1 for flag in self.marked.values() if flag)

    def freeze(self):
        """Return a hashable snapshot of the state."""
        return (
            tuple(sorted(self.evaluated.items())),
            tuple(sorted(self.marked.items())),
            tuple(sorted((n, v) for n, v in self.value.items())),
        )

    def copy(self):
        """Return an independent copy of the state."""
        clone = DfsState.__new__(DfsState)
        clone.dfs = self.dfs
        clone.evaluated = dict(self.evaluated)
        clone.marked = dict(self.marked)
        clone.value = dict(self.value)
        return clone

    def describe(self):
        """Return a human-readable summary of the state."""
        parts = []
        for name in sorted(self.marked):
            if not self.marked[name]:
                continue
            value = self.value[name]
            kind = self.dfs.kind(name)
            if kind is NodeType.REGISTER or value is None:
                parts.append(name)
            else:
                parts.append("{}={}".format(name, "T" if value else "F"))
        evaluated = [name for name in sorted(self.evaluated) if self.evaluated[name]]
        return "marked: [{}]; evaluated: [{}]".format(", ".join(parts), ", ".join(evaluated))

    def __repr__(self):
        return "DfsState({})".format(self.describe())
