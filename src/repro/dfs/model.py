"""The :class:`DataflowStructure` model.

Formally (Section II of the paper) a DFS is a triple ``<V, E, M0>`` where
``V = L ∪ R`` is a set of logic and register nodes, ``E ⊆ V × V`` is the
interconnect and ``M0`` is the initial marking of registers.

Besides the plain preset/postset of a node, the semantics uses the
*R-preset* ``?x`` and *R-postset* ``x?``: the registers reachable from /
reaching ``x`` through a non-empty path whose intermediate nodes are all
logic nodes.  These are computed here and cached (the cache is invalidated
whenever the structure changes).
"""

from repro.exceptions import ModelError
from repro.dfs.nodes import LogicNode, Node, NodeType, RegisterNode
from repro.utils.naming import NameRegistry


class DataflowStructure:
    """A dataflow structure: nodes, interconnect and initial marking."""

    def __init__(self, name="dfs"):
        self.name = name
        self._names = NameRegistry()
        self._nodes = {}
        self._edges = set()
        self._preset = {}
        self._postset = {}
        self._r_preset_cache = {}
        self._r_postset_cache = {}

    # -- construction -------------------------------------------------------

    def _register_node(self, node):
        self._names.register(node.name)
        self._nodes[node.name] = node
        self._preset[node.name] = set()
        self._postset[node.name] = set()
        self._invalidate()
        return node

    def add_node(self, node):
        """Add an already-constructed :class:`Node` to the model."""
        if not isinstance(node, Node):
            raise ModelError("expected a DFS node, got {!r}".format(node))
        return self._register_node(node)

    def add_logic(self, name, delay=None, function=None, annotation=None):
        """Add a logic (combinational) node."""
        return self._register_node(
            LogicNode(name, delay=delay, function=function, annotation=annotation)
        )

    def add_register(self, name, marked=False, delay=None, annotation=None):
        """Add a plain (static) register node."""
        return self._register_node(
            RegisterNode(name, NodeType.REGISTER, marked=marked, delay=delay,
                         annotation=annotation)
        )

    def add_control(self, name, marked=False, value=True, delay=None, annotation=None):
        """Add a control register node (carries True/False tokens)."""
        return self._register_node(
            RegisterNode(name, NodeType.CONTROL, marked=marked, initial_value=value,
                         delay=delay, annotation=annotation)
        )

    def add_push(self, name, marked=False, value=True, delay=None, annotation=None):
        """Add a push register node."""
        return self._register_node(
            RegisterNode(name, NodeType.PUSH, marked=marked, initial_value=value,
                         delay=delay, annotation=annotation)
        )

    def add_pop(self, name, marked=False, value=True, delay=None, annotation=None):
        """Add a pop register node."""
        return self._register_node(
            RegisterNode(name, NodeType.POP, marked=marked, initial_value=value,
                         delay=delay, annotation=annotation)
        )

    def connect(self, source, target):
        """Add a directed edge from *source* to *target* (by node name)."""
        source = source.name if isinstance(source, Node) else source
        target = target.name if isinstance(target, Node) else target
        for name in (source, target):
            if name not in self._nodes:
                raise ModelError("unknown node: {!r}".format(name))
        if source == target:
            raise ModelError("self-loop on node {!r} is not allowed".format(source))
        edge = (source, target)
        if edge in self._edges:
            return edge
        self._edges.add(edge)
        self._postset[source].add(target)
        self._preset[target].add(source)
        self._invalidate()
        return edge

    def connect_chain(self, *names):
        """Connect a sequence of nodes into a chain: ``a -> b -> c -> ...``."""
        for source, target in zip(names, names[1:]):
            self.connect(source, target)

    def remove_edge(self, source, target):
        """Remove the edge ``source -> target`` if present."""
        edge = (source, target)
        if edge not in self._edges:
            raise ModelError("no such edge: {!r} -> {!r}".format(source, target))
        self._edges.discard(edge)
        self._postset[source].discard(target)
        self._preset[target].discard(source)
        self._invalidate()

    def _invalidate(self):
        self._r_preset_cache = {}
        self._r_postset_cache = {}

    # -- element access -----------------------------------------------------

    @property
    def nodes(self):
        """Mapping of node name to node object."""
        return dict(self._nodes)

    @property
    def edges(self):
        """The set of edges as ``(source, target)`` name pairs."""
        return set(self._edges)

    def node(self, name):
        try:
            return self._nodes[name]
        except KeyError:
            raise ModelError("unknown node: {!r}".format(name))

    def has_node(self, name):
        return name in self._nodes

    def node_names(self, node_type=None):
        """Names of all nodes, optionally filtered by :class:`NodeType`."""
        if node_type is None:
            return sorted(self._nodes)
        return sorted(
            name for name, node in self._nodes.items() if node.node_type is node_type
        )

    @property
    def logic_nodes(self):
        return self.node_names(NodeType.LOGIC)

    @property
    def register_nodes(self):
        """Names of all register-like nodes (plain, control, push, pop)."""
        return sorted(
            name for name, node in self._nodes.items() if node.is_register
        )

    @property
    def plain_registers(self):
        return self.node_names(NodeType.REGISTER)

    @property
    def control_registers(self):
        return self.node_names(NodeType.CONTROL)

    @property
    def push_registers(self):
        return self.node_names(NodeType.PUSH)

    @property
    def pop_registers(self):
        return self.node_names(NodeType.POP)

    def is_logic(self, name):
        return self.node(name).node_type is NodeType.LOGIC

    def is_register(self, name):
        return self.node(name).is_register

    def kind(self, name):
        return self.node(name).node_type

    # -- neighbourhoods -------------------------------------------------------

    def preset(self, name):
        """Direct predecessors ``•x``."""
        if name not in self._nodes:
            raise ModelError("unknown node: {!r}".format(name))
        return set(self._preset[name])

    def postset(self, name):
        """Direct successors ``x•``."""
        if name not in self._nodes:
            raise ModelError("unknown node: {!r}".format(name))
        return set(self._postset[name])

    def logic_preset(self, name):
        """Logic nodes in the direct preset."""
        return {n for n in self.preset(name) if self.is_logic(n)}

    def register_preset(self, name):
        """Register nodes in the direct preset."""
        return {n for n in self.preset(name) if self.is_register(n)}

    def r_preset(self, name):
        """R-preset ``?x``: registers reaching *x* through logic-only paths."""
        if name in self._r_preset_cache:
            return set(self._r_preset_cache[name])
        result = set()
        visited = set()
        stack = list(self._preset[name])
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            node = self._nodes[current]
            if node.is_register:
                result.add(current)
            else:
                stack.extend(self._preset[current])
        self._r_preset_cache[name] = set(result)
        return result

    def r_postset(self, name):
        """R-postset ``x?``: registers reachable from *x* through logic-only paths."""
        if name in self._r_postset_cache:
            return set(self._r_postset_cache[name])
        result = set()
        visited = set()
        stack = list(self._postset[name])
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            node = self._nodes[current]
            if node.is_register:
                result.add(current)
            else:
                stack.extend(self._postset[current])
        self._r_postset_cache[name] = set(result)
        return result

    def controls_of(self, name):
        """Control registers in the R-preset of *name* (the node's "guards")."""
        return {n for n in self.r_preset(name) if self.kind(n) is NodeType.CONTROL}

    def controlled_by(self, control_name):
        """Push/pop/control nodes that have *control_name* in their R-preset."""
        controlled = set()
        for name, node in self._nodes.items():
            if node.is_dynamic and control_name in self.r_preset(name):
                controlled.add(name)
        return controlled

    # -- markings -------------------------------------------------------------

    def initial_marking(self):
        """Return ``{register name: bool}`` for all register nodes."""
        return {
            name: node.marked
            for name, node in self._nodes.items()
            if node.is_register
        }

    def set_initial_marking(self, marking, values=None):
        """Set which registers are initially marked (and dynamic values).

        Parameters
        ----------
        marking:
            Either an iterable of register names to mark (all others are
            unmarked) or a ``{name: bool}`` mapping.
        values:
            Optional ``{name: bool}`` mapping giving the True/False value of
            initially marked dynamic registers.
        """
        if isinstance(marking, dict):
            flags = {name: bool(flag) for name, flag in marking.items()}
        else:
            wanted = set(marking)
            registers = set(self.register_nodes)
            unknown = wanted - registers
            if unknown:
                raise ModelError(
                    "cannot mark non-register node(s): {}".format(", ".join(sorted(unknown))))
            flags = {name: (name in wanted) for name in registers}
        values = values or {}
        for name, flag in flags.items():
            node = self.node(name)
            if not node.is_register:
                raise ModelError("cannot mark logic node {!r}".format(name))
            node.marked = flag
            if node.is_dynamic:
                if flag:
                    node.initial_value = bool(values.get(name, node.initial_value
                                                         if node.initial_value is not None
                                                         else True))
                else:
                    node.initial_value = None

    # -- misc ------------------------------------------------------------------

    def input_registers(self):
        """Registers with an empty preset (fed by the environment)."""
        return sorted(
            name for name in self.register_nodes if not self._preset[name]
        )

    def output_registers(self):
        """Registers with an empty postset (read by the environment)."""
        return sorted(
            name for name in self.register_nodes if not self._postset[name]
        )

    def copy(self, name=None):
        """Return a deep copy of the structure (nodes are re-created)."""
        clone = DataflowStructure(name or self.name)
        for node_name in sorted(self._nodes):
            node = self._nodes[node_name]
            if isinstance(node, LogicNode):
                clone.add_logic(node.name, delay=node.delay, function=node.function,
                                annotation=dict(node.annotation))
            else:
                clone.add_node(RegisterNode(
                    node.name, node.node_type, marked=node.marked,
                    initial_value=node.initial_value, delay=node.delay,
                    annotation=dict(node.annotation),
                ))
        for source, target in sorted(self._edges):
            clone.connect(source, target)
        return clone

    def stats(self):
        """Return a summary dictionary (node counts by type, edge count)."""
        counts = {node_type.value: 0 for node_type in NodeType}
        for node in self._nodes.values():
            counts[node.node_type.value] += 1
        counts["edges"] = len(self._edges)
        counts["nodes"] = len(self._nodes)
        return counts

    def __repr__(self):
        return "DataflowStructure({!r}, nodes={}, edges={})".format(
            self.name, len(self._nodes), len(self._edges)
        )
