"""Token-game simulation of DFS models.

This is the programmatic counterpart of the interactive simulation offered by
the Workcraft plugin: the user (or a test) can inspect the enabled events,
fire them one at a time, run random walks, or drive control decisions through
a *choice policy* that resolves the non-deterministic True/False outcome of
uncontrolled control registers (e.g. modelling the data-dependent result of
the ``cond`` predicate of the motivating example).
"""

import random

from repro.exceptions import SimulationError
from repro.dfs.semantics import EventAction, marking_event_names, model_events
from repro.dfs.state import DfsState


class DfsSimulator:
    """A stateful token-game simulator for a dataflow structure."""

    def __init__(self, dfs, choice_policy=None):
        """Create a simulator.

        Parameters
        ----------
        dfs:
            The :class:`~repro.dfs.model.DataflowStructure` to simulate.
        choice_policy:
            Optional callable ``policy(control_name, step_index) -> bool``
            used to resolve the True/False choice of control registers that
            have no upstream control register.  When provided, the event of
            the non-chosen value is filtered out of the enabled set.
        """
        self.dfs = dfs
        self.events = model_events(dfs)
        self.choice_policy = choice_policy
        self.state = DfsState(dfs)
        self.trace = []
        self._step_index = 0

    # -- state -------------------------------------------------------------------

    def reset(self):
        """Return to the initial state and clear the trace."""
        self.state = DfsState(self.dfs)
        self.trace = []
        self._step_index = 0

    # -- event selection -----------------------------------------------------------

    def enabled_events(self):
        """Return the sorted list of enabled event names."""
        names = [
            name for name, event in self.events.items() if self.state.is_enabled(event)
        ]
        if self.choice_policy is not None:
            names = [name for name in names if not self._vetoed_by_policy(name)]
        return sorted(names)

    def _vetoed_by_policy(self, event_name):
        event = self.events[event_name]
        if event.action not in (EventAction.MARK_TRUE, EventAction.MARK_FALSE):
            return False
        node = self.dfs.node(event.node)
        if not node.is_dynamic or self.dfs.controls_of(event.node):
            return False
        wanted = bool(self.choice_policy(event.node, self._step_index))
        return (event.action is EventAction.MARK_TRUE) != wanted

    def is_enabled(self, event_name):
        event = self._event(event_name)
        return self.state.is_enabled(event)

    def _event(self, event_name):
        try:
            return self.events[event_name]
        except KeyError:
            raise SimulationError("unknown event: {!r}".format(event_name))

    # -- firing ----------------------------------------------------------------------

    def fire(self, event_name):
        """Fire a single event by name and return the new state."""
        event = self._event(event_name)
        if not self.state.is_enabled(event):
            raise SimulationError("event {!r} is not enabled".format(event_name))
        self.state.apply(event)
        self.trace.append(event_name)
        self._step_index += 1
        return self.state

    def fire_sequence(self, event_names):
        """Fire a list of events in order, failing fast on a disabled one."""
        for event_name in event_names:
            self.fire(event_name)
        return self.state

    def is_deadlocked(self):
        """Return ``True`` when no event is enabled."""
        return not self.enabled_events()

    def step_random(self, rng):
        """Fire one random enabled event; return its name or ``None`` on deadlock."""
        enabled = self.enabled_events()
        if not enabled:
            return None
        choice = rng.choice(enabled)
        self.fire(choice)
        return choice

    def run_random(self, steps, seed=None, stop_on_deadlock=True):
        """Run up to *steps* random firings; return the list of fired events."""
        rng = random.Random(seed)
        fired = []
        for _ in range(steps):
            name = self.step_random(rng)
            if name is None:
                if stop_on_deadlock:
                    break
                raise SimulationError("deadlock reached during random simulation")
            fired.append(name)
        return fired

    # -- derived metrics -----------------------------------------------------------------

    def count_in_trace(self, event_name):
        """Number of occurrences of *event_name* in the trace so far."""
        return self.trace.count(event_name)

    def tokens_produced(self, register_name):
        """How many tokens have passed through *register_name* so far.

        Counted as the number of marking events of the register in the trace
        (both True and False marking for dynamic registers).
        """
        marking_events = marking_event_names(register_name)
        return sum(1 for name in self.trace if name in marking_events)
