"""Result objects returned by the verification engine."""


class VerificationResult:
    """Outcome of a single property check on a DFS model.

    Attributes
    ----------
    property_name:
        Human-readable name of the property ("deadlock freedom", ...).
    holds:
        ``True`` when the property holds, ``False`` when violated, ``None``
        when the check was inconclusive (truncated state space).
    witnesses:
        List of counterexample dictionaries.  Each has a ``marking``
        (Petri-net marking), usually a ``trace`` (firing sequence from the
        initial state) and a ``dfs_state`` (the marking summarised in DFS
        terms: which registers are marked and with what token values).
    details:
        Free-form explanation.
    method:
        Name of the checker that produced the verdict (``"exhaustive"``,
        ``"inductive"``, ``"walk"``, ``"portfolio"``), or ``None`` for
        results that never went through a checker (e.g. trivially-true
        properties).
    """

    def __init__(self, property_name, holds, witnesses=None, details="",
                 method=None):
        self.property_name = property_name
        self.holds = holds
        self.witnesses = witnesses or []
        self.details = details
        self.method = method

    def __bool__(self):
        return bool(self.holds)

    @property
    def violated(self):
        return self.holds is False

    @property
    def inconclusive(self):
        return self.holds is None

    def first_trace(self):
        """Return the trace of the first witness, or ``None``."""
        for witness in self.witnesses:
            if "trace" in witness:
                return witness["trace"]
        return None

    def __repr__(self):
        status = {True: "holds", False: "VIOLATED", None: "inconclusive"}[self.holds]
        return "VerificationResult({!r}, {}, witnesses={})".format(
            self.property_name, status, len(self.witnesses)
        )


class VerificationSummary:
    """Aggregated outcome of a batch of property checks."""

    def __init__(self, model_name, results=None, state_count=0, truncated=False,
                 exploration=None):
        self.model_name = model_name
        self.results = list(results or [])
        self.state_count = state_count
        self.truncated = truncated
        #: Structured exploration stats of the state-space build (engine,
        #: levels, per-phase seconds, spill read/write bytes) when a
        #: columnar engine produced the graph; ``None`` otherwise.
        self.exploration = exploration

    def add(self, result):
        self.results.append(result)
        return result

    @property
    def passed(self):
        """True when every checked property holds (no violations, no unknowns)."""
        return all(result.holds is True for result in self.results)

    @property
    def violations(self):
        return [result for result in self.results if result.violated]

    @property
    def inconclusive(self):
        return [result for result in self.results if result.inconclusive]

    def result(self, property_name):
        """Find a result by property name (``None`` when absent)."""
        for result in self.results:
            if result.property_name == property_name:
                return result
        return None

    def report(self):
        """Return a human-readable multi-line report."""
        lines = ["Verification of {!r} ({} reachable states{})".format(
            self.model_name, self.state_count,
            ", truncated" if self.truncated else "")]
        for result in self.results:
            status = {True: "OK  ", False: "FAIL", None: "?   "}[result.holds]
            method = " [{}]".format(result.method) if result.method else ""
            lines.append("  [{}] {}{} -- {}".format(
                status, result.property_name, method, result.details))
            for witness in result.witnesses[:2]:
                dfs_state = witness.get("dfs_state")
                if dfs_state is not None:
                    lines.append("         counterexample: {}".format(dfs_state))
        return "\n".join(lines)

    def __repr__(self):
        return "VerificationSummary({!r}, passed={}, results={})".format(
            self.model_name, self.passed, len(self.results)
        )
