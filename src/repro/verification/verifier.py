"""The high-level verification driver for DFS models."""

from repro.dfs.translation import marking_to_dfs_state, to_petri_net
from repro.exceptions import VerificationError
from repro.petri.properties import (
    check_boundedness,
    check_deadlock,
    check_mutual_exclusion,
    check_persistence,
)
from repro.petri.reachability import build_reachability_graph
from repro.reach.evaluator import find_witnesses
from repro.verification.properties import control_mismatch_expression
from repro.verification.results import VerificationResult, VerificationSummary


class Verifier:
    """Verifies a DFS model through its Petri-net translation.

    The translation and the reachability graph are built lazily and cached,
    so several properties can be checked against the same state space.

    DFS translations are 1-safe by construction, so by default the state
    space is built by the compiled bitmask engine of
    :mod:`repro.petri.compiled` (*engine* ``"auto"``), which transparently
    falls back to the explicit explorer for nets it cannot represent.  Pass
    ``engine="explicit"`` to force the hash-dict explorer, or
    ``engine="compiled"`` to fail loudly instead of falling back.

    The standard checks are registered by name in :data:`PROPERTY_CHECKS`;
    :meth:`verify_properties` runs any named subset, which is how campaign
    jobs (:mod:`repro.campaign`) drive a verifier from a declarative,
    picklable description instead of a live object.
    """

    #: Ordered registry of the standard checks: name -> bound-method name.
    PROPERTY_CHECKS = {
        "safeness": "verify_safeness",
        "deadlock": "verify_deadlock_freedom",
        "mismatch": "verify_control_mismatch",
        "exclusion": "verify_value_mutual_exclusion",
        "persistence": "verify_persistence",
    }

    def __init__(self, dfs, max_states=200000, engine="auto", net=None):
        self.dfs = dfs
        self.max_states = max_states
        self.engine = engine
        self._net = net
        self._graph = None

    # -- lazy construction ------------------------------------------------------

    @property
    def net(self):
        """The Petri-net translation of the model."""
        if self._net is None:
            self._net = to_petri_net(self.dfs)
        return self._net

    @property
    def graph(self):
        """The reachability graph of the translation."""
        if self._graph is None:
            self._graph = build_reachability_graph(
                self.net, max_states=self.max_states, engine=self.engine
            )
        return self._graph

    @property
    def state_count(self):
        return len(self.graph)

    def _decorate(self, witnesses):
        """Attach a DFS-level state summary to Petri-net witnesses."""
        decorated = []
        for witness in witnesses:
            entry = dict(witness)
            entry["dfs_state"] = marking_to_dfs_state(self.dfs, witness["marking"])
            decorated.append(entry)
        return decorated

    # -- individual properties ----------------------------------------------------

    def verify_deadlock_freedom(self, max_witnesses=5):
        """No reachable state of the model is completely stuck."""
        report = check_deadlock(self.graph, max_witnesses=max_witnesses)
        return VerificationResult(
            "deadlock freedom", report.holds,
            witnesses=self._decorate(report.witnesses), details=report.details,
        )

    def verify_control_mismatch(self, max_witnesses=5):
        """No node ever observes both True and False control tokens."""
        expression = control_mismatch_expression(self.dfs)
        if expression is None:
            return VerificationResult(
                "control-token mismatch", True,
                details="no node is guarded by two or more control registers",
            )
        witnesses = find_witnesses(expression, self.graph, max_witnesses=max_witnesses)
        holds = not witnesses
        if holds and self.graph.truncated:
            holds = None
        details = ("no reachable mismatch" if holds
                   else "{} reachable mismatch state(s)".format(len(witnesses))
                   if holds is False else "inconclusive (truncated state space)")
        return VerificationResult(
            "control-token mismatch", holds,
            witnesses=self._decorate(witnesses), details=details,
        )

    def verify_persistence(self, max_witnesses=5):
        """No event is disabled by another one (hazard-freedom), choices excepted."""
        report = check_persistence(self.graph, max_witnesses=max_witnesses)
        return VerificationResult(
            "persistence", report.holds,
            witnesses=self._decorate(report.witnesses), details=report.details,
        )

    def verify_safeness(self, max_witnesses=5):
        """The translated net is 1-safe (a sanity check on the translation)."""
        report = check_boundedness(self.graph, bound=1, max_witnesses=max_witnesses)
        return VerificationResult(
            "1-safeness", report.holds,
            witnesses=self._decorate(report.witnesses), details=report.details,
        )

    def verify_value_mutual_exclusion(self, max_witnesses=5):
        """A dynamic register never holds a True and a False token at once."""
        violations = []
        for name in sorted(self.dfs.nodes):
            node = self.dfs.node(name)
            if not node.is_dynamic:
                continue
            report = check_mutual_exclusion(
                self.graph,
                "Mt_{}_1".format(name),
                "Mf_{}_1".format(name),
                max_witnesses=max_witnesses,
            )
            if report.holds is False:
                violations.extend(report.witnesses)
        holds = not violations
        if holds and self.graph.truncated:
            holds = None
        details = ("token values are mutually exclusive" if holds
                   else "{} violation(s)".format(len(violations)) if holds is False
                   else "inconclusive (truncated state space)")
        return VerificationResult(
            "token-value exclusion", holds,
            witnesses=self._decorate(violations), details=details,
        )

    def verify_custom(self, expression, property_name="custom property", max_witnesses=5):
        """Check a custom Reach expression describing *bad* states."""
        witnesses = find_witnesses(expression, self.graph, max_witnesses=max_witnesses)
        holds = not witnesses
        if holds and self.graph.truncated:
            holds = None
        details = ("no reachable bad state" if holds
                   else "{} reachable bad state(s)".format(len(witnesses))
                   if holds is False else "inconclusive (truncated state space)")
        return VerificationResult(
            property_name, holds, witnesses=self._decorate(witnesses), details=details,
        )

    # -- batched verification ---------------------------------------------------------

    def verify_properties(self, properties, max_witnesses=5):
        """Run the named standard checks and return a summary.

        *properties* is an iterable of :data:`PROPERTY_CHECKS` keys; the
        checks run in the given order against the same (cached) state space.
        """
        checks = []
        for name in properties:
            try:
                checks.append(getattr(self, self.PROPERTY_CHECKS[name]))
            except KeyError:
                raise VerificationError(
                    "unknown property {!r} (known: {})".format(
                        name, ", ".join(sorted(self.PROPERTY_CHECKS))))
        summary = VerificationSummary(
            self.dfs.name, state_count=self.state_count, truncated=self.graph.truncated,
        )
        for check in checks:
            summary.add(check(max_witnesses=max_witnesses))
        return summary

    def verify_all(self, include_persistence=True):
        """Run the standard battery of checks and return a summary."""
        properties = [name for name in self.PROPERTY_CHECKS
                      if include_persistence or name != "persistence"]
        return self.verify_properties(properties)
