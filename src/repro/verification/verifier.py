"""The high-level verification driver for DFS models."""

from repro.dfs.translation import marking_to_dfs_state, to_petri_net
from repro.exceptions import VerificationError
from repro.verification.checkers import (
    CHECKERS,
    CheckerContext,
    DeadlockQuery,
    PersistenceQuery,
    ReachQuery,
    SafenessQuery,
    create_checker,
)
from repro.verification.checkers import DEFAULT_ORDER as DEFAULT_PORTFOLIO_ORDER
from repro.verification.properties import (
    control_mismatch_expression,
    value_exclusion_expression,
)
from repro.verification.results import VerificationResult, VerificationSummary

#: Registry of named custom Reach properties (see
#: :func:`register_custom_property`).  Name -> ``(expression, description)``.
CUSTOM_PROPERTIES = {}


def register_custom_property(name, expression, description=None):
    """Register a custom Reach *expression* (text or AST) under *name*.

    Registered names become first-class property keys: campaign jobs, the
    CLI ``--properties`` list and :meth:`Verifier.verify_properties` accept
    them alongside the built-in checks, dispatching to
    :meth:`Verifier.verify_custom`.  The expression describes the *bad*
    states, as everywhere in the Reach language.  Returns *name* so the call
    can be used as an expression.
    """
    if name in Verifier.PROPERTY_CHECKS:
        raise VerificationError(
            "cannot register custom property {!r}: the name is taken by a "
            "built-in check".format(name))
    CUSTOM_PROPERTIES[name] = (expression, description or name)
    return name


def unregister_custom_property(name):
    """Remove a registered custom property (missing names are ignored)."""
    CUSTOM_PROPERTIES.pop(name, None)


class Verifier:
    """Verifies a DFS model through its Petri-net translation.

    The translation and the verification artefacts (reachability graph,
    compiled bitmask net, place invariants) are built lazily and shared, so
    several properties can be checked against the same state space.

    Verdicts are produced by a pluggable **checker**
    (:mod:`repro.verification.checkers`):

    * ``"exhaustive"`` (default) -- explore the state space up to
      ``max_states`` and scan it; conclusive both ways within the bound.
    * ``"inductive"`` -- place-invariant, siphon/trap and
      backward-induction proofs over the compiled transition relation;
      concludes "holds" (and finds some violations) with no state bound at
      all, and no solver.
    * ``"walk"`` -- LFSR-seeded guided random walks; a pure falsifier.
    * ``"bmc"`` / ``"kinduction"`` / ``"ic3"`` -- SMT-backed engines of
      :mod:`repro.smt` (bounded model checking, k-induction, IC3/PDR).
      BMC falsifies at any depth; k-induction and IC3 prove **unbounded**
      ("holds" with no state bound).  They need the optional z3 binary:
      without one every query is inconclusive, with a message naming it.
    * ``"portfolio"`` -- races the above, first conclusive verdict wins.

    *engine* selects the state-space engine used by the exhaustive path:
    ``"auto"`` compiles 1-safe nets to a bitmask engine -- the array-native
    batch explorer of :mod:`repro.petri.batch` when the optional NumPy
    extra is importable, the pure-int engine of
    :mod:`repro.petri.compiled` otherwise -- and falls back to the
    explicit explorer; ``"batch"`` / ``"compiled"`` fail loudly instead of
    falling back, ``"explicit"`` forces the hash-dict explorer.  *workers* > 1 runs the compiled
    exploration sharded across worker processes
    (:mod:`repro.parallel.sharded`) -- the graph, and therefore every
    verdict, is bit-identical to the sequential one.  *semiflow_cache*
    memoises the place-invariant derivation on disk
    (:class:`~repro.petri.invariants.SemiflowCache`), which makes inductive
    sweeps over structurally stable families near-free on warm runs.

    *checker_options* maps checker names to keyword options for their
    construction (e.g. ``{"walk": {"walks": 32, "steps": 1024}}``);
    *checker_overrides* maps property keys to checker names, overriding the
    default checker per property.  Every ``verify_*`` method also accepts an
    explicit ``checker=`` argument, which wins over both.

    The standard checks are registered by name in :data:`PROPERTY_CHECKS`;
    :meth:`verify_properties` runs any named subset -- including custom
    Reach properties registered with :func:`register_custom_property` --
    which is how campaign jobs (:mod:`repro.campaign`) drive a verifier
    from a declarative, picklable description instead of a live object.
    """

    #: Ordered registry of the standard checks: name -> bound-method name.
    PROPERTY_CHECKS = {
        "safeness": "verify_safeness",
        "deadlock": "verify_deadlock_freedom",
        "mismatch": "verify_control_mismatch",
        "exclusion": "verify_value_mutual_exclusion",
        "persistence": "verify_persistence",
    }

    def __init__(self, dfs, max_states=200000, engine="auto", net=None,
                 checker="exhaustive", checker_options=None,
                 checker_overrides=None, workers=0, semiflow_cache=None,
                 spill_dir=None, spill_bytes=None, resume=None):
        self.dfs = dfs
        self.max_states = max_states
        self.engine = engine
        #: Worker processes for state-space exploration (0/1 = sequential).
        #: The sharded graph is bit-identical to the sequential one, so this
        #: changes wall-clock, never verdicts.
        self.workers = int(workers or 0)
        #: Out-of-core knobs (see :mod:`repro.petri.storage`): past
        #: *spill_bytes* of RAM the graph's arrays move onto memmap files
        #: under *spill_dir*.  Like *workers*, never affects verdicts.
        self.spill_dir = spill_dir
        self.spill_bytes = spill_bytes
        #: Optional exploration checkpoint directory (crash-safe runs; a
        #: leftover checkpoint is resumed bit-identically).
        self.resume = resume
        #: Optional on-disk memo of the place-invariant derivation (a
        #: :class:`~repro.petri.invariants.SemiflowCache` or directory).
        self.semiflow_cache = semiflow_cache
        if checker not in CHECKERS:
            raise VerificationError(
                "unknown checker {!r} (known: {})".format(
                    checker, ", ".join(sorted(CHECKERS))))
        self.checker = checker
        self.checker_options = dict(checker_options or {})
        unknown_options = [name for name in self.checker_options
                           if name not in CHECKERS]
        if unknown_options:
            raise VerificationError(
                "checker_options given for unknown checker(s): {} "
                "(known: {})".format(", ".join(sorted(unknown_options)),
                                     ", ".join(sorted(CHECKERS))))
        self.checker_overrides = dict(checker_overrides or {})
        unknown_overrides = [name for name in self.checker_overrides.values()
                             if name not in CHECKERS]
        if unknown_overrides:
            raise VerificationError(
                "checker_overrides name unknown checker(s): {} "
                "(known: {})".format(", ".join(sorted(unknown_overrides)),
                                     ", ".join(sorted(CHECKERS))))
        self._net = net
        self._context = None
        self._checkers = {}

    # -- lazy construction ------------------------------------------------------

    @property
    def net(self):
        """The Petri-net translation of the model."""
        if self._net is None:
            self._net = to_petri_net(self.dfs)
        return self._net

    @property
    def context(self):
        """The shared checker context (graph, compiled net, invariants)."""
        if self._context is None:
            self._context = CheckerContext(
                self.net, max_states=self.max_states, engine=self.engine,
                workers=self.workers, semiflow_cache=self.semiflow_cache,
                spill_dir=self.spill_dir, spill_bytes=self.spill_bytes,
                resume=self.resume)
        return self._context

    @property
    def graph(self):
        """The reachability graph of the translation (built on demand)."""
        return self.context.graph

    @property
    def state_count(self):
        return len(self.graph)

    def _options_for(self, name):
        """Construction options for checker *name*.

        Options keyed by a member checker's name also reach that member
        inside a portfolio, so ``checker_options={"walk": {...}}`` tunes the
        walks whether the walk checker runs standalone or as a portfolio
        member; explicit nested portfolio options
        (``{"portfolio": {"walk": {...}}}``) win on conflicts.
        """
        options = dict(self.checker_options.get(name) or {})
        if name == "portfolio":
            for member in options.get("order", DEFAULT_PORTFOLIO_ORDER):
                top_level = self.checker_options.get(member)
                if not top_level:
                    continue
                merged = dict(top_level)
                merged.update(options.get(member) or {})
                options[member] = merged
        return options

    def _checker_for(self, property_key, checker=None):
        name = checker or self.checker_overrides.get(property_key) or self.checker
        instance = self._checkers.get(name)
        if instance is None:
            instance = create_checker(name, self.context, self._options_for(name))
            self._checkers[name] = instance
        return instance

    def _decorate(self, witnesses):
        """Attach a DFS-level state summary to Petri-net witnesses."""
        decorated = []
        for witness in witnesses:
            entry = dict(witness)
            entry["dfs_state"] = marking_to_dfs_state(self.dfs, witness["marking"])
            decorated.append(entry)
        return decorated

    def _run(self, property_key, property_name, query, checker, max_witnesses):
        outcome = self._checker_for(property_key, checker).check(
            query, max_witnesses=max_witnesses)
        return VerificationResult(
            property_name, outcome.holds,
            witnesses=self._decorate(outcome.witnesses),
            details=outcome.details, method=outcome.method,
        )

    # -- individual properties ----------------------------------------------------

    def verify_deadlock_freedom(self, max_witnesses=5, checker=None):
        """No reachable state of the model is completely stuck."""
        return self._run("deadlock", "deadlock freedom", DeadlockQuery(),
                         checker, max_witnesses)

    def verify_control_mismatch(self, max_witnesses=5, checker=None):
        """No node ever observes both True and False control tokens."""
        expression = control_mismatch_expression(self.dfs)
        if expression is None:
            return VerificationResult(
                "control-token mismatch", True,
                details="no node is guarded by two or more control registers",
            )
        query = ReachQuery(expression, description="control-token mismatch")
        return self._run("mismatch", "control-token mismatch", query,
                         checker, max_witnesses)

    def verify_persistence(self, max_witnesses=5, checker=None):
        """No event is disabled by another one (hazard-freedom), choices excepted."""
        return self._run("persistence", "persistence", PersistenceQuery(),
                         checker, max_witnesses)

    def verify_safeness(self, max_witnesses=5, checker=None):
        """The translated net is 1-safe (a sanity check on the translation)."""
        return self._run("safeness", "1-safeness", SafenessQuery(bound=1),
                         checker, max_witnesses)

    def verify_value_mutual_exclusion(self, max_witnesses=5, checker=None):
        """A dynamic register never holds a True and a False token at once."""
        expression = value_exclusion_expression(self.dfs)
        if expression is None:
            return VerificationResult(
                "token-value exclusion", True,
                details="the model has no dynamic registers",
            )
        query = ReachQuery(expression, description="token-value exclusion")
        return self._run("exclusion", "token-value exclusion", query,
                         checker, max_witnesses)

    def verify_custom(self, expression, property_name="custom property",
                      max_witnesses=5, checker=None):
        """Check a custom Reach expression describing *bad* states."""
        query = ReachQuery(expression, description=property_name)
        return self._run(property_name, property_name, query, checker,
                         max_witnesses)

    # -- batched verification ---------------------------------------------------------

    def _resolve_property(self, name, custom):
        """Return a runner closure for a property *name*, or raise."""
        method_name = self.PROPERTY_CHECKS.get(name)
        if method_name is not None:
            return getattr(self, method_name)
        expression = None
        if custom and name in custom:
            expression = custom[name]
        elif name in CUSTOM_PROPERTIES:
            expression = CUSTOM_PROPERTIES[name][0]
        if expression is not None:
            def run(max_witnesses=5, checker=None, _expr=expression, _name=name):
                return self.verify_custom(_expr, property_name=_name,
                                          max_witnesses=max_witnesses,
                                          checker=checker)
            return run
        known = sorted(self.PROPERTY_CHECKS) + sorted(CUSTOM_PROPERTIES)
        raise VerificationError(
            "unknown property {!r} (known: {})".format(name, ", ".join(known)))

    def verify_properties(self, properties, max_witnesses=5, checker=None,
                          custom=None, progress=None):
        """Run the named checks and return a summary.

        *properties* is an iterable of :data:`PROPERTY_CHECKS` keys and/or
        custom-property names -- from the *custom* mapping (name to Reach
        expression) or the :data:`CUSTOM_PROPERTIES` registry; the checks
        run in the given order against the same shared artefacts.  *checker*
        forces one checker for every property of this batch (otherwise the
        per-property overrides and the verifier default apply).

        *progress*, if given, is called as ``progress(event, name, result)``
        around each property: once with ``("property-started", name, None)``
        before a check runs and once with ``("property-finished", name,
        result)`` after -- the hook the serving stack turns into streamed
        per-job events.
        """
        properties = list(properties)
        runners = [self._resolve_property(name, custom) for name in properties]
        results = []
        for name, runner in zip(properties, runners):
            if progress is not None:
                progress("property-started", name, None)
            result = runner(max_witnesses=max_witnesses, checker=checker)
            results.append(result)
            if progress is not None:
                progress("property-finished", name, result)
        summary = VerificationSummary(
            self.dfs.name,
            state_count=self.context.state_count,
            truncated=self.context.truncated,
            exploration=self.context.exploration,
        )
        for result in results:
            summary.add(result)
        return summary

    def verify_all(self, include_persistence=True):
        """Run the standard battery of checks and return a summary."""
        properties = [name for name in self.PROPERTY_CHECKS
                      if include_persistence or name != "persistence"]
        return self.verify_properties(properties)
