"""Verification of DFS models through their Petri-net semantics.

The paper's flow translates a DFS model into a Petri net and checks it with
MPSAT for standard properties (deadlock) and custom Reach properties (such
as control-token mismatch and hazards).  The :class:`Verifier` here does the
same with the in-package explicit-state engine and reports counterexamples
both as Petri-net traces and as DFS-level state summaries.
"""

from repro.verification.checkers import (
    CHECKERS,
    Checker,
    CheckerContext,
    CheckerOutcome,
    create_checker,
    register_checker,
)
from repro.verification.results import VerificationResult, VerificationSummary
from repro.verification.verifier import (
    CUSTOM_PROPERTIES,
    Verifier,
    register_custom_property,
    unregister_custom_property,
)
from repro.verification.properties import (
    control_mismatch_expression,
    value_exclusion_expression,
    variable_consistency_pairs,
)

__all__ = [
    "CHECKERS",
    "CUSTOM_PROPERTIES",
    "Checker",
    "CheckerContext",
    "CheckerOutcome",
    "VerificationResult",
    "VerificationSummary",
    "Verifier",
    "control_mismatch_expression",
    "create_checker",
    "register_checker",
    "register_custom_property",
    "unregister_custom_property",
    "value_exclusion_expression",
    "variable_consistency_pairs",
]
