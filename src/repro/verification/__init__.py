"""Verification of DFS models through their Petri-net semantics.

The paper's flow translates a DFS model into a Petri net and checks it with
MPSAT for standard properties (deadlock) and custom Reach properties (such
as control-token mismatch and hazards).  The :class:`Verifier` here does the
same with the in-package explicit-state engine and reports counterexamples
both as Petri-net traces and as DFS-level state summaries.
"""

from repro.verification.results import VerificationResult, VerificationSummary
from repro.verification.verifier import Verifier
from repro.verification.properties import (
    control_mismatch_expression,
    variable_consistency_pairs,
)

__all__ = [
    "VerificationResult",
    "VerificationSummary",
    "Verifier",
    "control_mismatch_expression",
    "variable_consistency_pairs",
]
