"""The portfolio checker: race the specialists, keep the first verdict.

Model-checking portfolios (SMPT, the Model Checking Contest tools) run an
inductive prover, a bounded/explicit engine and a random walker side by side
because the three are conclusive in complementary regimes: provers answer
"holds" on unbounded state spaces, walkers answer "violated" far beyond any
truncation horizon, and exhaustive search answers both ways but only within
its state budget.

This portfolio runs its members as a cooperative race in deterministic
order -- cheap structural reasoning first, then the falsifier, then the
exhaustive engine -- and returns the first conclusive verdict.  (The members
are pure CPU-bound Python sharing one interpreter, so "racing" them on
threads would only interleave the same work; a budgeted rotation gives the
same first-conclusive-verdict semantics deterministically.)  The winning
member's name is reported as the verdict's ``method``, so campaign records
and cache entries say *which* engine concluded.  When nobody concludes, the
outcome summarises every member's reason.

Member budgets are configurable per checker::

    PortfolioChecker(context, walk={"walks": 32, "steps": 1024},
                     inductive={"max_cubes": 10000})

Queries a member does not support simply yield an inconclusive answer and
the race moves on, so persistence -- which only the exhaustive engine can
decide -- still works through a portfolio without special cases.
"""

from repro.exceptions import ConfigurationError
from repro.verification.checkers.base import (
    CHECKERS,
    Checker,
    CheckerOutcome,
    register_checker,
)

#: Default race order: prove structurally, falsify cheaply, then explore.
DEFAULT_ORDER = ("inductive", "walk", "exhaustive")


@register_checker
class PortfolioChecker(Checker):
    """First conclusive verdict from a race of complementary checkers."""

    name = "portfolio"

    def __init__(self, context, order=DEFAULT_ORDER, **member_options):
        super().__init__(context)
        self.order = tuple(order)
        if self.name in self.order:
            raise ConfigurationError(
                "a portfolio cannot contain itself (order={!r})".format(
                    self.order))
        unknown = [name for name in self.order if name not in CHECKERS]
        if unknown:
            raise ConfigurationError(
                "unknown portfolio member(s): {} (known: {})".format(
                    ", ".join(unknown), ", ".join(sorted(CHECKERS))))
        stray = [name for name in member_options if name not in self.order]
        if stray:
            raise ConfigurationError(
                "options given for checker(s) outside the portfolio order: "
                "{}".format(", ".join(stray)))
        self.members = [
            CHECKERS[name](context, **(member_options.get(name) or {}))
            for name in self.order
        ]

    def check(self, query, max_witnesses=5):
        attempts = []
        for member in self.members:
            outcome = member.check(query, max_witnesses=max_witnesses)
            if outcome.conclusive:
                return outcome
            attempts.append((member.name, outcome.details))
        details = "; ".join(
            "{}: {}".format(name, reason) for name, reason in attempts)
        return CheckerOutcome(None, method=self.name,
                              details="no member concluded -- " + details)
