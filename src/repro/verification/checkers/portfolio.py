"""The portfolio checker: race the specialists, keep the first verdict.

Model-checking portfolios (SMPT, the Model Checking Contest tools) run an
inductive prover, a bounded/explicit engine and a random walker side by side
because the three are conclusive in complementary regimes: provers answer
"holds" on unbounded state spaces, walkers answer "violated" far beyond any
truncation horizon, and exhaustive search answers both ways but only within
its state budget.

The portfolio has two execution modes:

* **Budgeted rotation** (default): members run one after the other in
  deterministic order -- cheap structural reasoning first, then the
  falsifier, then the exhaustive engine -- and the first conclusive verdict
  wins.  All members share the context's artefacts (graph, compiled net,
  invariants), so nothing is computed twice.
* **True racing** (``race=True``): every member runs in its **own worker
  process** through the supervised pool of
  :mod:`repro.parallel.supervisor`; the first conclusive verdict wins and
  the losing workers are **terminated immediately** instead of running out
  their budgets.  This is the mode for beyond-horizon workloads on real
  cores: a deadlock hunt no longer waits for the inductive prover to
  decline, and an inductive proof no longer waits behind a hopeless
  exhaustive exploration.  ``race_timeout`` bounds the whole race (seconds).
  Conclusive verdicts never contradict each other (checker soundness), so
  which member wins a close race can vary between runs, but never what the
  verdict says.  Inside a daemonic worker (e.g. a campaign job), where new
  processes cannot be spawned, the portfolio falls back to rotation
  transparently.

The winning member's name is reported as the verdict's ``method``, so
campaign records and cache entries say *which* engine concluded.  When
nobody concludes, the outcome summarises every member's reason.

Member budgets are configurable per checker::

    PortfolioChecker(context, race=True,
                     walk={"walks": 32, "steps": 1024},
                     inductive={"max_cubes": 10000})

Queries a member does not support simply yield an inconclusive answer and
the race moves on, so persistence -- which only the exhaustive engine can
decide -- still works through a portfolio without special cases.
"""

from repro.exceptions import ConfigurationError
from repro.parallel.context import in_daemon_worker
from repro.parallel.supervisor import run_supervised
from repro.verification.checkers.base import (
    CHECKERS,
    Checker,
    CheckerContext,
    CheckerOutcome,
    register_checker,
)

#: Default order: prove structurally, falsify cheaply, then bring in the
#: SMT engines (no-ops without a solver), then explore exhaustively.
DEFAULT_ORDER = ("inductive", "walk", "bmc", "kinduction", "ic3",
                 "exhaustive")


def _race_member(net, max_states, engine, workers, semiflow_cache, name,
                 options, query, max_witnesses):
    """Worker entry point of a portfolio race: run one member, return its outcome.

    Rebuilds the member's context from plain data (the context artefacts --
    graph, invariants -- are process-local by design: each racer pays only
    for the artefacts its own strategy needs).
    """
    context = CheckerContext(net, max_states=max_states, engine=engine,
                             workers=workers, semiflow_cache=semiflow_cache)
    checker = CHECKERS[name](context, **(options or {}))
    return checker.check(query, max_witnesses=max_witnesses)


@register_checker
class PortfolioChecker(Checker):
    """First conclusive verdict from a race of complementary checkers."""

    name = "portfolio"
    summary = ("rotation or race over the other checkers; first conclusive "
               "verdict wins")
    #: The default order contains solver-backed members, so portfolio
    #: verdicts can depend on the solver (campaign digests must notice).
    uses_solver = True

    def __init__(self, context, order=DEFAULT_ORDER, race=False,
                 race_timeout=None, **member_options):
        super().__init__(context)
        self.order = tuple(order)
        self.race = bool(race)
        self.race_timeout = race_timeout
        if self.name in self.order:
            raise ConfigurationError(
                "a portfolio cannot contain itself (order={!r})".format(
                    self.order))
        unknown = [name for name in self.order if name not in CHECKERS]
        if unknown:
            raise ConfigurationError(
                "unknown portfolio member(s): {} (known: {})".format(
                    ", ".join(unknown), ", ".join(sorted(CHECKERS))))
        stray = [name for name in member_options if name not in self.order]
        if stray:
            raise ConfigurationError(
                "options given for checker(s) outside the portfolio order: "
                "{}".format(", ".join(stray)))
        self.member_options = {name: dict(member_options.get(name) or {})
                               for name in self.order}
        self.members = [
            CHECKERS[name](context, **self.member_options[name])
            for name in self.order
        ]

    def check(self, query, max_witnesses=5):
        if self.race and len(self.members) > 1 and not in_daemon_worker():
            return self._check_racing(query, max_witnesses)
        return self._check_rotation(query, max_witnesses)

    # -- budgeted rotation (shared artefacts, deterministic) ------------------

    def _check_rotation(self, query, max_witnesses):
        attempts = []
        for member in self.members:
            outcome = member.check(query, max_witnesses=max_witnesses)
            if outcome.conclusive:
                return outcome
            attempts.append((member.name, outcome.details))
        details = "; ".join(
            "{}: {}".format(name, reason) for name, reason in attempts)
        return CheckerOutcome(None, method=self.name,
                              details="no member concluded -- " + details)

    # -- true racing (separate processes, losers cancelled) -------------------

    def _check_racing(self, query, max_witnesses):
        context = self.context
        tasks = [
            (name, _race_member,
             (context.net, context.max_states, context.engine,
              0, context.semiflow_cache, name,
              self.member_options[name], query, max_witnesses))
            for name in self.order
        ]
        outcomes = run_supervised(
            tasks, parallelism=len(tasks), timeout=self.race_timeout,
            stop_when=lambda outcome: (outcome.ok
                                       and outcome.payload.conclusive))
        by_name = {outcome.task_id: outcome for outcome in outcomes}
        for outcome in outcomes:
            if outcome.ok and outcome.payload.conclusive:
                winner = outcome.payload
                losers = ", ".join(
                    "{} {}".format(name, by_name[name].status)
                    for name in self.order if name != outcome.task_id)
                winner.details = "{} [won the race; {}]".format(
                    winner.details, losers or "no other members")
                return winner
        attempts = []
        for name in self.order:
            outcome = by_name[name]
            if outcome.ok:
                attempts.append((name, outcome.payload.details))
            else:
                attempts.append((name, "worker {}: {}".format(
                    outcome.status, outcome.error or "no detail")))
        details = "; ".join(
            "{}: {}".format(name, reason) for name, reason in attempts)
        return CheckerOutcome(None, method=self.name,
                              details="no member concluded -- " + details)
