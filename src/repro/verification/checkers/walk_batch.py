"""Vectorised walk swarms on the batch firing primitive.

The scalar walker of :mod:`repro.verification.checkers.walk` fires one
transition of one state per Python bytecode iteration; this engine advances
**thousands of concurrent walks per pass**.  Every walk is one row of a
``(width, words)`` uint64 matrix, and one pass of the main loop is:

1. retire rows that exhausted their step budget (the state after a walk's
   final firing is never predicate-checked, exactly like the scalar loop);
2. test the bad-state predicate on the whole matrix
   (:func:`repro.petri.batch.compile_row_predicate`);
3. one :meth:`~repro.petri.batch.WordTables.enabled_matrix` scan -- rows
   with nothing enabled are deadlock witnesses (when hunting deadlocks);
4. update each row's best *near-miss* rank as a whole-matrix reduction
   (enabled counts for deadlock hunts, matched bad-cube literal fractions
   for Reach hunts -- the same arithmetic as
   :mod:`~repro.verification.checkers.walk_core`, in float64 columns);
5. draw one word per row from the counter-based RNG of
   :func:`~repro.verification.checkers.walk_core.walk_draw` -- a walk's
   stream depends only on ``(seed, walk, step)``, never on the swarm width;
6. fire **every** enabled (state, transition) pair of the matrix at once
   through :func:`repro.petri.batch.fire_enabled_flags`;
7. pick each row's move: guided rows take the best-ranked successor
   (one ``lexsort`` + segment heads), uniform rows index their candidate
   list by the draw -- both tie-break exactly like the scalar stepper;
8. retired rows push their best near-miss into the shared
   :class:`~repro.verification.checkers.walk_core.NearMissPool` and are
   **reseeded in place**: the next walk launches into the dead row, every
   other one from a pool entry (counterexample-guided restarts as a top-k
   selection instead of a per-walk Python scan).

The engine is deterministic per ``(seed, walks, swarm width)``: the RNG
stream of a walk is width-independent, but the restart pool fills in
retirement order, which depends on how walks are packed into rows -- hence
width is part of the contract (and of campaign digests).

Array-module seam
-----------------

All array operations go through the module handle returned by
:func:`array_module` (``xp``), which is NumPy today.  A CuPy drop-in needs
``xp.lexsort`` / ``xp.bitwise_count`` plus device-resident
:class:`~repro.petri.batch.WordTables`; the engine itself never touches
NumPy-only APIs outside this seam.  Witness traces produced here are raw
transition indices -- the checker replays them on the net (like SMT
counterexamples) before trusting any verdict.
"""

from repro.petri import batch as _batch
from repro.petri.batch import (
    fire_enabled_flags,
    int_to_words,
    overflow_place,
    words_to_int,
)
from repro.verification.checkers.walk_core import (
    DRAW_SEED_STRIDE,
    DRAW_STEP_STRIDE,
    DRAW_WALK_STRIDE,
    MIX_MULTIPLIER_A,
    MIX_MULTIPLIER_B,
    NearMissPool,
    walk_draw,
)

_MASK64 = (1 << 64) - 1


def array_module():
    """The active array module (NumPy today; the CuPy drop-in seam).

    Raises :class:`~repro.exceptions.CompilationError` when the optional
    NumPy extra is unavailable (or disabled via ``REPRO_NO_NUMPY``);
    callers fall back to the scalar walker.
    """
    _batch._require_numpy()
    return _batch._np


def draw_rows(xp, seed, walks, steps):
    """Vectorised :func:`~repro.verification.checkers.walk_core.walk_draw`.

    *walks* and *steps* are integer vectors; returns the uint64 draw of
    each ``(seed, walk, step)`` triple, bit-identical to the scalar
    function (uint64 arithmetic wraps exactly like the masked int math).
    """
    value = (xp.uint64((seed * DRAW_SEED_STRIDE) & _MASK64)
             + walks.astype(xp.uint64) * xp.uint64(DRAW_WALK_STRIDE)
             + steps.astype(xp.uint64) * xp.uint64(DRAW_STEP_STRIDE))
    value = (value ^ (value >> xp.uint64(30))) * xp.uint64(MIX_MULTIPLIER_A)
    value = (value ^ (value >> xp.uint64(27))) * xp.uint64(MIX_MULTIPLIER_B)
    return value ^ (value >> xp.uint64(31))


def cube_word_table(xp, cube_masks, words):
    """Split int ``(ones, zeros, size)`` cube masks into uint64 word rows."""
    table = []
    for ones, zeros, size in cube_masks or ():
        if not size:
            continue
        table.append((xp.array(int_to_words(ones, words), dtype=xp.uint64),
                      xp.array(int_to_words(zeros, words), dtype=xp.uint64),
                      size))
    return table


def cube_rank_rows(xp, table, rows):
    """Vectorised :func:`~repro.verification.checkers.walk_core.cube_rank`."""
    best = xp.zeros(len(rows), dtype=xp.float64)
    for ones, zeros, size in table:
        matched = (xp.bitwise_count(rows & ones).sum(axis=1)
                   + xp.bitwise_count(~rows & zeros).sum(axis=1))
        best = xp.maximum(best, matched / size)
    return -best


class SwarmResult:
    """What one swarm hunt produced, plus its work counters.

    ``witnesses`` are ``{"state": int, "trace": [transition indices]}``
    dicts for distinct bad/deadlocked states; ``overflow`` is the
    conclusive 1-safeness counterexample of a safeness hunt (or ``None``);
    ``steps`` counts committed row advances and ``expanded`` all fired
    (state, transition) candidate pairs -- the bench's throughput numbers.
    """

    __slots__ = ("witnesses", "overflow", "steps", "walks", "expanded")

    def __init__(self, witnesses, overflow, steps, walks, expanded):
        self.witnesses = witnesses
        self.overflow = overflow
        self.steps = steps
        self.walks = walks
        self.expanded = expanded


def swarm_hunt(tables, initial, walks, steps, swarm, seed, guidance, restarts,
               max_witnesses, row_predicate=None, cube_masks=None,
               score_kind=None, stop_in_deadlock=False,
               overflow_conclusive=False):
    """Run the walk budget as a vectorised swarm; a :class:`SwarmResult`.

    *tables* is the :class:`~repro.petri.batch.WordTables` of the compiled
    net and *initial* the int initial state.  The remaining knobs mirror
    the scalar walker's (see :class:`RandomWalkChecker`); *swarm* caps the
    matrix width -- ``min(walks, swarm)`` rows advance concurrently and
    retired rows are reseeded in place until *walks* walks have launched.
    """
    xp = array_module()
    words = tables.words
    width = max(1, min(int(swarm), int(walks)))
    threshold = int(guidance * 256)
    cube_table = (cube_word_table(xp, cube_masks, words)
                  if score_kind == "cube" else None)
    track = restarts > 0 and score_kind is not None

    initial_row = xp.array(int_to_words(initial, words), dtype=xp.uint64)
    rows = xp.tile(initial_row, (width, 1))
    walk_id = xp.arange(width, dtype=xp.int64)
    steps_taken = xp.zeros(width, dtype=xp.int64)
    active = xp.ones(width, dtype=bool)
    trace_buf = xp.zeros((width, max(int(steps), 1)), dtype=xp.int32)
    prefixes = [()] * width
    best_rank = xp.full(width, xp.inf)
    best_state = rows.copy()
    best_len = xp.full(width, -1, dtype=xp.int64)
    launched = width

    pool = NearMissPool(restarts)
    witnesses = []
    witnessed = set()
    total_steps = 0
    expanded = 0

    def trace_of(i, length):
        return list(prefixes[i]) + [int(t) for t in trace_buf[i, :length]]

    def witness(i):
        state = words_to_int(rows[i])
        if state not in witnessed:
            witnessed.add(state)
            witnesses.append(
                {"state": state, "trace": trace_of(i, int(steps_taken[i]))})

    def state_rank(block, counts):
        if score_kind == "fewest":
            if counts is None:
                counts = tables.enabled_matrix(block).sum(axis=1)
            return counts.astype(xp.float64)
        return cube_rank_rows(xp, cube_table, block)

    def retire(i):
        """Bank row *i*'s near-miss, then reseed it with the next walk."""
        nonlocal launched
        if track and best_len[i] >= 0:
            pool.remember(float(best_rank[i]), words_to_int(best_state[i]),
                          trace_of_best(i))
        if launched >= walks:
            active[i] = False
            return
        walk = launched
        launched += 1
        walk_id[i] = walk
        steps_taken[i] = 0
        best_rank[i] = xp.inf
        best_len[i] = -1
        prefixes[i] = ()
        rows[i] = initial_row
        if len(pool) and walk % 2:
            _, near_state, near_trace = pool.pick(walk_draw(seed, walk, 0))
            if near_state not in witnessed:
                rows[i] = xp.array(int_to_words(near_state, words),
                                   dtype=xp.uint64)
                prefixes[i] = tuple(near_trace)

    def trace_of_best(i):
        return tuple(prefixes[i]) + tuple(
            int(t) for t in trace_buf[i, :int(best_len[i])])

    while len(witnesses) < max_witnesses:
        act = xp.flatnonzero(active)
        if not len(act):
            break
        retired = []
        # 1. step-budget exhaustion (the post-final-fire state is never
        # predicate-checked, matching the scalar loop bound).
        exhausted = steps_taken[act] >= steps
        if exhausted.any():
            retired.extend(act[exhausted].tolist())
            act = act[~exhausted]
        # 2. bad-state predicate over the whole matrix.
        if len(act) and row_predicate is not None:
            hits = row_predicate(rows[act])
            if hits.any():
                for i in act[hits].tolist():
                    witness(i)
                retired.extend(act[hits].tolist())
                act = act[~hits]
        if len(act):
            # 3. enabledness; silent rows are deadlock witnesses.
            enabled = tables.enabled_matrix(rows[act])
            counts = enabled.sum(axis=1)
            dead = counts == 0
            if dead.any():
                if stop_in_deadlock:
                    for i in act[dead].tolist():
                        witness(i)
                retired.extend(act[dead].tolist())
                keep = ~dead
                act, enabled, counts = act[keep], enabled[keep], counts[keep]
        if len(act):
            # 4. near-miss rank update (whole-matrix reduction).
            if track:
                rank_now = state_rank(rows[act], counts)
                better = rank_now < best_rank[act]
                if better.any():
                    update = act[better]
                    best_rank[update] = rank_now[better]
                    best_state[update] = rows[update]
                    best_len[update] = steps_taken[update]
            # 5. one counter-based draw per row.
            draws = draw_rows(xp, seed, walk_id[act], steps_taken[act] + 1)
            if score_kind is not None:
                guided = (((draws >> xp.uint64(8)) & xp.uint64(0xFF))
                          < xp.uint64(threshold))
                guided &= counts > 1
            else:
                guided = xp.zeros(len(act), dtype=bool)
            # 6. fire every enabled pair of the matrix in one batch.
            flat = xp.flatnonzero(enabled)
            source_local, transition, successor, overflowed = (
                fire_enabled_flags(tables, rows[act], flat))
            expanded += len(flat)
            if overflow_conclusive and overflowed.any():
                position = int(xp.argmax(overflowed))
                i = int(act[int(source_local[position])])
                overflow = {
                    "state": words_to_int(rows[i]),
                    "trace": trace_of(i, int(steps_taken[i])),
                    "transition": int(transition[position]),
                    "place": int(overflow_place(tables, rows[act],
                                                source_local, transition,
                                                position)),
                }
                return SwarmResult(witnesses, overflow, total_steps,
                                   launched, expanded)
            # 7. choose each row's move.
            seg_start = xp.cumsum(counts) - counts
            choice = xp.empty(len(act), dtype=xp.int64)
            uniform = ~guided
            if uniform.any():
                offsets = (draws[uniform]
                           % counts[uniform].astype(xp.uint64))
                choice[uniform] = seg_start[uniform] + offsets.astype(xp.int64)
            if guided.any():
                pair_guided = guided[source_local]
                g_flat = xp.flatnonzero(pair_guided)
                g_rank = state_rank(successor[g_flat], None)
                g_source = source_local[g_flat]
                # Sorting by (row, rank, transition) and taking segment
                # heads picks the minimum rank with ties to the lowest
                # transition index -- the scalar stepper's exact choice.
                order = xp.lexsort((transition[g_flat], g_rank, g_source))
                ordered_source = g_source[order]
                head = xp.ones(len(order), dtype=bool)
                head[1:] = ordered_source[1:] != ordered_source[:-1]
                choice[ordered_source[head]] = g_flat[order[head]]
            # 8. overflow retirement: a guided row dies on *any*
            # overflowing candidate (the scalar scorer fires them all); a
            # uniform row dies only when its chosen pair overflowed.
            kill = overflowed[choice] & uniform
            if guided.any() and overflowed.any():
                row_overflowed = xp.zeros(len(act), dtype=bool)
                row_overflowed[source_local[overflowed]] = True
                kill |= guided & row_overflowed
            if kill.any():
                retired.extend(act[kill].tolist())
            live = ~kill
            # 9. commit the surviving moves.
            if live.any():
                target = act[live]
                pick = choice[live]
                rows[target] = successor[pick]
                trace_buf[target, steps_taken[target]] = (
                    transition[pick].astype(xp.int32))
                steps_taken[target] += 1
                total_steps += int(live.sum())
        # Reseed in walk order so pool pushes and pool picks are
        # deterministic for a fixed (seed, walks, width).
        for i in sorted(retired, key=lambda index: int(walk_id[index])):
            retire(i)
    return SwarmResult(witnesses, None, total_steps, launched, expanded)
