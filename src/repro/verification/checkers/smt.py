"""Solver-backed checkers: BMC, k-induction and IC3 behind the registry.

These checkers translate queries into the SMT proof engines of
:mod:`repro.smt` and fold the answers back into the repo's three-valued
:class:`~repro.verification.checkers.base.CheckerOutcome` convention.
They are strictly optional, exactly like the NumPy acceleration: when the
z3 binary is missing (or ``REPRO_NO_Z3`` is set) every query comes back
inconclusive with a message naming the binary, so portfolios degrade
gracefully and nothing crashes.

Soundness containment, in both directions:

* a ``violated`` engine outcome is only trusted after its trace **replays**
  through :meth:`repro.petri.net.PetriNet.fire` from the initial marking
  and the final marking actually satisfies the query's bad-state predicate
  -- a solver (or encoding) bug degrades to inconclusive, never to a wrong
  "violated";
* a ``proved`` outcome comes from engines that re-validate their own
  certificates (IC3) or from an induction whose base cases were checked at
  every depth (k-induction); solver crashes, timeouts and protocol errors
  all surface as :class:`~repro.exceptions.SolverError` and are mapped to
  inconclusive outcomes here.
"""

from repro.exceptions import (
    ModelError,
    SolverError,
    SolverTimeoutError,
    SolverUnavailableError,
)
from repro.petri.invariants import proves_bound
from repro.smt.bmc import run_bmc
from repro.smt.encoder import SmtEncoder
from repro.smt.ic3 import run_ic3
from repro.smt.kinduction import run_kinduction
from repro.verification.checkers.base import Checker, register_checker


class SolverBackedChecker(Checker):
    """Shared plumbing of the SMT checkers: encoding, replay, containment."""

    uses_solver = True
    requires_solver = True

    def __init__(self, context, timeout=30.0):
        super().__init__(context)
        #: Per-query solver budget in seconds (soft limit plus a hard
        #: wall-clock kill); ``None`` disables both.
        self.timeout = float(timeout) if timeout else None

    # -- availability ---------------------------------------------------------

    def _solver_missing(self):
        """An inconclusive outcome naming the missing binary, or ``None``."""
        from repro.smt.solver import require_solver
        try:
            require_solver()
        except SolverUnavailableError as exc:
            return self.outcome(None, details=str(exc))
        return None

    # -- encoding -------------------------------------------------------------

    def _certified_safe(self):
        """True when the semiflows certify every place 1-bounded."""
        semiflows = self.context.semiflows
        return bool(semiflows) and proves_bound(
            semiflows, self.context.net.places, bound=1)

    def _encoder(self, safe):
        return SmtEncoder(self.context.net, safe=safe)

    @staticmethod
    def _bad_builder(encoder, query):
        """Map *query* to a per-step bad-marking formula builder."""
        if query.kind == "reach":
            return lambda step: encoder.predicate(query.expression, step)
        if query.kind == "deadlock":
            return encoder.deadlock
        if query.kind == "safeness":
            return lambda step: encoder.excess_tokens(query.bound, step)
        return None

    # -- counterexample validation --------------------------------------------

    def _bad_marking(self, query, marking):
        """Does *marking* actually satisfy the query's bad-state predicate?"""
        if query.kind == "reach":
            return query.expression.evaluate(marking)
        if query.kind == "deadlock":
            return not self.context.net.enabled_transitions(marking)
        if query.kind == "safeness":
            return any(tokens > query.bound for tokens in marking.values())
        return False

    def _replayed(self, query, result):
        """Replay an engine trace; return a witness dict or ``None``.

        The trace is fired step by step from the initial marking.  Any
        disabled transition (or capacity overflow) aborts the replay: the
        engine's model was wrong and its verdict must not be trusted.
        """
        net = self.context.net
        marking = net.initial_marking()
        try:
            for transition in result.trace:
                marking = net.fire(transition, marking)
        except ModelError:
            return None
        if not self._bad_marking(query, marking):
            return None
        witness = {"marking": marking, "trace": list(result.trace)}
        if query.kind == "safeness":
            witness["places"] = {
                place: tokens for place, tokens in marking.items()
                if tokens > query.bound}
        return witness

    # -- outcome mapping ------------------------------------------------------

    def _decide(self, query, max_witnesses):
        missing = self._solver_missing()
        if missing is not None:
            return missing
        from repro.smt.solver import solver_respawns
        respawns_before = solver_respawns()

        def note(details):
            """Append the query's solver-respawn count to *details*."""
            respawned = solver_respawns() - respawns_before
            if not respawned:
                return details
            suffix = "solver respawned {} time(s) mid-session".format(
                respawned)
            return "{}; {}".format(details, suffix) if details else suffix

        try:
            result = self._prove(query)
        except SolverTimeoutError as exc:
            return self.outcome(None, details=note(
                "solver timeout: {}".format(exc)))
        except SolverUnavailableError as exc:
            return self.outcome(None, details=note(str(exc)))
        except SolverError as exc:
            return self.outcome(None, details=note(
                "solver failure: {}".format(exc)))
        if result is None:
            return self.unsupported(query)
        if result.proved:
            return self.outcome(True, details=note(result.details))
        if result.violated:
            witness = self._replayed(query, result)
            if witness is None:
                return self.outcome(None, details=note(
                    "the solver reported a violation but its trace did not "
                    "replay; not trusting the verdict"))
            return self.outcome(False, witnesses=[witness],
                                details=note(result.details))
        return self.outcome(None, details=note(result.details))

    def _prove(self, query):
        """Run the engine; return a ProofOutcome or ``None`` (unsupported)."""
        raise NotImplementedError

    def check_reach(self, query, max_witnesses=5):
        self.context.check_places(query.expression)
        return self._decide(query, max_witnesses)

    def check_deadlock(self, query, max_witnesses=5):
        return self._decide(query, max_witnesses)

    def check_safeness(self, query, max_witnesses=5):
        return self._decide(query, max_witnesses)


@register_checker
class BmcChecker(SolverBackedChecker):
    """Falsify queries by SMT bounded model checking.

    A complete falsifier up to ``max_depth`` firing steps -- shallow bugs
    come back as replayable traces without building any state space -- but
    it can never prove: an exhausted unrolling is an inconclusive outcome.
    """

    name = "bmc"
    summary = ("SMT bounded model checking (z3): counterexample traces by "
               "incremental unrolling, never proves")

    def __init__(self, context, max_depth=64, timeout=30.0):
        super().__init__(context, timeout=timeout)
        self.max_depth = int(max_depth)

    def _prove(self, query):
        # Safeness asks whether a place can exceed its bound, so the
        # encoding must not clamp places to 1 even on certified nets.
        safe = query.kind != "safeness" and self._certified_safe()
        encoder = self._encoder(safe)
        bad = self._bad_builder(encoder, query)
        if bad is None:
            return None
        return run_bmc(encoder, bad, max_depth=self.max_depth,
                       semiflows=self.context.semiflows,
                       timeout=self.timeout)


@register_checker
class KInductionChecker(SolverBackedChecker):
    """Prove or refute queries by k-induction with simple-path strengthening.

    Each iteration is one BMC base case (so every violation is found at its
    exact depth, with a trace) plus one induction step; when the step case
    closes the property **holds with no state bound at all**.
    """

    name = "kinduction"
    summary = ("SMT k-induction (z3): unbounded proofs via strengthened "
               "induction, refutes with a trace")

    def __init__(self, context, max_depth=32, simple_path=True, timeout=30.0):
        super().__init__(context, timeout=timeout)
        self.max_depth = int(max_depth)
        self.simple_path = bool(simple_path)

    def _prove(self, query):
        safe = query.kind != "safeness" and self._certified_safe()
        encoder = self._encoder(safe)
        bad = self._bad_builder(encoder, query)
        if bad is None:
            return None
        return run_kinduction(encoder, bad, max_depth=self.max_depth,
                              semiflows=self.context.semiflows,
                              simple_path=self.simple_path,
                              timeout=self.timeout)


@register_checker
class Ic3Checker(SolverBackedChecker):
    """Prove reach and deadlock queries by IC3/PDR frame strengthening.

    The strongest prover of the portfolio on certified 1-safe nets: it
    needs no unrolling depth, and a "holds" verdict carries a re-validated
    inductive-invariant certificate.  Requires the place invariants to
    certify 1-safety (every DFS translation qualifies by construction);
    uncertified nets come back inconclusive.
    """

    name = "ic3"
    summary = ("SMT IC3/PDR (z3): unbounded proofs with inductive-invariant "
               "certificates on certified 1-safe nets")

    def __init__(self, context, max_frames=64, max_queries=100000,
                 timeout=30.0, wall_timeout=300.0):
        super().__init__(context, timeout=timeout)
        self.max_frames = int(max_frames)
        self.max_queries = int(max_queries)
        #: Whole-run wall-clock budget in seconds (``None`` = unlimited).
        self.wall_timeout = float(wall_timeout) if wall_timeout else None

    #: The last certificate produced by a "holds" verdict (inspection aid).
    certificate = None

    def check_safeness(self, query, max_witnesses=5):
        # IC3 runs on the 1-safe encoding, which asserts the very bound a
        # safeness query is about -- the answer would be circular.
        return self.unsupported(query)

    def _prove(self, query):
        if not self._certified_safe():
            from repro.smt import proof
            return proof.unknown(
                "IC3 needs place invariants certifying 1-safety, and the "
                "semiflows of this net do not")
        encoder = self._encoder(True)
        bad = self._bad_builder(encoder, query)
        if bad is None:
            return None
        initial = self.context.net.initial_marking()
        result = run_ic3(
            encoder, bad(0), initial_bad=self._bad_marking(query, initial),
            semiflows=self.context.semiflows, max_frames=self.max_frames,
            max_queries=self.max_queries, wall_timeout=self.wall_timeout,
            timeout=self.timeout)
        self.certificate = result.certificate if result.proved else None
        return result
