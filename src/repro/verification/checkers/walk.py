"""The random-walk checker: an LFSR-seeded falsifier.

Exhaustive exploration visits states breadth-first, so a bug 30 firings deep
may sit far beyond a feasible ``max_states`` bound.  A random walk goes
*deep* instead of *wide*: it fires one enabled transition at a time on the
compiled bitmask net, testing the bad-state predicate at every visited
marking, and restarts when it runs out of steps.  The walker can only ever
answer ``False`` (with the fired sequence as a ready-made counterexample
trace) or ``None`` -- absence of a bug on a few thousand random paths proves
nothing -- which is exactly the right shape for the falsification half of a
portfolio.

Randomness comes from the same Galois LFSR that drives the evaluation
chip's stimulus generator (:mod:`repro.chip.lfsr`), so walks are
deterministic per seed and campaign scenarios can sweep seeds the way the
paper's E5 experiment sweeps stimulus.  Walks are *guided*: a configurable
fraction of the steps picks the successor that minimises the number of
enabled transitions (when hunting deadlocks -- corners of the state space)
or maximises satisfied bad-cube literals (when hunting Reach violations),
which in practice finds injected-hole deadlocks orders of magnitude faster
than uniform wandering.

Walks are additionally **counterexample-guided**: the checker keeps the
top-``restarts`` best-scoring *near-miss* states seen so far (with the
prefix trace that reached them) and restarts every other walk from one of
them instead of from the initial marking.  A walk that got close to a bad
cube -- or into a sparsely-enabled corner, for deadlock hunts -- thereby
becomes the launch pad of the next walk, which deepens falsification
coverage well beyond the per-walk step budget while staying fully
deterministic per seed.
"""

from repro.chip.lfsr import Lfsr
from repro.exceptions import CompilationError, SafenessOverflowError
from repro.petri.compiled import iter_bits
from repro.reach.cubes import to_cubes
from repro.reach.evaluator import compile_mask_predicate
from repro.verification.checkers.base import Checker, register_checker


@register_checker
class RandomWalkChecker(Checker):
    """Falsify queries with guided random walks on the compiled net."""

    name = "walk"
    summary = ("LFSR-seeded guided random walks; a fast falsifier, never "
               "proves")

    def __init__(self, context, walks=8, steps=256, seed=0xACE1,
                 guidance=0.5, dnf_limit=64, restarts=4):
        super().__init__(context)
        self.walks = int(walks)
        self.steps = int(steps)
        self.seed = int(seed)
        self.guidance = float(guidance)
        self.dnf_limit = int(dnf_limit)
        #: Size of the near-miss pool for counterexample-guided restarts
        #: (``0`` disables restarting: every walk starts at the initial
        #: marking, the pre-restart behaviour).
        self.restarts = int(restarts)

    # -- queries -------------------------------------------------------------

    def check_deadlock(self, query, max_witnesses=5):
        found = self._hunt(predicate=None, score=self._fewest_enabled,
                           stop_in_deadlock=True,
                           max_witnesses=max_witnesses)
        if found is None:
            return self._budget_outcome("deadlock")
        if isinstance(found, CheckerOutcomeProxy):
            return found.outcome
        return self.outcome(
            False, witnesses=found,
            details="random walk reached {} deadlocked state(s)".format(
                len(found)))

    def check_safeness(self, query, max_witnesses=5):
        """Walks detect a 1-safeness loss as a token-overflow firing."""
        if query.bound != 1:
            return self.outcome(
                None, details="random walks only detect 1-safeness "
                "violations (token overflow)")
        found = self._hunt(predicate=None, score=None, stop_in_deadlock=False,
                           max_witnesses=max_witnesses,
                           overflow_conclusive=True)
        if isinstance(found, CheckerOutcomeProxy):
            return found.outcome
        return self._budget_outcome("token overflow")

    def check_reach(self, query, max_witnesses=5):
        self.context.check_places(query.expression)
        compiled = self.context.compiled
        if compiled is None:
            return self._no_compiled_outcome()
        predicate = compile_mask_predicate(query.expression, compiled.mask_of)
        if predicate is None:
            return self.outcome(
                None, details="expression does not compile to a bitmask "
                "predicate; random-walk falsification unavailable")
        cubes = to_cubes(query.expression, max_cubes=self.dnf_limit)
        score = self._cube_score(compiled, cubes) if cubes else None
        found = self._hunt(predicate=predicate, score=score,
                           stop_in_deadlock=False, max_witnesses=max_witnesses)
        if found is None:
            return self._budget_outcome("bad state")
        if isinstance(found, CheckerOutcomeProxy):
            return found.outcome
        return self.outcome(
            False, witnesses=found,
            details="random walk reached {} bad state(s)".format(len(found)))

    # -- outcomes ------------------------------------------------------------

    def _budget_outcome(self, target):
        return self.outcome(
            None, details="no {} found within {} walk(s) of {} step(s); "
            "random walks cannot prove absence".format(
                target, self.walks, self.steps))

    def _no_compiled_outcome(self):
        return self.outcome(
            None, details="net has no bitmask representation; random-walk "
            "falsification unavailable")

    # -- the walk engine -----------------------------------------------------

    def _hunt(self, predicate, score, stop_in_deadlock, max_witnesses,
              overflow_conclusive=False):
        """Run the walk budget; return witnesses, a proxy, or ``None``.

        *predicate* is the bad-state test over raw ``int`` states (``None``
        hunts deadlocks or overflows only); *score* ranks candidate
        successor states (lower is better) for the guided steps.  A
        :class:`SafenessOverflowError` during firing is a conclusive
        counterexample only for the safeness query itself
        (*overflow_conclusive*); for any other query it merely ends the
        current walk -- the overflow state witnesses a different property
        than the one being asked about.
        """
        compiled = self.context.compiled
        if compiled is None:
            return CheckerOutcomeProxy(self._no_compiled_outcome())
        try:
            initial = compiled.encode(self.context.net.initial_marking())
        except CompilationError:
            return CheckerOutcomeProxy(self.outcome(
                None, details="initial marking has no bitmask "
                "representation; random walks unavailable"))
        lfsr = Lfsr(seed=self.seed or 0xACE1, width=32)
        guided_threshold = int(self.guidance * 256)
        names = compiled.transition_names
        witnesses = []
        # Restarted walks often re-find the same bad state; witnesses (and
        # the reported count) cover *distinct* states only.
        witnessed_states = set()

        def witness(state, trace):
            if state not in witnessed_states:
                witnessed_states.add(state)
                witnesses.append({"marking": compiled.decode(state),
                                  "trace": list(trace)})

        # Counterexample-guided restarts: the top-k best-scoring (lowest
        # rank) near-miss prefixes seen so far, as (rank, state, trace).
        pool = []
        pool_states = set()
        track_near_misses = self.restarts > 0 and score is not None

        def remember(rank, state, trace):
            if state in pool_states:
                return
            if len(pool) >= self.restarts:
                worst = max(range(len(pool)), key=lambda i: pool[i][0])
                if pool[worst][0] <= rank:
                    return
                pool_states.discard(pool[worst][1])
                del pool[worst]
            pool_states.add(state)
            pool.append((rank, state, trace))

        for walk_index in range(self.walks):
            state = initial
            trace = []
            if pool and walk_index % 2:
                # Every other walk launches from a stored near-miss prefix
                # instead of the initial marking (LFSR-chosen, so restart
                # coverage sweeps with the seed like everything else).
                rank, near_state, near_trace = pool[lfsr.next() % len(pool)]
                if near_state not in witnessed_states:
                    state = near_state
                    trace = list(near_trace)
            best = None
            for _ in range(self.steps):
                if predicate is not None and predicate(state):
                    witness(state, trace)
                    break
                enabled = compiled.enabled_mask(state)
                if not enabled:
                    if stop_in_deadlock:
                        witness(state, trace)
                    break
                if track_near_misses:
                    rank = score(compiled, state)
                    if best is None or rank < best[0]:
                        best = (rank, state, list(trace))
                draw = lfsr.next()
                try:
                    transition, state = self._step(
                        compiled, state, enabled, draw, score,
                        guided=(draw >> 8) & 0xFF < guided_threshold)
                except SafenessOverflowError as overflow:
                    if not overflow_conclusive:
                        break  # wrong property: end this walk, try another
                    overflow_witness = {"marking": compiled.decode(state),
                                        "trace": list(trace),
                                        "transition": overflow.transition,
                                        "place": overflow.place}
                    return CheckerOutcomeProxy(self.outcome(
                        False, witnesses=[overflow_witness],
                        details="random walk found a 1-safeness violation: "
                        "firing {!r} overflows place {!r}".format(
                            overflow.transition, overflow.place)))
                trace.append(names[transition])
            if best is not None:
                remember(*best)
            if len(witnesses) >= max_witnesses:
                break
        return witnesses or None

    def _step(self, compiled, state, enabled, draw, score, guided):
        indices = list(iter_bits(enabled))
        if guided and score is not None and len(indices) > 1:
            best = None
            for index in indices:
                successor = compiled.fire(index, state)
                rank = score(compiled, successor)
                if best is None or rank < best[0]:
                    best = (rank, index, successor)
            return best[1], best[2]
        index = indices[draw % len(indices)]
        return index, compiled.fire(index, state)

    # -- guidance heuristics -------------------------------------------------

    @staticmethod
    def _fewest_enabled(compiled, state):
        """Prefer successors with fewer options: walk into corners."""
        return compiled.enabled_mask(state).bit_count()

    @staticmethod
    def _cube_score(compiled, cubes):
        """Prefer successors matching more literals of some bad cube."""
        masks = []
        for cube in cubes:
            ones = sum(compiled.place_bit.get(p, 0) for p in cube.true_places)
            zeros = sum(compiled.place_bit.get(p, 0) for p in cube.false_places)
            masks.append((ones, zeros, len(cube.places())))

        def score(compiled_net, state):
            best = 0
            for ones, zeros, size in masks:
                matched = (state & ones).bit_count() + (~state & zeros).bit_count()
                best = max(best, size and matched / size)
            return -best

        return score


class CheckerOutcomeProxy:
    """Wrapper distinguishing a ready outcome from a witness list."""

    __slots__ = ("outcome",)

    def __init__(self, outcome):
        self.outcome = outcome
