"""The random-walk checker: a counter-seeded falsifier with two engines.

Exhaustive exploration visits states breadth-first, so a bug 30 firings deep
may sit far beyond a feasible ``max_states`` bound.  A random walk goes
*deep* instead of *wide*: it fires one enabled transition at a time, testing
the bad-state predicate at every visited marking, and restarts when it runs
out of steps.  The walker can only ever answer ``False`` (with the fired
sequence as a ready-made counterexample trace) or ``None`` -- absence of a
bug on a few thousand random paths proves nothing -- which is exactly the
right shape for the falsification half of a portfolio.

Randomness is **counter-based** (:mod:`repro.verification.checkers
.walk_core`): every draw is a pure function of ``(seed, walk, step)``, so a
given seed replays the identical walk whether it runs alone or as one row
of a swarm, and campaign scenarios can sweep seeds the way the paper's E5
experiment sweeps stimulus.  Walks are *guided*: a configurable fraction of
the steps picks the successor that minimises the number of enabled
transitions (when hunting deadlocks -- corners of the state space) or
maximises satisfied bad-cube literals (when hunting Reach violations),
which in practice finds injected-hole deadlocks orders of magnitude faster
than uniform wandering.

Walks are additionally **counterexample-guided**: the checker keeps the
top-``restarts`` best-scoring *near-miss* states seen so far (with the
prefix trace that reached them) and restarts every other walk from one of
them instead of from the initial marking.  A walk that got close to a bad
cube -- or into a sparsely-enabled corner, for deadlock hunts -- thereby
becomes the launch pad of the next walk, which deepens falsification
coverage well beyond the per-walk step budget.

Two backends share these semantics (same RNG, same guidance ranks, same
restart pool -- all from :mod:`~repro.verification.checkers.walk_core`):

* ``scalar`` -- the pure-int walker below, one transition per step;
* ``batch`` -- the vectorised swarm of
  :mod:`~repro.verification.checkers.walk_batch`: thousands of walks as
  rows of one uint64 matrix, advanced one step per pass on the batch
  firing primitive.  Swarm witnesses are **replayed on the net** before
  being trusted, like SMT counterexamples.

The default ``backend="auto"`` prefers the swarm whenever the optional
NumPy extra is available and falls back to the scalar walker otherwise
(``REPRO_NO_NUMPY`` forces the fallback, as everywhere).

Determinism contract: the scalar path reproduces the same verdict *and the
same witness trace* for the same seed.  The swarm is deterministic per
``(seed, walks, swarm)``: each walk's RNG stream is width-independent, but
restart-pool contents fill in retirement order, so the configured swarm
width is part of the identity (campaign digests include the resolved
backend via :func:`resolve_walk_backend`).
"""

from repro.exceptions import (
    CompilationError,
    ConfigurationError,
    SafenessOverflowError,
)
from repro.petri.batch import (
    WordTables,
    compile_row_predicate,
    numpy_available,
)
from repro.petri.compiled import iter_bits
from repro.reach.cubes import to_cubes
from repro.reach.evaluator import compile_mask_predicate, marking_predicate
from repro.verification.checkers import walk_batch
from repro.verification.checkers.base import Checker, register_checker
from repro.verification.checkers.walk_core import (
    NearMissPool,
    cube_mask_table,
    cube_rank,
    fewest_enabled_rank,
    replay_witness,
    walk_draw,
)

#: The accepted ``backend`` options of the walk checker.
WALK_BACKENDS = ("auto", "batch", "scalar")

#: Sentinel: the swarm cannot run this query; use the scalar walker.
_SCALAR_FALLBACK = object()


def resolve_walk_backend(requested="auto"):
    """The walk backend *requested* resolves to on this host.

    ``"scalar"`` always resolves to itself; ``"auto"`` resolves to
    ``"batch"`` when the optional NumPy extra is available (and
    ``REPRO_NO_NUMPY`` is unset) and to ``"scalar"`` otherwise; a forced
    ``"batch"`` without NumPy resolves to ``"batch-unavailable"`` (the
    checker answers inconclusive).  Campaign digests fold this resolved
    value into walk/portfolio cache keys -- like the solver fingerprint,
    it keeps verdicts from being reused across an engine swap.
    """
    if requested not in WALK_BACKENDS:
        raise ConfigurationError(
            "unknown walk backend {!r} (known: {})".format(
                requested, ", ".join(WALK_BACKENDS)))
    if requested == "scalar":
        return "scalar"
    if numpy_available():
        return "batch"
    return "batch-unavailable" if requested == "batch" else "scalar"


@register_checker
class RandomWalkChecker(Checker):
    """Falsify queries with guided random walks (scalar or swarm backend)."""

    name = "walk"
    summary = ("counter-seeded guided random walks, vectorised swarms when "
               "NumPy is available; a fast falsifier, never proves")

    def __init__(self, context, walks=8, steps=256, seed=0xACE1,
                 guidance=0.5, dnf_limit=64, restarts=4, backend="auto",
                 swarm=1024):
        super().__init__(context)
        self.walks = int(walks)
        self.steps = int(steps)
        self.seed = int(seed)
        self.guidance = float(guidance)
        self.dnf_limit = int(dnf_limit)
        #: Size of the near-miss pool for counterexample-guided restarts
        #: (``0`` disables restarting: every walk starts at the initial
        #: marking, the pre-restart behaviour).
        self.restarts = int(restarts)
        #: Engine selection: see :func:`resolve_walk_backend`.
        self.backend = str(backend)
        if self.backend not in WALK_BACKENDS:
            raise ConfigurationError(
                "unknown walk backend {!r} (known: {})".format(
                    backend, ", ".join(WALK_BACKENDS)))
        #: Row width of the vectorised swarm (``min(walks, swarm)`` walks
        #: advance concurrently; retired rows are reseeded in place).
        self.swarm = int(swarm)
        #: Work counters of the most recent hunt (``backend``, ``walks``
        #: launched, ``steps`` committed, ``expanded`` candidate firings);
        #: bench material, never part of a verdict.
        self.last_hunt_stats = None
        self._tables = None

    # -- queries -------------------------------------------------------------

    def check_deadlock(self, query, max_witnesses=5):
        found = self._hunt("deadlock", max_witnesses, score_kind="fewest",
                           stop_in_deadlock=True)
        if found is None:
            return self._budget_outcome("deadlock")
        if isinstance(found, CheckerOutcomeProxy):
            return found.outcome
        return self.outcome(
            False, witnesses=found,
            details="random walk reached {} deadlocked state(s)".format(
                len(found)))

    def check_safeness(self, query, max_witnesses=5):
        """Walks detect a 1-safeness loss as a token-overflow firing."""
        if query.bound != 1:
            return self.outcome(
                None, details="random walks only detect 1-safeness "
                "violations (token overflow)")
        found = self._hunt("overflow", max_witnesses,
                           overflow_conclusive=True)
        if isinstance(found, CheckerOutcomeProxy):
            return found.outcome
        return self._budget_outcome("token overflow")

    def check_reach(self, query, max_witnesses=5):
        self.context.check_places(query.expression)
        compiled = self.context.compiled
        if compiled is None:
            return self._no_compiled_outcome()
        predicate = compile_mask_predicate(query.expression, compiled.mask_of)
        if predicate is None:
            return self.outcome(
                None, details="expression does not compile to a bitmask "
                "predicate; random-walk falsification unavailable")
        cubes = to_cubes(query.expression, max_cubes=self.dnf_limit)
        cube_masks = cube_mask_table(compiled.mask_of, cubes) if cubes else None
        found = self._hunt("reach", max_witnesses, predicate=predicate,
                           expression=query.expression, cube_masks=cube_masks,
                           score_kind="cube" if cube_masks else None)
        if found is None:
            return self._budget_outcome("bad state")
        if isinstance(found, CheckerOutcomeProxy):
            return found.outcome
        return self.outcome(
            False, witnesses=found,
            details="random walk reached {} bad state(s)".format(len(found)))

    # -- outcomes ------------------------------------------------------------

    def _budget_outcome(self, target):
        return self.outcome(
            None, details="no {} found within {} walk(s) of {} step(s); "
            "random walks cannot prove absence".format(
                target, self.walks, self.steps))

    def _no_compiled_outcome(self):
        return self.outcome(
            None, details="net has no bitmask representation; random-walk "
            "falsification unavailable")

    # -- backend dispatch ----------------------------------------------------

    def _hunt(self, kind, max_witnesses, predicate=None, expression=None,
              cube_masks=None, score_kind=None, stop_in_deadlock=False,
              overflow_conclusive=False):
        """Run the walk budget; return witnesses, a proxy, or ``None``.

        Routes to the vectorised swarm or the scalar walker per the
        resolved backend; both hunt with the same RNG, guidance ranks and
        restart-pool semantics (:mod:`~repro.verification.checkers
        .walk_core`), so a backend swap changes throughput, never the
        meaning of a conclusive verdict.
        """
        compiled = self.context.compiled
        if compiled is None:
            return CheckerOutcomeProxy(self._no_compiled_outcome())
        try:
            initial = compiled.encode(self.context.net.initial_marking())
        except CompilationError:
            return CheckerOutcomeProxy(self.outcome(
                None, details="initial marking has no bitmask "
                "representation; random walks unavailable"))
        backend = resolve_walk_backend(self.backend)
        if backend == "batch-unavailable":
            return CheckerOutcomeProxy(self.outcome(
                None, details="the batch walk backend needs the optional "
                "NumPy extra (and REPRO_NO_NUMPY unset); use "
                "backend='auto' or 'scalar' for the pure-int walker"))
        if backend == "batch":
            found = self._swarm_hunt(
                compiled, initial, kind, max_witnesses,
                expression=expression, cube_masks=cube_masks,
                score_kind=score_kind, stop_in_deadlock=stop_in_deadlock,
                overflow_conclusive=overflow_conclusive)
            if found is not _SCALAR_FALLBACK:
                return found
        return self._scalar_hunt(
            compiled, initial, kind, max_witnesses, predicate=predicate,
            cube_masks=cube_masks, score_kind=score_kind,
            stop_in_deadlock=stop_in_deadlock,
            overflow_conclusive=overflow_conclusive)

    # -- the vectorised swarm backend ----------------------------------------

    def _swarm_hunt(self, compiled, initial, kind, max_witnesses, expression,
                    cube_masks, score_kind, stop_in_deadlock,
                    overflow_conclusive):
        if self._tables is None:
            self._tables = WordTables(compiled)
        tables = self._tables
        row_predicate = None
        if kind == "reach":
            row_predicate = compile_row_predicate(expression,
                                                  tables.word_bit_of)
            if row_predicate is None:
                if self.backend == "batch":
                    return CheckerOutcomeProxy(self.outcome(
                        None, details="expression does not compile to a "
                        "row predicate; the batch walk backend cannot "
                        "hunt it (backend='auto' would fall back)"))
                return _SCALAR_FALLBACK
        result = walk_batch.swarm_hunt(
            tables, initial, walks=self.walks, steps=self.steps,
            swarm=self.swarm, seed=self.seed or 0xACE1,
            guidance=self.guidance, restarts=self.restarts,
            max_witnesses=max_witnesses, row_predicate=row_predicate,
            cube_masks=cube_masks, score_kind=score_kind,
            stop_in_deadlock=stop_in_deadlock,
            overflow_conclusive=overflow_conclusive)
        self.last_hunt_stats = {"backend": "batch", "walks": result.walks,
                                "steps": result.steps,
                                "expanded": result.expanded}
        names = compiled.transition_names
        if result.overflow is not None:
            return self._swarm_overflow_outcome(compiled, result.overflow)
        # Swarm traces are replayed on the net before being trusted -- the
        # same rule the SMT checkers apply to solver counterexamples.
        bad_marking = (marking_predicate(expression, net=self.context.net)
                       if kind == "reach" else None)
        validated = []
        for found in result.witnesses:
            trace = [names[index] for index in found["trace"]]
            witness = replay_witness(self.context.net, kind, trace,
                                     predicate=bad_marking)
            if witness is not None:
                validated.append(witness)
        return validated or None

    def _swarm_overflow_outcome(self, compiled, overflow):
        transition = compiled.transition_names[overflow["transition"]]
        place = compiled.place_names[overflow["place"]]
        trace = [compiled.transition_names[index]
                 for index in overflow["trace"]]
        witness = replay_witness(self.context.net, "overflow", trace,
                                 transition=transition)
        if witness is None:
            return CheckerOutcomeProxy(self.outcome(
                None, details="the swarm reported an overflow but its "
                "trace did not replay on the net; not trusting the "
                "verdict"))
        witness["place"] = place
        return CheckerOutcomeProxy(self.outcome(
            False, witnesses=[witness],
            details="random walk found a 1-safeness violation: "
            "firing {!r} overflows place {!r}".format(transition, place)))

    # -- the scalar backend --------------------------------------------------

    def _scalar_hunt(self, compiled, initial, kind, max_witnesses, predicate,
                     cube_masks, score_kind, stop_in_deadlock,
                     overflow_conclusive):
        seed = self.seed or 0xACE1
        guided_threshold = int(self.guidance * 256)
        names = compiled.transition_names
        witnesses = []
        # Restarted walks often re-find the same bad state; witnesses (and
        # the reported count) cover *distinct* states only.
        witnessed_states = set()
        steps_fired = 0

        def witness(state, trace):
            if state not in witnessed_states:
                witnessed_states.add(state)
                witnesses.append({"marking": compiled.decode(state),
                                  "trace": list(trace)})

        if score_kind == "fewest":
            score = fewest_enabled_rank
        elif score_kind == "cube":
            def score(compiled_net, state):
                return cube_rank(cube_masks, state)
        else:
            score = None

        # Counterexample-guided restarts: the shared near-miss pool, fed
        # with the best-ranked (rank, state, trace) of each finished walk.
        pool = NearMissPool(self.restarts)
        track_near_misses = self.restarts > 0 and score is not None

        for walk_index in range(self.walks):
            state = initial
            trace = []
            if len(pool) and walk_index % 2:
                # Every other walk launches from a stored near-miss prefix
                # instead of the initial marking (draw 0 of the walk's
                # counter stream, so restart coverage sweeps with the seed
                # like everything else).
                _, near_state, near_trace = pool.pick(
                    walk_draw(seed, walk_index, 0))
                if near_state not in witnessed_states:
                    state = near_state
                    trace = list(near_trace)
            best = None
            for step in range(self.steps):
                if predicate is not None and predicate(state):
                    witness(state, trace)
                    break
                enabled = compiled.enabled_mask(state)
                if not enabled:
                    if stop_in_deadlock:
                        witness(state, trace)
                    break
                if track_near_misses:
                    rank = score(compiled, state)
                    if best is None or rank < best[0]:
                        best = (rank, state, list(trace))
                draw = walk_draw(seed, walk_index, step + 1)
                try:
                    transition, state = self._step(
                        compiled, state, enabled, draw, score,
                        guided=(draw >> 8) & 0xFF < guided_threshold)
                except SafenessOverflowError as overflow:
                    if not overflow_conclusive:
                        break  # wrong property: end this walk, try another
                    overflow_witness = {"marking": compiled.decode(state),
                                        "trace": list(trace),
                                        "transition": overflow.transition,
                                        "place": overflow.place}
                    self.last_hunt_stats = {"backend": "scalar",
                                            "walks": walk_index + 1,
                                            "steps": steps_fired,
                                            "expanded": steps_fired}
                    return CheckerOutcomeProxy(self.outcome(
                        False, witnesses=[overflow_witness],
                        details="random walk found a 1-safeness violation: "
                        "firing {!r} overflows place {!r}".format(
                            overflow.transition, overflow.place)))
                steps_fired += 1
                trace.append(names[transition])
            if best is not None:
                pool.remember(*best)
            if len(witnesses) >= max_witnesses:
                break
        self.last_hunt_stats = {"backend": "scalar", "walks": self.walks,
                                "steps": steps_fired,
                                "expanded": steps_fired}
        return witnesses or None

    def _step(self, compiled, state, enabled, draw, score, guided):
        indices = list(iter_bits(enabled))
        if guided and score is not None and len(indices) > 1:
            best = None
            for index in indices:
                successor = compiled.fire(index, state)
                rank = score(compiled, successor)
                if best is None or rank < best[0]:
                    best = (rank, index, successor)
            return best[1], best[2]
        index = indices[draw % len(indices)]
        return index, compiled.fire(index, state)


class CheckerOutcomeProxy:
    """Wrapper distinguishing a ready outcome from a witness list."""

    __slots__ = ("outcome",)

    def __init__(self, outcome):
        self.outcome = outcome
