"""Primitives shared by the scalar and vectorised random-walk backends.

The walk checker runs on two engines: the pure-int scalar walker of
:mod:`repro.verification.checkers.walk` and the NumPy swarm of
:mod:`repro.verification.checkers.walk_batch`.  Both must hunt with the
*same* randomness, the *same* guidance scores and the *same* restart-pool
semantics, or the backends drift apart and differential testing loses its
teeth.  This module is the single home of those semantics:

* :func:`walk_draw` -- a **counter-based** RNG: the draw is a pure function
  of ``(seed, walk, step)``, so walk ``w`` sees the identical stream whether
  it runs alone on the scalar path or as one row of an 8k-row swarm.  (The
  old LFSR threaded one stream through all walks, so adding a walk -- or
  reordering them -- reshuffled every draw after it.)
* the guidance ranks (:func:`fewest_enabled_rank`, :func:`cube_rank` over a
  :func:`cube_mask_table`) -- exact integer/float arithmetic that the
  vectorised backend reproduces bit for bit in uint64/float64 columns.
* :class:`NearMissPool` -- the counterexample-guided restart pool (dedupe
  by state, evict the first worst entry only for a strictly better one).
* :func:`replay_witness` -- swarm traces are replayed on the *net* before
  being trusted, exactly like SMT counterexamples.

Everything here is pure-int Python: the scalar walker uses these functions
directly and the swarm engine mirrors them with array operations (the
differential tests in ``tests/test_walk_batch.py`` pin the two together).
"""

from repro.exceptions import ModelError

_MASK64 = (1 << 64) - 1

#: splitmix64 finaliser constants (public: the vectorised RNG re-uses them).
MIX_MULTIPLIER_A = 0xBF58476D1CE4E5B9
MIX_MULTIPLIER_B = 0x94D049BB133111EB
#: Odd stream-separation constants of :func:`walk_draw`.
DRAW_SEED_STRIDE = 0x9E3779B97F4A7C15
DRAW_WALK_STRIDE = 0xC2B2AE3D27D4EB4F
DRAW_STEP_STRIDE = 0xD6E8FEB86659FD93


def mix64(value):
    """The splitmix64 finaliser: a 64-bit avalanche of *value*.

    Every operation wraps at 64 bits, so a uint64 array version (see
    ``walk_batch.draw_rows``) produces identical words without masking.
    """
    value &= _MASK64
    value = ((value ^ (value >> 30)) * MIX_MULTIPLIER_A) & _MASK64
    value = ((value ^ (value >> 27)) * MIX_MULTIPLIER_B) & _MASK64
    return value ^ (value >> 31)


def walk_draw(seed, walk, step):
    """Draw number *step* of walk *walk* under *seed*: a 64-bit word.

    Stream convention: step ``0`` is the walk's restart-pool selection
    draw; steps ``1..N`` are its per-move draws (one per fired step).
    Being a pure function of the three counters, the stream of a walk is
    independent of how many other walks run, in what order, or on which
    backend -- the determinism contract of the swarm.
    """
    return mix64((seed * DRAW_SEED_STRIDE + walk * DRAW_WALK_STRIDE
                  + step * DRAW_STEP_STRIDE) & _MASK64)


# -- guidance ranks ----------------------------------------------------------


def fewest_enabled_rank(compiled, state):
    """Deadlock guidance: successors with fewer options rank better."""
    return compiled.enabled_mask(state).bit_count()


def cube_mask_table(mask_of, cubes):
    """Precompile DNF *cubes* into ``(ones, zeros, size)`` bitmask rows.

    *mask_of* maps a place name to its single-bit mask (``0`` for unknown
    places, which hold no token).  Both backends score against this one
    table: the scalar rank uses the int masks directly, the swarm splits
    them into uint64 words.
    """
    masks = []
    for cube in cubes:
        ones = 0
        for place in cube.true_places:
            ones |= mask_of(place)
        zeros = 0
        for place in cube.false_places:
            zeros |= mask_of(place)
        masks.append((ones, zeros, len(cube.places())))
    return tuple(masks)


def cube_rank(masks, state):
    """Reach guidance: minus the best matched-literal fraction over *masks*.

    Lower is better (rank ``-1.0`` means some cube fully matched, i.e. the
    state is bad).  The division is a single float64 operation, so the
    vectorised backend reproduces the exact rank values.
    """
    best = 0
    for ones, zeros, size in masks:
        matched = (state & ones).bit_count() + (~state & zeros).bit_count()
        best = max(best, size and matched / size)
    return -best


# -- the counterexample-guided restart pool ----------------------------------


class NearMissPool:
    """The top-*capacity* best-ranked near-miss states seen so far.

    Entries are ``(rank, state, trace)``; lower ranks are better.  The pool
    deduplicates by state, and a full pool evicts its **first** worst entry
    only when the newcomer ranks **strictly** better -- ties keep the
    incumbent.  Both walk backends feed and draw from this one class, so
    restart semantics cannot drift between them.
    """

    __slots__ = ("capacity", "_entries", "_states")

    def __init__(self, capacity):
        self.capacity = int(capacity)
        self._entries = []
        self._states = set()

    def __len__(self):
        return len(self._entries)

    def remember(self, rank, state, trace):
        if self.capacity <= 0 or state in self._states:
            return
        if len(self._entries) >= self.capacity:
            entries = self._entries
            worst = max(range(len(entries)), key=lambda i: entries[i][0])
            if entries[worst][0] <= rank:
                return
            self._states.discard(entries[worst][1])
            del entries[worst]
        self._states.add(state)
        self._entries.append((rank, state, trace))

    def pick(self, draw):
        """The entry selected by *draw* (any 64-bit word; modulo inside)."""
        return self._entries[draw % len(self._entries)]


# -- witness replay ----------------------------------------------------------


def replay_trace(net, trace):
    """Fire *trace* from the initial marking; the final marking or ``None``.

    ``None`` means the trace does not replay on the net (a disabled
    transition or a capacity overflow mid-way): whatever engine produced it
    modelled the net wrong, and its witness must not be trusted.
    """
    marking = net.initial_marking()
    try:
        for transition in trace:
            marking = net.fire(transition, marking)
    except ModelError:
        return None
    return marking


def replay_witness(net, kind, trace, predicate=None, transition=None):
    """Validate a walk witness by replay; a witness dict or ``None``.

    *kind* selects the obligation of the replayed final marking:
    ``"deadlock"`` -- no transition is enabled; ``"reach"`` -- *predicate*
    (a marking predicate) holds; ``"overflow"`` -- firing *transition* next
    puts more than one token somewhere (or a declared capacity rejects
    it).  Mirrors the replay-before-trust rule of the SMT checkers: a
    conclusive verdict may only rest on a trace the net itself confirms.
    """
    marking = replay_trace(net, trace)
    if marking is None:
        return None
    if kind == "deadlock":
        if net.enabled_transitions(marking):
            return None
    elif kind == "reach":
        if predicate is None or not predicate(marking):
            return None
    elif kind == "overflow":
        try:
            if not net.is_enabled(transition, marking):
                return None
            successor = net.fire(transition, marking)
        except ModelError:
            pass  # a declared place capacity rejected the extra token
        else:
            if all(count <= 1 for _, count in successor.items()):
                return None
    else:
        return None
    witness = {"marking": marking, "trace": list(trace)}
    if kind == "overflow":
        witness["transition"] = transition
    return witness
