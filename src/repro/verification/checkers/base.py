"""The pluggable checker abstraction of the verification stack.

A **checker** is a strategy for answering property *queries* about the
Petri-net translation of a DFS model.  Queries describe what to decide
(``reach``: is some bad state reachable?  ``deadlock``: is some reachable
state stuck?  ``safeness``: does any place overflow a bound?
``persistence``: can one event disable another?); checkers decide them with
different trade-offs:

* :class:`~repro.verification.checkers.exhaustive.ExhaustiveChecker` --
  explicit/bitmask state-space exploration; conclusive both ways up to
  ``max_states``, inconclusive beyond it;
* :class:`~repro.verification.checkers.inductive.InductiveChecker` --
  place-invariant and backward-induction reasoning over the compiled
  transition relation; proves "holds" (and finds some violations) with no
  state bound at all;
* :class:`~repro.verification.checkers.walk.RandomWalkChecker` --
  LFSR-seeded guided walks; a fast falsifier far beyond any truncation
  horizon, never concludes "holds";
* :class:`~repro.verification.checkers.portfolio.PortfolioChecker` -- races
  the above and returns the first conclusive verdict.

All checkers attached to one :class:`CheckerContext` share the translation,
its compiled bitmask form, the (lazily built) reachability graph and the
computed place invariants, so a portfolio pays for each artefact at most
once.

Every answer is a :class:`CheckerOutcome` whose ``holds`` follows the
three-valued convention used across the repo: ``True`` (property holds),
``False`` (violated, with witnesses), ``None`` (this checker cannot
decide).  A conclusive outcome from *any* checker is a definitive verdict;
checkers must never return a conclusive answer they cannot justify.
"""

from repro.exceptions import ReachEvaluationError, VerificationError
from repro.petri.compiled import CompiledNet
from repro.petri.invariants import (
    InvariantBudgetExceeded,
    compute_semiflows_cached,
)
from repro.petri.reachability import build_reachability_graph
from repro.reach.ast import ReachExpression
from repro.reach.evaluator import check_places as evaluator_check_places
from repro.reach.parser import parse

_UNSET = object()

#: Registry of checker implementations: name -> class.
CHECKERS = {}


def register_checker(cls):
    """Class decorator: register a :class:`Checker` subclass by its name."""
    CHECKERS[cls.name] = cls
    return cls


def create_checker(name, context, options=None):
    """Instantiate the checker registered under *name* on *context*."""
    try:
        cls = CHECKERS[name]
    except KeyError:
        raise VerificationError(
            "unknown checker {!r} (known: {})".format(
                name, ", ".join(sorted(CHECKERS))))
    return cls(context, **(options or {}))


# -- queries -----------------------------------------------------------------


class Query:
    """Base class of property queries; ``kind`` selects the handler."""

    kind = "abstract"


class ReachQuery(Query):
    """Is some reachable marking a *bad* state of the Reach expression?"""

    kind = "reach"

    def __init__(self, expression, description="reach property"):
        if isinstance(expression, str):
            expression = parse(expression)
        if not isinstance(expression, ReachExpression):
            raise ReachEvaluationError(
                "expected a Reach expression or string, found {!r}".format(
                    type(expression)))
        self.expression = expression
        self.description = description


class DeadlockQuery(Query):
    """Is some reachable marking completely stuck?"""

    kind = "deadlock"


class SafenessQuery(Query):
    """Does some reachable marking exceed *bound* tokens in a place?"""

    kind = "safeness"

    def __init__(self, bound=1):
        self.bound = int(bound)


class PersistenceQuery(Query):
    """Can firing one transition disable another (a hazard)?"""

    kind = "persistence"

    def __init__(self, allow_conflicts=True):
        self.allow_conflicts = allow_conflicts


# -- outcomes ----------------------------------------------------------------


class CheckerOutcome:
    """The answer of one checker to one query.

    ``holds`` is three-valued (``True`` / ``False`` / ``None``); witnesses
    follow the repo-wide shape (dicts with ``marking`` and usually
    ``trace``); ``method`` names the checker that produced the verdict,
    which flows into results, campaign records and reports.
    """

    def __init__(self, holds, witnesses=None, details="", method=None):
        self.holds = holds
        self.witnesses = witnesses or []
        self.details = details
        self.method = method

    @property
    def conclusive(self):
        return self.holds is not None

    def __repr__(self):
        status = {True: "holds", False: "violated", None: "inconclusive"}[self.holds]
        return "CheckerOutcome({}, method={!r}, witnesses={})".format(
            status, self.method, len(self.witnesses))


# -- shared context ----------------------------------------------------------


class CheckerContext:
    """Artefacts shared by every checker working on one net.

    The reachability graph, the compiled bitmask net and the place
    invariants are each built on first use and cached, so e.g. a portfolio
    run never explores the state space twice, and a purely inductive run
    never explores it at all.
    """

    def __init__(self, net, max_states=200000, engine="auto", workers=0,
                 semiflow_cache=None, spill_dir=None, spill_bytes=None,
                 resume=None):
        self.net = net
        self.max_states = max_states
        self.engine = engine
        #: Worker processes for the exploration of the state space (0/1 =
        #: sequential).  The sharded graph is bit-identical to the
        #: sequential one, so verdicts are unaffected by this knob.
        self.workers = int(workers or 0)
        #: Out-of-core knobs (see :mod:`repro.petri.storage`): like
        #: *workers*, spilling changes where the graph lives, never what
        #: it contains, so verdicts are unaffected.
        self.spill_dir = spill_dir
        self.spill_bytes = spill_bytes
        #: Optional checkpoint directory making the exploration crash-safe
        #: (per-level manifests; a leftover checkpoint is resumed, with a
        #: graph bit-identical to an uninterrupted run -- see
        #: :func:`~repro.petri.reachability.build_reachability_graph`).
        self.resume = resume
        #: Optional :class:`~repro.petri.invariants.SemiflowCache` (or cache
        #: directory) memoising the place-invariant derivation on disk.
        self.semiflow_cache = semiflow_cache
        self._graph = None
        self._compiled = _UNSET
        self._semiflows = _UNSET

    @property
    def graph(self):
        """The reachability graph (built on first access)."""
        if self._graph is None:
            self._graph = build_reachability_graph(
                self.net, max_states=self.max_states, engine=self.engine,
                workers=self.workers, spill_dir=self.spill_dir,
                spill_bytes=self.spill_bytes, resume=self.resume)
        return self._graph

    @property
    def graph_built(self):
        return self._graph is not None

    @property
    def compiled(self):
        """The compiled bitmask net, or ``None`` when it cannot be compiled."""
        if self._compiled is _UNSET:
            self._compiled = CompiledNet.try_compile(self.net)
        return self._compiled

    @property
    def semiflows(self):
        """Place invariants of the net (empty when the budget was exceeded).

        Memoised in-process always, and on disk when the context carries a
        semiflow cache -- warm hits are bit-identical to a cold derivation,
        including a remembered budget blow-up.
        """
        if self._semiflows is _UNSET:
            try:
                self._semiflows = compute_semiflows_cached(
                    self.net, cache=self.semiflow_cache)
            except InvariantBudgetExceeded:
                self._semiflows = []
        return self._semiflows

    def check_places(self, expression):
        """Validate that every place of *expression* exists in the net."""
        evaluator_check_places(expression, self.net)

    @property
    def state_count(self):
        """States explored so far (``0`` when no graph was built)."""
        return len(self._graph) if self._graph is not None else 0

    @property
    def truncated(self):
        return bool(self._graph is not None and self._graph.truncated)

    @property
    def exploration(self):
        """Structured exploration stats, or ``None`` (no graph / old engine).

        The columnar engines attach per-phase timings and spill counters
        to the graph (``graph.exploration_stats``); this surfaces them to
        summaries, campaign payloads and the service ``/stats``.
        """
        if self._graph is None:
            return None
        return getattr(self._graph, "exploration_stats", None)


# -- checker base ------------------------------------------------------------


class Checker:
    """Base class of all verification checkers.

    Subclasses set :attr:`name`, accept their tuning knobs as keyword
    arguments, and implement ``check_<kind>(query, max_witnesses)`` handlers
    for the query kinds they support; unknown kinds fall back to an
    inconclusive "unsupported" outcome, which is what lets a portfolio mix
    specialists without special cases.
    """

    name = "abstract"
    #: One-line description, surfaced by the CLI ``--checker`` help (which
    #: is generated from the registry, never hand-maintained).
    summary = ""
    #: True when verdicts depend on an external SMT solver.  Campaign
    #: cache keys fold the solver fingerprint in for such checkers, so a
    #: solver upgrade invalidates cached verdicts.
    uses_solver = False
    #: True when the checker is useless without the solver binary -- the
    #: CLI refuses to select it (a clear error, not a silent inconclusive).
    requires_solver = False

    def __init__(self, context):
        self.context = context

    def check(self, query, max_witnesses=5):
        """Answer *query*; unsupported kinds are inconclusive, not errors."""
        handler = getattr(self, "check_" + query.kind, None)
        if handler is None:
            return self.unsupported(query)
        return handler(query, max_witnesses=max_witnesses)

    def unsupported(self, query):
        return CheckerOutcome(
            None, method=self.name,
            details="the {} checker does not support {} queries".format(
                self.name, query.kind))

    def outcome(self, holds, witnesses=None, details=""):
        return CheckerOutcome(holds, witnesses=witnesses, details=details,
                              method=self.name)

    def __repr__(self):
        return "{}()".format(type(self).__name__)
