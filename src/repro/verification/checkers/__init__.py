"""Pluggable verification checkers.

The :class:`~repro.verification.verifier.Verifier` used to be hard-wired to
exhaustive state-space exploration; this package turns the verdict engine
into a strategy.  See :mod:`repro.verification.checkers.base` for the
abstraction and the individual modules for the engines:

========== ===================================================== ==========
name       strategy                                              concludes
========== ===================================================== ==========
exhaustive explicit/bitmask exploration up to ``max_states``     both ways
inductive  place invariants + backward induction on the compiled holds (and
           transition relation, no state bound                   some bugs)
walk       LFSR-seeded guided random walks                       violations
bmc        SMT bounded model checking (needs z3)                 violations
kinduction SMT k-induction, simple-path strengthened (needs z3)  both ways
ic3        SMT IC3/PDR with invariant certificates (needs z3)    both ways
portfolio  race of the above, first conclusive verdict wins      both ways
========== ===================================================== ==========

The three SMT rows are optional in the same way NumPy is: without a z3
binary on ``PATH`` (or with ``REPRO_NO_Z3`` set) they answer inconclusive
with a message naming the binary, and the rest of the portfolio carries on.
"""

from repro.verification.checkers.base import (
    CHECKERS,
    Checker,
    CheckerContext,
    CheckerOutcome,
    DeadlockQuery,
    PersistenceQuery,
    Query,
    ReachQuery,
    SafenessQuery,
    create_checker,
    register_checker,
)
from repro.verification.checkers.exhaustive import ExhaustiveChecker
from repro.verification.checkers.inductive import InductiveChecker
from repro.verification.checkers.portfolio import DEFAULT_ORDER, PortfolioChecker
from repro.verification.checkers.smt import (
    BmcChecker,
    Ic3Checker,
    KInductionChecker,
)
from repro.verification.checkers.walk import RandomWalkChecker

__all__ = [
    "CHECKERS",
    "BmcChecker",
    "Checker",
    "CheckerContext",
    "CheckerOutcome",
    "DEFAULT_ORDER",
    "DeadlockQuery",
    "ExhaustiveChecker",
    "Ic3Checker",
    "InductiveChecker",
    "KInductionChecker",
    "PersistenceQuery",
    "PortfolioChecker",
    "Query",
    "RandomWalkChecker",
    "ReachQuery",
    "SafenessQuery",
    "create_checker",
    "register_checker",
]
