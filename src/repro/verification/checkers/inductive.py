"""The inductive checker: proofs with no state bound.

Exhaustive exploration answers "is a bad state reachable?" by enumerating
states until ``max_states`` and shrugging beyond it.  This checker answers
the same question *structurally*, in two stages that never enumerate the
state space at all:

1. **Place-invariant refutation.**  The semiflows of
   :mod:`repro.petri.invariants` give linear facts ``y . M = y . M0`` true
   in every reachable marking.  A bad-state cube that contradicts one of
   them -- e.g. both ``Mt_x_1`` and ``Mf_x_1`` marked against the dynamic
   -register invariant ``Mt_1 + Mf_1 + M_0 = 1`` -- is unreachable, no
   matter how large the state space is.  This is how token-value exclusion
   is proved on pipelines whose state spaces dwarf any exploration bound.

2. **Backward induction over the compiled transition relation.**  Cubes the
   invariants alone cannot refute are regressed: the exact pre-image of a
   cube under a transition of the compiled bitmask net is again a cube, so
   the set of states that can reach a bad state within ``k`` steps is a
   growing union of cubes.  If the union closes (every new pre-image is
   invariant-infeasible or subsumed) without ever containing the initial
   marking, no firing sequence of any length reaches a bad state --
   equivalently, the good-state set was shown inductive after ``k``
   strengthening rounds.  If a cube captures the initial marking, the
   parent chain is replayed forward into a concrete counterexample trace,
   so the checker can also *falsify*.  The regression runs on the 0/1 state
   space of the compiled net, so its "holds" verdicts are only issued once
   the invariants certify 1-safety (always the case for DFS translations,
   where every variable is a complementary place pair).

3. **Siphon/trap analysis for deadlock-freedom.**  Deadlock-as-a-cube
   explodes (one cube per transition-disabling combination), so deadlock
   queries take the structural route of
   :func:`repro.petri.invariants.siphon_trap_certificate` instead: when
   every minimal siphon of an ordinary net holds a permanent token reserve
   (an initially marked trap, or a positive semiflow supported inside the
   siphon), no reachable marking is dead -- an unbounded proof with no
   solver and no exploration.  One-sided: a siphon without a reserve means
   inconclusive, never "deadlocks".

Budgets (``max_cubes`` processed cubes, optional ``max_depth`` induction
depth, ``max_siphon_nodes`` enumeration nodes) turn a blow-up into an
inconclusive verdict instead of a hang.  Persistence queries stay out of
scope: they need successor structure -- the exhaustive checker covers
those.
"""

from collections import deque

from repro.exceptions import CompilationError
from repro.petri.invariants import (
    place_bounds,
    proves_bound,
    siphon_trap_certificate,
)
from repro.reach.cubes import to_cubes
from repro.verification.checkers.base import Checker, register_checker


class _MaskInvariant:
    """A semiflow lowered onto the bitmask representation of one net."""

    __slots__ = ("terms", "value", "upper_total")

    def __init__(self, semiflow, place_bit, bounds):
        self.terms = tuple(
            (place_bit[place], weight, weight * bounds[place])
            for place, weight in sorted(semiflow.weights.items()))
        self.value = semiflow.value
        self.upper_total = sum(upper for _, _, upper in self.terms)

    def feasible(self, ones, zeros):
        """Can any marking of the cube satisfy this invariant?"""
        lower = 0
        blocked = 0
        for bit, weight, upper in self.terms:
            if ones & bit:
                lower += weight
            if zeros & bit:
                blocked += upper
        return lower <= self.value <= self.upper_total - blocked


@register_checker
class InductiveChecker(Checker):
    """Prove (or refute) reach and safeness queries without exploring."""

    name = "inductive"
    summary = ("place invariants, siphon/trap analysis and backward "
               "induction; proves with no state bound")

    def __init__(self, context, max_cubes=4096, max_depth=None, dnf_limit=256,
                 max_work=2000000, max_siphon_nodes=100000):
        super().__init__(context)
        self.max_cubes = int(max_cubes)
        self.max_depth = max_depth if max_depth is None else int(max_depth)
        self.dnf_limit = int(dnf_limit)
        # Cap on subsumption comparisons: the quadratic part of the search.
        # Bounds the wall-clock cost of an eventual "inconclusive (budget)"
        # answer, which matters when a portfolio runs this checker first.
        self.max_work = int(max_work)
        self.max_siphon_nodes = int(max_siphon_nodes)

    # -- deadlock ------------------------------------------------------------

    def check_deadlock(self, query, max_witnesses=5):
        net = self.context.net
        initial = net.initial_marking()
        if not net.enabled_transitions(initial):
            # Not a proof obligation: the initial marking itself is dead.
            return self.outcome(
                False, witnesses=[{"marking": initial, "trace": []}],
                details="the initial marking has no enabled transition")
        certificate = siphon_trap_certificate(
            net, semiflows=self.context.semiflows,
            max_nodes=self.max_siphon_nodes)
        if certificate["proved"]:
            return self.outcome(True, details=certificate["reason"])
        return self.outcome(
            None, details="siphon/trap analysis is inconclusive: "
            + certificate["reason"])

    # -- safeness ------------------------------------------------------------

    def check_safeness(self, query, max_witnesses=5):
        semiflows = self.context.semiflows
        places = sorted(self.context.net.places)
        if semiflows and proves_bound(semiflows, places, bound=query.bound):
            return self.outcome(
                True, details="{} place invariant(s) bound every place by "
                "{}".format(len(semiflows), query.bound))
        return self.outcome(
            None, details="place invariants do not bound every place by {}; "
            "inductive safeness proof unavailable".format(query.bound))

    # -- reach ---------------------------------------------------------------

    def check_reach(self, query, max_witnesses=5):
        self.context.check_places(query.expression)
        semiflows = self.context.semiflows
        # All cube reasoning below -- the DNF normalisation's token-count
        # resolution, the regression over 0/1 bitmask states -- assumes the
        # net is 1-safe.  That assumption must be *certified* by the
        # invariants before any conclusive verdict is issued, otherwise a
        # reachable multi-token marking could satisfy the predicate while
        # the cubes say "unreachable" (a conclusive contradiction with the
        # exhaustive engine).  DFS translations always certify.
        if not semiflows or not proves_bound(
                semiflows, sorted(self.context.net.places), bound=1):
            return self.outcome(
                None, details="place invariants do not certify 1-safety; "
                "inductive cube reasoning unavailable")
        cubes = to_cubes(query.expression, max_cubes=self.dnf_limit)
        if cubes is None:
            return self.outcome(
                None, details="expression does not normalise into literal "
                "cubes; inductive reasoning unavailable")
        if not cubes:
            return self.outcome(
                True, details="bad-state predicate is unsatisfiable on "
                "1-safe markings")
        bounds = place_bounds(semiflows)
        survivors = [cube for cube in cubes
                     if not self._refuted(cube, semiflows, bounds)]
        if not survivors:
            return self.outcome(
                True, details="all {} bad-state cube(s) refuted by {} place "
                "invariant(s)".format(len(cubes), len(semiflows)))
        return self._backward_induction(survivors, len(cubes), semiflows,
                                        bounds, max_witnesses)

    @staticmethod
    def _refuted(cube, semiflows, bounds):
        """Is *cube* infeasible under some place invariant?

        Sound without any safeness assumption: the lower bound only uses
        "marked means at least one token", and the upper bound only uses
        token limits the invariants themselves imply.
        """
        for semiflow in semiflows:
            lower = sum(weight for place, weight in semiflow.weights.items()
                        if place in cube.true_places)
            if lower > semiflow.value:
                return True
            upper = 0
            unbounded = False
            for place, weight in semiflow.weights.items():
                if place in cube.false_places:
                    continue
                bound = bounds.get(place)
                if bound is None:
                    unbounded = True
                    break
                upper += weight * bound
            if not unbounded and upper < semiflow.value:
                return True
        return False

    # -- backward induction ---------------------------------------------------

    def _backward_induction(self, cubes, total_cubes, semiflows, bounds,
                            max_witnesses):
        compiled = self.context.compiled
        if compiled is None:
            return self.outcome(
                None, details="net has no bitmask representation; backward "
                "induction unavailable")
        try:
            initial = compiled.encode(self.context.net.initial_marking())
        except CompilationError:
            return self.outcome(
                None, details="initial marking has no bitmask "
                "representation; backward induction unavailable")
        # The caller (check_reach) has already certified 1-safety through
        # the invariants, so the 0/1 regression covers the reachable space.
        mask_invariants = [_MaskInvariant(semiflow, compiled.place_bit, bounds)
                           for semiflow in semiflows]

        consume, produce, need = compiled.consume, compiled.produce, compiled.need
        transition_count = len(compiled.transition_names)
        # nodes: (ones, zeros, transition index or None, parent index, depth)
        nodes = []
        exact = set()
        # Subsumption scan bucketed by literal count: a subsuming (more
        # general) cube has a subset of the literals, so only buckets of
        # equal-or-smaller size can discard a candidate.
        seen_by_size = {}
        queue = deque()
        violations = []
        work = [0]  # subsumption comparisons spent (mutable for the closure)

        def admit(ones, zeros, transition, parent, depth):
            """Record a feasible, unsubsumed cube; return a hit node index."""
            if ones & zeros or (ones, zeros) in exact:
                return None
            for invariant in mask_invariants:
                if not invariant.feasible(ones, zeros):
                    return None
            size = (ones | zeros).bit_count()
            for bucket_size in sorted(seen_by_size):
                if bucket_size > size:
                    break
                bucket = seen_by_size[bucket_size]
                work[0] += len(bucket)
                for seen_ones, seen_zeros in bucket:
                    if (seen_ones & ones) == seen_ones and (seen_zeros & zeros) == seen_zeros:
                        return None
            index = len(nodes)
            nodes.append((ones, zeros, transition, parent, depth))
            exact.add((ones, zeros))
            seen_by_size.setdefault(size, []).append((ones, zeros))
            queue.append(index)
            if (initial & ones) == ones and not (initial & zeros):
                return index
            return None

        for cube in cubes:
            ones = sum(compiled.place_bit[p] for p in cube.true_places)
            zeros = sum(compiled.place_bit[p] for p in cube.false_places)
            hit = admit(ones, zeros, None, None, 0)
            if hit is not None:
                violations.append(hit)

        depth_reached = 0
        processed = 0
        while queue and not violations:
            index = queue.popleft()
            ones, zeros, _, _, depth = nodes[index]
            if self.max_depth is not None and depth >= self.max_depth:
                return self.outcome(
                    None, details="no inductive proof within depth {} "
                    "({} cube(s) processed)".format(self.max_depth, processed))
            processed += 1
            depth_reached = max(depth_reached, depth)
            if processed > self.max_cubes:
                return self.outcome(
                    None, details="backward induction exceeded its {}-cube "
                    "budget at depth {}".format(self.max_cubes, depth))
            for transition in range(transition_count):
                if work[0] > self.max_work:
                    return self.outcome(
                        None, details="backward induction exceeded its "
                        "subsumption-work budget after {} cube(s) at depth "
                        "{}".format(processed, depth))
                p, c = produce[transition], consume[transition]
                if p & zeros:
                    continue  # firing marks a place the cube needs empty
                if ones & c & ~p:
                    continue  # firing empties a place the cube needs marked
                pre_ones = need[transition] | (ones & ~p)
                pre_zeros = (p & ~c) | (zeros & ~c)
                hit = admit(pre_ones, pre_zeros, transition, index, depth + 1)
                if hit is not None:
                    violations.append(hit)
                    break

        if violations:
            witnesses = [self._witness(compiled, initial, nodes, hit)
                         for hit in violations[:max_witnesses]]
            return self.outcome(
                False, witnesses=witnesses,
                details="backward induction reached the initial marking: bad "
                "state reachable in {} step(s)".format(
                    len(witnesses[0]["trace"])))
        return self.outcome(
            True, details="backward induction closed after {} cube(s) at "
            "depth {}: {} of {} bad cube(s) regressed to nothing, the rest "
            "refuted by {} place invariant(s)".format(
                processed, depth_reached, len(cubes), total_cubes,
                len(semiflows)))

    @staticmethod
    def _witness(compiled, initial, nodes, hit):
        """Replay a cube chain forward into a concrete counterexample."""
        state = initial
        trace = []
        index = hit
        while True:
            _, _, transition, parent, _ = nodes[index]
            if transition is None:
                break
            state = compiled.fire(transition, state)
            trace.append(compiled.transition_names[transition])
            index = parent
        return {"marking": compiled.decode(state), "trace": trace}
