"""The exhaustive checker: explicit state-space exploration.

This is the pre-refactor verification path extracted behind the
:class:`~repro.verification.checkers.base.Checker` interface: build the
reachability graph (compiled bitmask engine with explicit fallback, per the
context's ``engine`` setting) and decide every query by scanning it.  Within
``max_states`` it is conclusive in both directions and supports every query
kind -- it is the only checker that can decide persistence, which needs the
successor structure, not just individual markings.  Beyond the bound it
degrades to ``None`` (inconclusive), which is exactly the gap the inductive
and random-walk checkers exist to fill.
"""

from repro.petri.properties import (
    check_boundedness,
    check_deadlock,
    check_persistence,
)
from repro.reach.evaluator import find_witnesses
from repro.verification.checkers.base import Checker, register_checker


@register_checker
class ExhaustiveChecker(Checker):
    """Decide queries by exhaustive exploration of the state space."""

    name = "exhaustive"
    summary = ("explicit/bitmask state-space exploration; conclusive both "
               "ways up to max-states")

    def _from_report(self, report):
        return self.outcome(report.holds, witnesses=report.witnesses,
                            details=report.details)

    def check_reach(self, query, max_witnesses=5):
        self.context.check_places(query.expression)
        graph = self.context.graph
        witnesses = find_witnesses(query.expression, graph,
                                   max_witnesses=max_witnesses)
        holds = not witnesses
        if holds and graph.truncated:
            holds = None
        details = ("no reachable bad state" if holds
                   else "{} reachable bad state(s)".format(len(witnesses))
                   if holds is False else "inconclusive (truncated state space)")
        return self.outcome(holds, witnesses=witnesses, details=details)

    def check_deadlock(self, query, max_witnesses=5):
        report = check_deadlock(self.context.graph, max_witnesses=max_witnesses)
        return self._from_report(report)

    def check_safeness(self, query, max_witnesses=5):
        report = check_boundedness(self.context.graph, bound=query.bound,
                                   max_witnesses=max_witnesses)
        return self._from_report(report)

    def check_persistence(self, query, max_witnesses=5):
        report = check_persistence(self.context.graph,
                                   allow_conflicts=query.allow_conflicts,
                                   max_witnesses=max_witnesses)
        return self._from_report(report)
