"""DFS-specific property constructors.

These build Reach expressions (over the places of the translated Petri net)
for the properties the paper highlights:

* **control-token mismatch** -- a node guarded by several control registers
  observes both a True and a False token at the same time; the node is then
  disabled, which may lead to a deadlock (Section II-B);
* **variable consistency** -- every state variable of the translation must
  have exactly one of its complementary places marked (a sanity check on the
  translation itself).
"""

from repro.dfs.semantics import place_name
from repro.reach.ast import And, Marked, conjunction, disjunction


def control_mismatch_expression(dfs, node_name=None):
    """Reach expression for a control-token mismatch.

    When *node_name* is given the expression covers that node only; otherwise
    it is the disjunction over every node guarded by two or more control
    registers.  Returns ``None`` when no node can possibly mismatch.
    """
    if node_name is not None:
        candidates = [node_name]
    else:
        candidates = [
            name for name in sorted(dfs.nodes)
            if dfs.node(name).is_register and len(dfs.controls_of(name)) >= 2
        ]
    terms = []
    for name in candidates:
        controls = sorted(dfs.controls_of(name))
        if len(controls) < 2:
            continue
        true_seen = disjunction([Marked(place_name("Mt", c, 1)) for c in controls])
        false_seen = disjunction([Marked(place_name("Mf", c, 1)) for c in controls])
        terms.append(And(true_seen, false_seen))
    if not terms:
        return None
    return disjunction(terms)


def value_exclusion_expression(dfs, node_name=None):
    """Reach expression for a token-value exclusion violation.

    A dynamic register must never hold a True and a False token at once;
    the bad states are those where both ``Mt`` and ``Mf`` of some dynamic
    register are marked.  When *node_name* is given the expression covers
    that register only; otherwise it is the disjunction over every dynamic
    register.  Returns ``None`` when the model has no dynamic register.
    """
    if node_name is not None:
        candidates = [node_name]
    else:
        candidates = [name for name in sorted(dfs.nodes)
                      if dfs.node(name).is_register and dfs.node(name).is_dynamic]
    terms = [
        And(Marked(place_name("Mt", name, 1)), Marked(place_name("Mf", name, 1)))
        for name in candidates
    ]
    if not terms:
        return None
    return disjunction(terms)


def variable_consistency_pairs(dfs):
    """Return the list of complementary place pairs of the translation.

    Every pair ``(x_0, x_1)`` must satisfy "exactly one marked" in all
    reachable states.
    """
    pairs = []
    for name in sorted(dfs.nodes):
        node = dfs.node(name)
        if node.node_type.value == "logic":
            kinds = ("C",)
        elif node.is_dynamic:
            kinds = ("M", "Mt", "Mf")
        else:
            kinds = ("M",)
        for kind in kinds:
            pairs.append((place_name(kind, name, 0), place_name(kind, name, 1)))
    return pairs


def consistency_violation_expression(dfs):
    """Reach expression: some complementary pair is both-marked or both-empty."""
    terms = []
    for zero, one in variable_consistency_pairs(dfs):
        both = And(Marked(zero), Marked(one))
        neither = And(~Marked(zero), ~Marked(one))
        terms.append(both | neither)
    return disjunction(terms)


def all_registers_empty_expression(dfs):
    """Reach expression: no register of the model holds a token."""
    return conjunction([
        ~Marked(place_name("M", name, 1)) for name in dfs.register_nodes
    ])
