"""The scheduling core shared by batch campaigns and the serving stack.

:class:`CampaignScheduler` owns everything that used to live inline in
:func:`repro.campaign.runner.run_campaign` -- the supervised worker pool
(per-job timeouts, crash containment), the verdict cache, and the mapping
from raw :class:`~repro.parallel.supervisor.TaskOutcome` records to
:class:`CampaignResult` -- but as a **long-running incremental** object:
jobs are submitted one at a time (with priorities) and each submission
returns a :class:`JobTicket` that can be polled, waited on, and streamed
for per-property progress events.  ``run_campaign`` is now a thin batch
front over this core; the verification service daemon
(:mod:`repro.service`) is the other front.

Two serving features live here rather than in the HTTP layer because they
are scheduling concerns, not transport concerns:

* **Per-tenant cache namespaces** -- :meth:`CampaignScheduler.cache_for`
  derives one isolated :class:`~repro.campaign.cache.ResultCache` namespace
  per tenant (``tenant=None`` keeps the root directory, preserving CLI
  behaviour), so tenants can never observe each other's verdicts.
* **Single-flight coalescing** -- with ``single_flight=True`` the scheduler
  computes each job's content-addressed cache key *at submission time*
  (canonical net fingerprint + options digest), answers warm keys
  synchronously from the cache, and coalesces concurrent submissions of
  one cold key into a single pool execution: the first submitter leads,
  every concurrent duplicate subscribes to the leader's flight and is
  answered by its result (marked ``cache="coalesced"``).  Batch campaigns
  keep ``single_flight=False`` so model construction stays in the workers
  (a hanging factory must hit the per-job deadline, not the submitter).
"""

import os
import queue
import threading
import time
import traceback
import uuid

from repro.campaign.cache import ResultCache, net_fingerprint, options_digest
from repro.dfs.translation import to_petri_net
from repro.exceptions import ConfigurationError
from repro.parallel.supervisor import SupervisorPool
from repro.utils.diskcache import SingleFlight
from repro.utils.journal import JournalWriter, read_journal


class CampaignResult:
    """Outcome of one campaign job: a payload, or how the worker failed.

    *status* is ``"ok"`` (the job ran and produced a payload), ``"error"``
    (the job raised; *error* holds the traceback), ``"timeout"`` (the worker
    exceeded its deadline and was terminated), ``"crashed"`` (the worker
    process died without reporting) or ``"cancelled"`` (the scheduler shut
    down before the job ran).
    """

    def __init__(self, job, status, payload=None, error=None, elapsed=0.0):
        self.job = job
        self.status = status
        self.payload = payload
        self.error = error
        self.elapsed = elapsed

    @property
    def verdict(self):
        return (self.payload or {}).get("verdict")

    @property
    def outcome(self):
        """``pass`` / ``fail`` / ``inconclusive``, or the failure status."""
        if self.status != "ok":
            return self.status
        return classify_verdict(self.verdict)

    @property
    def cache_status(self):
        return (self.payload or {}).get("cache", "off")

    @property
    def matched(self):
        """Did the job behave as its ``expect`` field predicted?

        ``True`` / ``False`` for a definite answer; ``None`` when the
        verdict is inconclusive (truncated state space), which only the
        campaign's strict mode treats as a failure.
        """
        if self.status != "ok":
            return False
        expect = self.job.expect
        outcome = self.outcome
        if outcome == "inconclusive":
            return None
        if expect is None:
            return True  # no prediction: any conclusive verdict is fine
        if expect == "pass":
            return outcome == "pass"
        if outcome != "fail":
            return False
        if expect == "deadlock":
            return any(
                record["property"] == "deadlock" and record["holds"] is False
                for record in self.verdict.get("properties", ()))
        return True  # expect == "fail": any violated property matches

    def to_dict(self):
        record = {
            "job": self.job.to_dict(),
            "status": self.status,
            "outcome": self.outcome,
            "matched": self.matched,
            "elapsed": self.elapsed,
        }
        if self.payload is not None:
            record.update({key: value for key, value in self.payload.items()
                           if key != "job_id"})
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self):
        return "CampaignResult({!r}, {}, outcome={})".format(
            self.job.job_id, self.status, self.outcome)


def classify_verdict(verdict):
    """Classify a job verdict: ``pass``, ``fail`` or ``inconclusive``."""
    if not verdict:
        return "inconclusive"
    holds = [record.get("holds") for record in verdict.get("properties", ())]
    if any(value is False for value in holds):
        return "fail"
    if any(value is None for value in holds):
        return "inconclusive"
    return "pass"


def _execute_job(job, cache_directory, events_queue=None, token=None):
    """Supervised-task target: run one job against the shared cache.

    With an *events_queue* (a multiprocessing queue inherited through the
    worker's constructor args, so it survives the spawn start method) the
    job's per-property progress callbacks are forwarded as ``(token,
    record)`` tuples for the scheduler's drainer thread to route back to
    the right ticket.
    """
    progress = None
    if events_queue is not None:
        def progress(event, name, result):
            record = {"event": event, "property": name}
            if result is not None:
                record["holds"] = result.holds
                record["method"] = result.method
            try:
                events_queue.put((token, record))
            except Exception:
                pass  # a lost progress event must never fail the job
    return job.run(cache=cache_directory, progress=progress)


class JobTicket:
    """Handle for one scheduled job: status, events, and the final result.

    Tickets are created by :meth:`CampaignScheduler.submit`.  *status* walks
    ``"queued"`` -> ``"running"`` -> ``"done"``; :meth:`events` returns the
    ordered event log (each entry a JSON-able dict with a monotonically
    increasing ``"seq"``), which is what the service streams as NDJSON;
    :meth:`wait` blocks for the :class:`CampaignResult`.
    """

    def __init__(self, job, tenant=None, timeout=None, ticket_id=None):
        #: Journal replay reconstructs tickets under their original ids, so
        #: clients polling an id issued before a daemon crash still resolve.
        self.id = ticket_id if ticket_id else uuid.uuid4().hex
        self.job = job
        self.tenant = tenant
        self.timeout = timeout
        self.status = "queued"
        self.result = None
        self.submitted = time.time()
        self.started = None
        self.finished = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._events = []

    @property
    def done(self):
        return self._done.is_set()

    def record(self, event, **fields):
        """Append an *event* entry to the ticket's log."""
        entry = {"event": event, "time": time.time()}
        entry.update(fields)
        with self._lock:
            entry["seq"] = len(self._events)
            self._events.append(entry)
        return entry

    def events(self, start=0):
        """The event log from sequence number *start* on (a copy)."""
        with self._lock:
            return list(self._events[start:])

    def wait(self, timeout=None):
        """Block until the job finishes; return its :class:`CampaignResult`."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                "job {!r} (ticket {}) still in flight".format(
                    self.job.job_id, self.id))
        return self.result

    def _mark_started(self):
        self.status = "running"
        self.started = time.time()
        self.record("job-started", job_id=self.job.job_id)

    def _finish(self, result):
        with self._lock:
            self.result = result
            self.status = "done"
            self.finished = time.time()
        self.record("job-finished", status=result.status,
                    outcome=result.outcome, cache=result.cache_status,
                    matched=result.matched)
        self._done.set()

    def to_dict(self, events=False):
        """The ticket's wire form (JSON-able); the service's poll payload."""
        record = {
            "id": self.id,
            "job_id": self.job.job_id,
            "tenant": self.tenant,
            "status": self.status,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "job": self.job.to_dict(),
            "event_count": len(self.events()),
        }
        if events:
            record["events"] = self.events()
        if self.result is not None:
            record["result"] = self.result.to_dict()
        return record

    def __repr__(self):
        return "JobTicket({}, job={!r}, status={})".format(
            self.id, self.job.job_id, self.status)


class CampaignScheduler:
    """Incremental job scheduling over the supervised pool.

    Parameters
    ----------
    parallelism:
        Concurrent worker processes; ``0`` runs each job inline in the
        submitting thread (no timeout enforcement), exactly like
        ``run_campaign(parallelism=0)``.
    timeout:
        Default per-job deadline in seconds (worker mode only); individual
        submissions can override it.
    cache_dir:
        Optional verdict-cache root shared by all jobs; per-tenant
        namespaces are derived below it.
    single_flight:
        Compute content keys at submission time, answer warm keys
        synchronously and coalesce concurrent identical submissions into
        one pool execution.  Costs one model build per submission in the
        submitting thread, so batch campaigns leave it off.
    state_dir:
        Optional durability root.  When set, every ticket transition
        (submit / start / verdict / cancel) is appended to a write-ahead
        journal under ``<state_dir>/journal`` (see
        :mod:`repro.utils.journal`) **before** it becomes observable, and
        a freshly constructed scheduler replays the journal: finished
        tickets are restored under their original ids with their recorded
        results, and tickets that were in flight when the process died
        are re-enqueued through the normal submission path (single-flight
        coalescing and warm verdict-cache hits apply, so a crashed job
        whose verdict was already cached is answered immediately).
    """

    def __init__(self, parallelism=1, timeout=None, cache_dir=None,
                 single_flight=False, state_dir=None):
        self.parallelism = int(parallelism)
        self.timeout = timeout
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.single_flight = bool(single_flight)
        self.state_dir = str(state_dir) if state_dir is not None else None
        self._journal = None
        self._flights = SingleFlight()
        self._lock = threading.Lock()
        self._tickets = {}
        self._counters = {"submitted": 0, "completed": 0, "cache_hits": 0,
                          "coalesced": 0, "restored": 0, "requeued": 0}
        #: Aggregated out-of-core traffic of completed jobs (fed by the
        #: per-run ``"exploration"`` payload stats; see ``stats()``).
        self._spill_totals = {"write_bytes": 0, "read_bytes": 0,
                              "spilled_jobs": 0}
        self._outcome_counts = {}
        self._closed = False
        self._pool = None
        self._events_queue = None
        self._drainer = None
        if self.parallelism > 0:
            self._pool = SupervisorPool(self.parallelism, timeout=timeout)
            self._events_queue = self._pool.context.Queue()
            self._drainer = threading.Thread(
                target=self._drain_events, daemon=True,
                name="campaign-events")
            self._drainer.start()
        if self.state_dir is not None:
            journal_dir = os.path.join(self.state_dir, "journal")
            # Read the previous incarnation's records *before* opening the
            # writer (the writer truncates any torn tail in place).
            records = read_journal(journal_dir)
            self._journal = JournalWriter(journal_dir)
            self._replay(records)

    # -- tenancy -------------------------------------------------------------

    def cache_for(self, tenant=None):
        """The verdict cache serving *tenant* (``None`` = the root cache)."""
        if self.cache is None or tenant is None:
            return self.cache
        return self.cache.namespace("tenants", tenant)

    # -- submission ----------------------------------------------------------

    def submit(self, job, tenant=None, priority=0, timeout=False):
        """Schedule *job*; return its :class:`JobTicket` immediately.

        With single-flight enabled the ticket may already be ``done`` on
        return (a warm cache hit is answered synchronously).
        """
        if timeout is False:
            timeout = self.timeout
        ticket = JobTicket(job, tenant=tenant, timeout=timeout)
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "cannot submit to a shut-down campaign scheduler")
            self._tickets[ticket.id] = ticket
            self._counters["submitted"] += 1
        self._journal_append({
            "event": "submit", "ticket": ticket.id, "job": job.to_dict(),
            "tenant": tenant, "priority": priority,
            "timeout": timeout, "time": ticket.submitted})
        ticket.record("job-queued", job_id=job.job_id, tenant=tenant)
        cache = self.cache_for(tenant)
        cache_directory = cache.directory if cache is not None else None
        if self.single_flight and self._coalesce(ticket, cache,
                                                 cache_directory, priority):
            return ticket
        self._dispatch(ticket, cache_directory, priority)
        return ticket

    def get(self, ticket_id):
        """The ticket with *ticket_id*, or ``None``."""
        with self._lock:
            return self._tickets.get(ticket_id)

    @property
    def depth(self):
        """In-flight pool tasks (queued + running) -- the backpressure gauge.

        Coalesced followers and synchronous cache hits do not count: they
        consume no worker, so they should never trip the queue bound.
        """
        return self._pool.depth if self._pool is not None else 0

    def stats(self):
        """JSON-able counters for the service's ``/stats`` endpoint."""
        with self._lock:
            stats = dict(self._counters)
            stats["outcomes"] = dict(self._outcome_counts)
            stats["tickets"] = len(self._tickets)
            stats["spill"] = dict(self._spill_totals)
        stats["queued"] = self._pool.queued if self._pool is not None else 0
        stats["running"] = self._pool.running if self._pool is not None else 0
        stats["flights"] = len(self._flights)
        return stats

    def shutdown(self, wait=True, cancel_pending=True):
        """Stop accepting jobs and shut the pool down.

        ``cancel_pending`` cancels queued jobs (their tickets finish with
        status ``"cancelled"``) and terminates active workers;
        ``cancel_pending=False`` drains them first.
        """
        with self._lock:
            self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_pending=cancel_pending)
        if self._drainer is not None:
            self._events_queue.put(None)
            if wait:
                self._drainer.join(timeout=5.0)
        if self._journal is not None:
            self._journal.close()

    # -- durability ----------------------------------------------------------

    def _replay(self, records):
        """Restore tickets from the previous incarnation's journal.

        The fold is idempotent: the first ``submit`` per ticket id wins
        (duplicates from a double replay are ignored) and the last
        ``verdict``/``cancel`` wins.  Tickets with a recorded verdict are
        rebuilt as already-``done`` under their original ids; tickets
        without one are re-enqueued through the normal single-flight path
        (so a re-run whose verdict meanwhile sits in the cache is answered
        immediately), again under their original ids.  Replayed
        submissions are not re-journaled -- their ``submit`` records are
        already durable -- but verdicts produced by re-runs are.
        """
        from repro.campaign.jobs import VerificationJob

        submits = {}
        verdicts = {}
        for record in records:
            event = record.get("event")
            ticket_id = record.get("ticket")
            if not ticket_id:
                continue
            if event == "submit" and ticket_id not in submits:
                submits[ticket_id] = record
            elif event in ("verdict", "cancel"):
                verdicts[ticket_id] = record
        for ticket_id, record in submits.items():
            try:
                job = VerificationJob.from_dict(record["job"])
            except Exception:
                continue  # a malformed record must not block the daemon
            timeout = record.get("timeout")
            if timeout is None:
                timeout = self.timeout
            ticket = JobTicket(job, tenant=record.get("tenant"),
                               timeout=timeout, ticket_id=ticket_id)
            with self._lock:
                self._tickets[ticket.id] = ticket
                self._counters["submitted"] += 1
            ticket.record("job-queued", job_id=job.job_id,
                          tenant=ticket.tenant)
            verdict = verdicts.get(ticket_id)
            if verdict is not None:
                # Finished before the crash: restore the recorded result
                # verbatim, without re-journaling or re-counting spill.
                ticket.record("restored", status=verdict.get("status"))
                result = CampaignResult(
                    job, verdict.get("status", "error"),
                    payload=verdict.get("payload"),
                    error=verdict.get("error"),
                    elapsed=verdict.get("elapsed") or 0.0)
                with self._lock:
                    self._counters["completed"] += 1
                    self._counters["restored"] += 1
                    self._outcome_counts[result.status] = (
                        self._outcome_counts.get(result.status, 0) + 1)
                ticket._finish(result)
                continue
            # In flight (or queued) when the process died: run it again.
            ticket.record("requeued", job_id=job.job_id)
            with self._lock:
                self._counters["requeued"] += 1
            cache = self.cache_for(ticket.tenant)
            cache_directory = cache.directory if cache is not None else None
            priority = record.get("priority") or 0
            if self.single_flight and self._coalesce(ticket, cache,
                                                     cache_directory,
                                                     priority):
                continue
            self._dispatch(ticket, cache_directory, priority)

    # -- internals -----------------------------------------------------------

    def _coalesce(self, ticket, cache, cache_directory, priority):
        """Single-flight front: warm hit, flight leader, or follower.

        Returns ``False`` when the content key cannot be computed (the
        factory raised); the caller then falls back to a plain dispatch so
        the worker surfaces the identical error with full context.
        """
        job = ticket.job
        try:
            dfs = job.build_model()
            net = to_petri_net(dfs)
            fingerprint = net_fingerprint(net)
        except Exception:
            return False
        key = ResultCache.key(fingerprint, options_digest(job.options()))
        if cache is not None:
            verdict = cache.get(key)
            if verdict is not None:
                elapsed = time.time() - ticket.submitted
                payload = {
                    "job_id": job.job_id, "model": dfs.name,
                    "factory": job.factory, "fingerprint": fingerprint,
                    "expect": job.expect, "cache": "hit",
                    "elapsed": elapsed, "verdict": verdict,
                }
                ticket.record("cache-hit", key=key)
                with self._lock:
                    self._counters["cache_hits"] += 1
                self._finalize(ticket, "ok", payload, None, elapsed)
                return True
        flight_key = (ticket.tenant, key)
        flight, leader = self._flights.acquire(flight_key)
        if leader:
            ticket.record("flight-leader", key=key)

            def resolve_flight(result):
                self._flights.release(flight_key)
                flight.resolve(result)

            self._dispatch(ticket, cache_directory, priority,
                           on_result=resolve_flight)
        else:
            ticket.record("coalesced", key=key)
            with self._lock:
                self._counters["coalesced"] += 1
            flight.subscribe(
                lambda fl: self._resolve_follower(ticket, fl.result))
        return True

    def _resolve_follower(self, ticket, leader_result):
        """Answer a coalesced *ticket* from its flight leader's result."""
        elapsed = time.time() - ticket.submitted
        if leader_result.status == "ok":
            payload = dict(leader_result.payload or {})
            payload["job_id"] = ticket.job.job_id
            payload["cache"] = "coalesced"
            payload["elapsed"] = elapsed
            self._finalize(ticket, "ok", payload, None, elapsed)
        else:
            self._finalize(ticket, leader_result.status, None,
                           leader_result.error, elapsed)

    def _journal_append(self, record):
        """Append *record* to the durability journal (no-op when off)."""
        if self._journal is not None:
            self._journal.append(record)

    def _mark_started(self, ticket):
        self._journal_append({"event": "start", "ticket": ticket.id})
        ticket._mark_started()

    def _dispatch(self, ticket, cache_directory, priority, on_result=None):
        job = ticket.job
        if self._pool is None:
            self._mark_started(ticket)
            started = time.perf_counter()

            def progress(event, name, result):
                record = {"property": name}
                if result is not None:
                    record["holds"] = result.holds
                    record["method"] = result.method
                ticket.record(event, **record)

            try:
                payload = job.run(cache=cache_directory, progress=progress)
                result = self._finalize(ticket, "ok", payload, None,
                                        time.perf_counter() - started)
            except Exception:
                result = self._finalize(ticket, "error", None,
                                        traceback.format_exc(),
                                        time.perf_counter() - started)
            if on_result is not None:
                on_result(result)
            return

        def on_start(task_id):
            self._mark_started(ticket)

        def on_outcome(outcome):
            result = self._finalize(ticket, outcome.status, outcome.payload,
                                    outcome.error, outcome.elapsed)
            if on_result is not None:
                on_result(result)

        self._pool.submit(
            ticket.id, _execute_job,
            (job, cache_directory, self._events_queue, ticket.id),
            timeout=ticket.timeout, priority=priority,
            on_start=on_start, on_outcome=on_outcome)

    def _finalize(self, ticket, status, payload, error, elapsed):
        if status == "timeout" and ticket.timeout is not None:
            error = ("job exceeded its {:.3g}s deadline and was "
                     "terminated".format(ticket.timeout))
        result = CampaignResult(ticket.job, status, payload=payload,
                                error=error, elapsed=elapsed)
        spill = ((payload or {}).get("exploration") or {}).get("spill") or {}
        with self._lock:
            self._counters["completed"] += 1
            self._outcome_counts[status] = (
                self._outcome_counts.get(status, 0) + 1)
            if spill.get("spilled"):
                self._spill_totals["spilled_jobs"] += 1
            self._spill_totals["write_bytes"] += int(
                spill.get("write_bytes") or 0)
            self._spill_totals["read_bytes"] += int(
                spill.get("read_bytes") or 0)
        # Journal the verdict *before* it becomes observable through the
        # ticket: a crash between the two replays the job (at-least-once),
        # never invents a verdict the client could already have seen.
        self._journal_append({
            "event": "cancel" if status == "cancelled" else "verdict",
            "ticket": ticket.id, "status": status, "payload": payload,
            "error": error, "elapsed": elapsed})
        ticket._finish(result)
        return result

    def _drain_events(self):
        """Route worker progress events to their tickets (drainer thread)."""
        while True:
            try:
                item = self._events_queue.get(timeout=0.2)
            except queue.Empty:
                continue
            except (OSError, ValueError):
                return  # queue closed under us during shutdown
            if item is None:
                return
            token, record = item
            with self._lock:
                ticket = self._tickets.get(token)
            if ticket is None or ticket.done:
                continue  # late event after a timeout/crash finalisation
            ticket.record(record.pop("event", "progress"), **record)
