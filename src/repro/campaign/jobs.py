"""Picklable verification jobs: the unit of work of a campaign.

A :class:`VerificationJob` does **not** hold a live model.  It holds a
*factory reference* (a name in :data:`FACTORIES` or a ``"module:function"``
dotted path) plus plain-data keyword arguments, so the job can be pickled to
a worker process, hashed into a cache key, and replayed deterministically.
The worker resolves the factory, builds the DFS model, translates it once,
and drives :meth:`repro.verification.verifier.Verifier.verify_properties`
over the requested property set.

The verdict returned by :meth:`VerificationJob.run` is a plain JSON-able
dict (markings and traces flattened to lists/strings), which is what allows
the disk cache to hand back bit-identical results on warm runs.
"""

import importlib
import json
import os
import time

from repro.campaign.cache import ResultCache, net_fingerprint, options_digest
from repro.chip.lfsr import Lfsr
from repro.dfs.examples import conditional_comp_dfs, linear_pipeline, token_ring
from repro.dfs.simulation import DfsSimulator
from repro.dfs.translation import to_petri_net
from repro.exceptions import ConfigurationError
from repro.pipelines.control import set_loop_value
from repro.pipelines.generic import build_generic_pipeline
from repro.silicon.voltage import VoltageModel
from repro.smt.solver import solver_fingerprint
from repro.verification.checkers import CHECKERS
from repro.verification.checkers.walk import resolve_walk_backend
from repro.verification.verifier import CUSTOM_PROPERTIES, Verifier

#: The default property battery of a campaign job.  Persistence is the
#: slowest check and is opt-in, mirroring ``verify_all(include_persistence=False)``.
DEFAULT_PROPERTIES = ("safeness", "deadlock", "mismatch", "exclusion")


def build_pipeline_model(stages, static_prefix=1, holes=(), f_delay=1.0, g_delay=1.0,
                         name=None):
    """Build a generic OPE pipeline DFS, mis-initialising the *holes* stages.

    *holes* is an iterable of 1-based stage indices whose control loops are
    re-initialised with False tokens while later stages stay included -- the
    non-contiguous configurations whose deadlocks the paper reports catching
    by verification (Section III-A).
    """
    if name is None:
        name = "ope{}s_p{}{}".format(
            stages, static_prefix,
            "_hole" + "-".join(str(index) for index in holes) if holes else "")
    pipeline = build_generic_pipeline(
        stages, static_prefix_stages=static_prefix, name=name,
        f_delay=f_delay, g_delay=g_delay)
    for index in holes:
        stage = pipeline.stage(index)
        if not stage.reconfigurable:
            raise ConfigurationError(
                "cannot punch a hole at static stage {} of {!r}".format(index, name))
        for loop in stage.control_loops:
            set_loop_value(pipeline.dfs, loop, False)
    return pipeline.dfs


#: Registry of model factories addressable from a (picklable) job.
FACTORIES = {
    "pipeline": build_pipeline_model,
    "conditional": conditional_comp_dfs,
    "linear": linear_pipeline,
    "ring": token_ring,
}


def register_factory(name, factory):
    """Register a model *factory* under *name* (returns the factory)."""
    FACTORIES[name] = factory
    return factory


def resolve_factory(reference):
    """Resolve a factory reference: a registry name or ``"module:function"``."""
    if reference in FACTORIES:
        return FACTORIES[reference]
    if ":" in reference:
        module_name, _, attribute = reference.partition(":")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attribute)
        except AttributeError:
            raise ConfigurationError(
                "module {!r} has no factory {!r}".format(module_name, attribute))
    raise ConfigurationError(
        "unknown model factory {!r} (registered: {})".format(
            reference, ", ".join(sorted(FACTORIES))))


class VerificationJob:
    """A self-contained, picklable description of one verification run.

    Attributes are plain data only (strings, numbers, tuples, dicts), so a
    job can cross a process boundary, be replayed later, and contribute to a
    deterministic cache key.
    """

    def __init__(self, job_id, factory, kwargs=None, properties=DEFAULT_PROPERTIES,
                 engine="auto", max_states=200000, max_witnesses=2,
                 checker="exhaustive", checker_options=None,
                 custom_properties=None, lfsr_seed=None, simulate_steps=0,
                 voltage=None, expect="pass", metadata=None, workers=0,
                 spill_dir=None, spill_bytes=None):
        self.job_id = str(job_id)
        self.factory = str(factory)
        self.kwargs = dict(kwargs or {})
        self.properties = tuple(properties)
        self.engine = engine
        self.max_states = int(max_states)
        self.max_witnesses = int(max_witnesses)
        #: Exploration worker processes per job (0/1 = sequential).  Jobs
        #: running inside campaign pool workers fall back to sequential
        #: exploration automatically (daemonic processes cannot spawn
        #: children); with ``parallelism=0`` campaigns the sharded engine
        #: kicks in.  Deliberately *not* part of :meth:`options`: the
        #: sharded graph is bit-identical to the sequential one, so the
        #: verdict -- and therefore the cache identity -- cannot depend on
        #: it.
        self.workers = int(workers or 0)
        #: Out-of-core exploration knobs (see :mod:`repro.petri.storage`).
        #: Like ``workers``, spilling moves the graph's arrays between RAM
        #: and disk without changing a single bit of their content, so
        #: these are excluded from :meth:`options` and the cache digest.
        self.spill_dir = spill_dir
        self.spill_bytes = spill_bytes
        self.checker = str(checker)
        self.checker_options = dict(checker_options or {})
        self.custom_properties = {
            name: str(expression)
            for name, expression in (custom_properties or {}).items()
        }
        # Snapshot registry-backed custom properties eagerly: a job must be
        # self-contained across process boundaries (the spawn start method
        # re-imports modules with an empty registry), and the cache digest
        # must cover the expression actually checked, not just its name.
        for name in self.properties:
            if name in self.custom_properties or name in Verifier.PROPERTY_CHECKS:
                continue
            entry = CUSTOM_PROPERTIES.get(name)
            if entry is not None:
                self.custom_properties[name] = str(entry[0])
        self.lfsr_seed = lfsr_seed
        self.simulate_steps = int(simulate_steps)
        self.voltage = voltage
        self.expect = expect
        self.metadata = dict(metadata or {})

    # -- identity ------------------------------------------------------------

    def options(self):
        """The verdict-relevant options, as a JSON-able mapping.

        The checker choice (and its tuning options) is part of the mapping:
        verdicts produced by different checkers hash to different cache
        keys, so a cached inconclusive exhaustive verdict can never shadow a
        conclusive inductive one, and vice versa.  Custom properties are
        digested as their resolved expressions (snapshotted at construction
        time), not just their names, so re-registering a name with a
        different expression can never be answered from a stale cached
        verdict.

        For solver-backed checkers (and the portfolio, whose default order
        contains them) the mapping also carries the **solver fingerprint**
        (the z3 version line, or ``None`` when no solver is available):
        verdicts that may depend on the solver must not be reused across a
        solver upgrade or an install/uninstall.  Walk-driven jobs carry the
        **resolved walk backend** the same way: a vectorised-swarm verdict
        and a scalar-walker verdict hunt different trajectories for the
        same seed, so they must never answer from each other's cache
        entries (the swarm width rides in ``checker_options`` when tuned).
        """
        options = {
            "properties": list(self.properties),
            "engine": self.engine,
            "max_states": self.max_states,
            "max_witnesses": self.max_witnesses,
            "checker": self.checker,
            "checker_options": self.checker_options,
            "custom_properties": self.custom_properties,
            "lfsr_seed": self.lfsr_seed,
            "simulate_steps": self.simulate_steps,
            "voltage": self.voltage,
        }
        checker_cls = CHECKERS.get(self.checker)
        if checker_cls is not None and checker_cls.uses_solver:
            options["solver"] = solver_fingerprint()
        if self.checker in ("walk", "portfolio"):
            requested = dict(self.checker_options.get("walk") or {})
            if self.checker == "portfolio":
                nested = self.checker_options.get("portfolio") or {}
                requested.update(nested.get("walk") or {})
            options["walk_backend"] = resolve_walk_backend(
                requested.get("backend", "auto"))
        return options

    def to_dict(self):
        """Describe the job itself (not its outcome) as a JSON-able dict."""
        description = {"job_id": self.job_id, "factory": self.factory,
                       "kwargs": dict(self.kwargs), "expect": self.expect}
        description.update(self.options())
        if self.workers:
            description["workers"] = self.workers  # descriptive, not digested
        if self.spill_dir is not None:
            description["spill_dir"] = self.spill_dir  # descriptive too
        if self.spill_bytes is not None:
            description["spill_bytes"] = self.spill_bytes
        if self.metadata:
            description["metadata"] = dict(self.metadata)
        return description

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a job from its :meth:`to_dict` wire form.

        This is the deserialisation half of the wire protocol: a service
        client posts ``job.to_dict()`` as JSON and the daemon reconstructs
        the job here.  Unknown keys are rejected loudly (a typoed option
        silently ignored would verify something other than what the client
        asked for).
        """
        payload = dict(payload)
        # The solver fingerprint and the resolved walk backend are derived
        # locally (see :meth:`options`), never trusted from the wire: the
        # daemon answers with *its* solver and *its* walk engine.
        payload.pop("solver", None)
        payload.pop("walk_backend", None)
        try:
            job_id = payload.pop("job_id")
            factory = payload.pop("factory")
        except KeyError as missing:
            raise ConfigurationError(
                "a job description needs a {} field".format(missing))
        allowed = {"kwargs", "properties", "engine", "max_states",
                   "max_witnesses", "checker", "checker_options",
                   "custom_properties", "lfsr_seed", "simulate_steps",
                   "voltage", "expect", "metadata", "workers",
                   "spill_dir", "spill_bytes"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ConfigurationError(
                "unknown job field(s): {} (known: {})".format(
                    ", ".join(unknown), ", ".join(sorted(allowed))))
        return cls(job_id, factory, **payload)

    # -- execution -----------------------------------------------------------

    def build_model(self):
        """Resolve the factory and build the DFS model."""
        return resolve_factory(self.factory)(**self.kwargs)

    def run(self, cache=None, progress=None):
        """Build, verify (or answer from *cache*) and return a result dict.

        The returned dict has a deterministic ``"verdict"`` (the part the
        cache stores) plus per-run bookkeeping (``"cache"`` status,
        ``"elapsed"`` seconds, and -- on cache misses with a columnar
        engine -- the ``"exploration"`` stats of the state-space build;
        timings and spill byte counts are run facts, not verdict facts, so
        they never enter the cache).  *cache* is a
        :class:`~repro.campaign.cache.ResultCache`, a cache directory path,
        or ``None`` to disable caching.  *progress* is forwarded to
        :meth:`~repro.verification.verifier.Verifier.verify_properties` on
        cache misses (warm runs never re-verify, so they emit no
        per-property events).
        """
        started = time.perf_counter()
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        dfs = self.build_model()
        net = to_petri_net(dfs)
        fingerprint = net_fingerprint(net)
        cache_status, key = "off", None
        verdict = None
        exploration = None
        semiflow_cache = None
        if cache is not None:
            key = cache.key(fingerprint, options_digest(self.options()))
            verdict = cache.get(key)
            cache_status = "hit" if verdict is not None else "miss"
            # Invariant derivations ride in a sibling namespace of the same
            # cache directory: structural facts are shared by every job (and
            # every checker) that verifies the same translation.
            semiflow_cache = os.path.join(cache.directory, "semiflows")
        if verdict is None:
            verdict, exploration = self._compute_verdict(
                dfs, net, semiflow_cache, progress=progress)
            # A round-trip through JSON makes the cold verdict bit-identical
            # to what a warm run will read back from disk.
            verdict = json.loads(json.dumps(verdict, sort_keys=True))
            if cache is not None:
                cache.put(key, verdict)
        result = {
            "job_id": self.job_id,
            "model": dfs.name,
            "factory": self.factory,
            "fingerprint": fingerprint,
            "expect": self.expect,
            "cache": cache_status,
            "elapsed": time.perf_counter() - started,
            "verdict": verdict,
        }
        if exploration is not None:
            result["exploration"] = exploration
        return result

    def effective_checker_options(self):
        """Checker options with the scenario's LFSR seed threaded in.

        The ``lfsr_seeds`` campaign axis sweeps stimulus: it seeds the
        token-game smoke *and* the random-walk checker (the Verifier routes
        top-level ``"walk"`` options to the walk checker whether it runs
        standalone or as a portfolio member), so each seed genuinely
        explores different paths.  Explicitly configured seeds win over the
        axis value.
        """
        options = {name: dict(value) for name, value in self.checker_options.items()}
        if self.lfsr_seed is not None and self.checker in ("walk", "portfolio"):
            options.setdefault("walk", {}).setdefault("seed", self.lfsr_seed)
        return options

    def _compute_verdict(self, dfs, net, semiflow_cache=None, progress=None):
        """Return ``(verdict, exploration)``.

        The verdict is the deterministic, cacheable half; the exploration
        stats (per-phase seconds, spill bytes) vary run to run and are
        returned separately so they can ride the result payload without
        polluting the cache.
        """
        verifier = Verifier(dfs, max_states=self.max_states, engine=self.engine,
                            net=net, checker=self.checker,
                            checker_options=self.effective_checker_options(),
                            workers=self.workers,
                            semiflow_cache=semiflow_cache,
                            spill_dir=self.spill_dir,
                            spill_bytes=self.spill_bytes)
        summary = verifier.verify_properties(
            self.properties, max_witnesses=self.max_witnesses,
            custom=self.custom_properties or None, progress=progress)
        verdict = {
            "state_count": summary.state_count,
            "truncated": summary.truncated,
            "passed": summary.passed,
            "checker": self.checker,
            "properties": [self._property_record(key, result) for key, result
                           in zip(self.properties, summary.results)],
        }
        simulation = self._simulate(dfs)
        if simulation is not None:
            verdict["simulation"] = simulation
        if self.voltage is not None:
            verdict["voltage"] = self._voltage_record()
        return verdict, summary.exploration

    @staticmethod
    def _property_record(key, result):
        record = {
            "property": key,
            "name": result.property_name,
            "holds": result.holds,
            "details": result.details,
            "method": result.method,
            "witnesses": len(result.witnesses),
        }
        trace = result.first_trace()
        if trace is not None:
            record["trace"] = list(trace)
        for witness in result.witnesses[:1]:
            dfs_state = witness.get("dfs_state")
            if dfs_state is not None:
                record["dfs_state"] = dfs_state
        return record

    def _simulate(self, dfs):
        """Run the LFSR-seeded random token-game smoke, if requested."""
        if self.simulate_steps <= 0:
            return None
        seed = self.lfsr_seed if self.lfsr_seed is not None else 0xACE1
        stimulus = Lfsr(seed=seed).next()
        simulator = DfsSimulator(dfs)
        fired = simulator.run_random(self.simulate_steps, seed=stimulus)
        return {
            "lfsr_seed": seed,
            "stimulus": stimulus,
            "steps": self.simulate_steps,
            "fired": len(fired),
            "deadlocked": simulator.is_deadlocked(),
        }

    def _voltage_record(self):
        """Annotate the scenario with the supply-voltage operating point."""
        model = VoltageModel()
        operational = model.is_operational(self.voltage)
        record = {"voltage": self.voltage, "operational": operational}
        if operational:
            record["delay_scale"] = model.delay_scale(self.voltage)
        return record

    def __repr__(self):
        return "VerificationJob({!r}, factory={!r}, expect={!r})".format(
            self.job_id, self.factory, self.expect)
