"""Parallel campaign execution on the supervised process pool.

Each :class:`~repro.campaign.jobs.VerificationJob` runs in its **own**
worker process (bounded to *parallelism* concurrent workers) through
:func:`repro.parallel.supervisor.run_supervised` -- the supervision
machinery (per-job timeouts, crash containment, streamed results) that
originated here and now also powers the racing portfolio checker.  A job
that hangs is terminated at its deadline and a job whose worker dies (a
crash, an ``os._exit``, an OOM kill) is detected by the supervisor -- in
both cases the campaign records a failed :class:`CampaignResult` and keeps
going instead of hanging the pool.

``parallelism=0`` runs the jobs inline in the calling process (no timeout
enforcement), which is handy for debugging and deterministic tests.
"""

import time

from repro.campaign.cache import ResultCache
from repro.campaign.report import CampaignReport
from repro.exceptions import ConfigurationError
from repro.parallel.context import start_method  # noqa: F401  (re-export)
from repro.parallel.supervisor import run_supervised


class CampaignResult:
    """Outcome of one campaign job: a payload, or how the worker failed.

    *status* is ``"ok"`` (the job ran and produced a payload), ``"error"``
    (the job raised; *error* holds the traceback), ``"timeout"`` (the worker
    exceeded its deadline and was terminated) or ``"crashed"`` (the worker
    process died without reporting).
    """

    def __init__(self, job, status, payload=None, error=None, elapsed=0.0):
        self.job = job
        self.status = status
        self.payload = payload
        self.error = error
        self.elapsed = elapsed

    @property
    def verdict(self):
        return (self.payload or {}).get("verdict")

    @property
    def outcome(self):
        """``pass`` / ``fail`` / ``inconclusive``, or the failure status."""
        if self.status != "ok":
            return self.status
        return classify_verdict(self.verdict)

    @property
    def cache_status(self):
        return (self.payload or {}).get("cache", "off")

    @property
    def matched(self):
        """Did the job behave as its ``expect`` field predicted?

        ``True`` / ``False`` for a definite answer; ``None`` when the
        verdict is inconclusive (truncated state space), which only the
        campaign's strict mode treats as a failure.
        """
        if self.status != "ok":
            return False
        expect = self.job.expect
        outcome = self.outcome
        if outcome == "inconclusive":
            return None
        if expect is None:
            return True  # no prediction: any conclusive verdict is fine
        if expect == "pass":
            return outcome == "pass"
        if outcome != "fail":
            return False
        if expect == "deadlock":
            return any(
                record["property"] == "deadlock" and record["holds"] is False
                for record in self.verdict.get("properties", ()))
        return True  # expect == "fail": any violated property matches

    def to_dict(self):
        record = {
            "job": self.job.to_dict(),
            "status": self.status,
            "outcome": self.outcome,
            "matched": self.matched,
            "elapsed": self.elapsed,
        }
        if self.payload is not None:
            record.update({key: value for key, value in self.payload.items()
                           if key != "job_id"})
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self):
        return "CampaignResult({!r}, {}, outcome={})".format(
            self.job.job_id, self.status, self.outcome)


def classify_verdict(verdict):
    """Classify a job verdict: ``pass``, ``fail`` or ``inconclusive``."""
    if not verdict:
        return "inconclusive"
    holds = [record.get("holds") for record in verdict.get("properties", ())]
    if any(value is False for value in holds):
        return "fail"
    if any(value is None for value in holds):
        return "inconclusive"
    return "pass"


def _execute_job(job, cache_directory):
    """Supervised-task target: run one job against the shared cache."""
    return job.run(cache=cache_directory)


def run_campaign(jobs, parallelism=1, timeout=None, cache_dir=None, spec=None,
                 skipped=None):
    """Run *jobs* and aggregate the outcomes into a :class:`CampaignReport`.

    Parameters
    ----------
    jobs:
        The :class:`~repro.campaign.jobs.VerificationJob` list to run (for
        instance from :func:`~repro.campaign.scenario.generate_scenarios`).
    parallelism:
        Number of concurrent worker processes; ``0`` runs inline.
    timeout:
        Optional per-job deadline in seconds (worker mode only).
    cache_dir:
        Optional verdict-cache directory shared by all workers.
    spec, skipped:
        Optional :class:`~repro.campaign.scenario.ScenarioSpec` and skipped
        grid points, recorded in the report for provenance.
    """
    jobs = list(jobs)
    seen_ids = set()
    for job in jobs:
        if job.job_id in seen_ids:
            raise ConfigurationError(
                "duplicate job id {!r}: the runner keys its bookkeeping by "
                "job id, so every job needs a unique one".format(job.job_id))
        seen_ids.add(job.job_id)
    if cache_dir is not None:
        ResultCache(cache_dir)  # create the directory once, up front
    started = time.perf_counter()
    outcomes = run_supervised(
        [(job.job_id, _execute_job, (job, cache_dir)) for job in jobs],
        parallelism=parallelism, timeout=timeout)
    by_id = {outcome.task_id: outcome for outcome in outcomes}
    results = []
    for job in jobs:
        outcome = by_id[job.job_id]
        error = outcome.error
        if outcome.status == "timeout":
            error = ("job exceeded its {:.3g}s deadline and was "
                     "terminated".format(timeout))
        results.append(CampaignResult(job, outcome.status,
                                      payload=outcome.payload, error=error,
                                      elapsed=outcome.elapsed))
    return CampaignReport(
        results, spec=spec, skipped=skipped, parallelism=parallelism,
        timeout=timeout, cache_dir=cache_dir,
        elapsed=time.perf_counter() - started)
