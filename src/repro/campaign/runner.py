"""Parallel campaign execution: a supervised process pool with timeouts.

Each :class:`~repro.campaign.jobs.VerificationJob` runs in its **own**
worker process (bounded to *parallelism* concurrent workers) rather than a
shared ``multiprocessing.Pool``: a job that hangs is terminated at its
deadline and a job whose worker dies (a crash, an ``os._exit``, an OOM
kill) is detected by the supervisor -- in both cases the campaign records a
failed :class:`CampaignResult` and keeps going instead of hanging the pool.
Workers stream results back through a queue as they finish, so a warm-cache
job does not wait for a slow cold one.

``parallelism=0`` runs the jobs inline in the calling process (no timeout
enforcement), which is handy for debugging and deterministic tests.
"""

import multiprocessing
import queue as queue_module
import time
import traceback
from collections import deque

from repro.campaign.cache import ResultCache
from repro.campaign.report import CampaignReport
from repro.exceptions import ConfigurationError

#: Seconds the supervisor waits for a dead worker's queued result to drain
#: before declaring the worker crashed.
_CRASH_GRACE = 0.5


def _context():
    """Prefer ``fork`` (inherits registered factories); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def start_method():
    """The multiprocessing start method campaigns will use on this platform."""
    return _context().get_start_method()


class CampaignResult:
    """Outcome of one campaign job: a payload, or how the worker failed.

    *status* is ``"ok"`` (the job ran and produced a payload), ``"error"``
    (the job raised; *error* holds the traceback), ``"timeout"`` (the worker
    exceeded its deadline and was terminated) or ``"crashed"`` (the worker
    process died without reporting).
    """

    def __init__(self, job, status, payload=None, error=None, elapsed=0.0):
        self.job = job
        self.status = status
        self.payload = payload
        self.error = error
        self.elapsed = elapsed

    @property
    def verdict(self):
        return (self.payload or {}).get("verdict")

    @property
    def outcome(self):
        """``pass`` / ``fail`` / ``inconclusive``, or the failure status."""
        if self.status != "ok":
            return self.status
        return classify_verdict(self.verdict)

    @property
    def cache_status(self):
        return (self.payload or {}).get("cache", "off")

    @property
    def matched(self):
        """Did the job behave as its ``expect`` field predicted?

        ``True`` / ``False`` for a definite answer; ``None`` when the
        verdict is inconclusive (truncated state space), which only the
        campaign's strict mode treats as a failure.
        """
        if self.status != "ok":
            return False
        expect = self.job.expect
        outcome = self.outcome
        if outcome == "inconclusive":
            return None
        if expect is None:
            return True  # no prediction: any conclusive verdict is fine
        if expect == "pass":
            return outcome == "pass"
        if outcome != "fail":
            return False
        if expect == "deadlock":
            return any(
                record["property"] == "deadlock" and record["holds"] is False
                for record in self.verdict.get("properties", ()))
        return True  # expect == "fail": any violated property matches

    def to_dict(self):
        record = {
            "job": self.job.to_dict(),
            "status": self.status,
            "outcome": self.outcome,
            "matched": self.matched,
            "elapsed": self.elapsed,
        }
        if self.payload is not None:
            record.update({key: value for key, value in self.payload.items()
                           if key != "job_id"})
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self):
        return "CampaignResult({!r}, {}, outcome={})".format(
            self.job.job_id, self.status, self.outcome)


def classify_verdict(verdict):
    """Classify a job verdict: ``pass``, ``fail`` or ``inconclusive``."""
    if not verdict:
        return "inconclusive"
    holds = [record.get("holds") for record in verdict.get("properties", ())]
    if any(value is False for value in holds):
        return "fail"
    if any(value is None for value in holds):
        return "inconclusive"
    return "pass"


def _worker_main(job, cache_directory, results_queue):
    """Worker entry point: run one job and stream the outcome back."""
    started = time.perf_counter()
    try:
        payload = job.run(cache=cache_directory)
        results_queue.put((job.job_id, "ok", payload, None,
                           time.perf_counter() - started))
    except Exception:
        results_queue.put((job.job_id, "error", None, traceback.format_exc(),
                           time.perf_counter() - started))


def _run_inline(jobs, cache_directory):
    results = []
    for job in jobs:
        started = time.perf_counter()
        try:
            payload = job.run(cache=cache_directory)
            results.append(CampaignResult(job, "ok", payload=payload,
                                          elapsed=time.perf_counter() - started))
        except Exception:
            results.append(CampaignResult(job, "error", error=traceback.format_exc(),
                                          elapsed=time.perf_counter() - started))
    return results


def _drain(results_queue, records, block_seconds=0.0):
    """Move every available queue item into *records*."""
    while True:
        try:
            job_id, status, payload, error, elapsed = results_queue.get(
                timeout=block_seconds) if block_seconds else results_queue.get_nowait()
        except queue_module.Empty:
            return
        records[job_id] = (status, payload, error, elapsed)
        block_seconds = 0.0


def _run_pool(jobs, parallelism, timeout, cache_directory):
    context = _context()
    results_queue = context.Queue()
    pending = deque(jobs)
    active = {}   # job_id -> (process, job, started, deadline)
    records = {}  # job_id -> (status, payload, error, elapsed)
    failures = {}

    while pending or active:
        while pending and len(active) < parallelism:
            job = pending.popleft()
            process = context.Process(
                target=_worker_main, args=(job, cache_directory, results_queue),
                daemon=True)
            process.start()
            started = time.monotonic()
            deadline = started + timeout if timeout is not None else None
            active[job.job_id] = (process, job, started, deadline)
        _drain(results_queue, records, block_seconds=0.05)

        now = time.monotonic()
        for job_id in list(active):
            process, job, started, deadline = active[job_id]
            if job_id in records:
                process.join()
                del active[job_id]
            elif deadline is not None and now > deadline:
                process.terminate()
                process.join(1.0)
                if process.is_alive():
                    process.kill()
                    process.join(1.0)
                failures[job_id] = CampaignResult(
                    job, "timeout", elapsed=now - started,
                    error="job exceeded its {:.3g}s deadline and was "
                          "terminated".format(timeout))
                del active[job_id]
            elif not process.is_alive():
                # The worker died; give its (possibly buffered) result one
                # last chance to drain before declaring a crash.
                _drain(results_queue, records, block_seconds=_CRASH_GRACE)
                if job_id not in records:
                    failures[job_id] = CampaignResult(
                        job, "crashed", elapsed=time.monotonic() - started,
                        error="worker process died with exit code {} before "
                              "reporting a result".format(process.exitcode))
                    del active[job_id]
                process.join()

    results_queue.close()
    results = []
    for job in jobs:
        if job.job_id in records:
            status, payload, error, elapsed = records[job.job_id]
            results.append(CampaignResult(job, status, payload=payload,
                                          error=error, elapsed=elapsed))
        else:
            results.append(failures[job.job_id])
    return results


def run_campaign(jobs, parallelism=1, timeout=None, cache_dir=None, spec=None,
                 skipped=None):
    """Run *jobs* and aggregate the outcomes into a :class:`CampaignReport`.

    Parameters
    ----------
    jobs:
        The :class:`~repro.campaign.jobs.VerificationJob` list to run (for
        instance from :func:`~repro.campaign.scenario.generate_scenarios`).
    parallelism:
        Number of concurrent worker processes; ``0`` runs inline.
    timeout:
        Optional per-job deadline in seconds (worker mode only).
    cache_dir:
        Optional verdict-cache directory shared by all workers.
    spec, skipped:
        Optional :class:`~repro.campaign.scenario.ScenarioSpec` and skipped
        grid points, recorded in the report for provenance.
    """
    jobs = list(jobs)
    seen_ids = set()
    for job in jobs:
        if job.job_id in seen_ids:
            raise ConfigurationError(
                "duplicate job id {!r}: the runner keys its bookkeeping by "
                "job id, so every job needs a unique one".format(job.job_id))
        seen_ids.add(job.job_id)
    if cache_dir is not None:
        ResultCache(cache_dir)  # create the directory once, up front
    started = time.perf_counter()
    if not jobs:
        results = []
    elif parallelism <= 0:
        results = _run_inline(jobs, cache_dir)
    else:
        results = _run_pool(jobs, parallelism, timeout, cache_dir)
    return CampaignReport(
        results, spec=spec, skipped=skipped, parallelism=parallelism,
        timeout=timeout, cache_dir=cache_dir,
        elapsed=time.perf_counter() - started)
