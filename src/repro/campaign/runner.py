"""Batch campaign execution: the thin front over the scheduling core.

Each :class:`~repro.campaign.jobs.VerificationJob` runs in its **own**
worker process (bounded to *parallelism* concurrent workers) through the
:class:`~repro.campaign.scheduler.CampaignScheduler` -- the supervision
machinery (per-job timeouts, crash containment, streamed results) that
originated here and now also powers the racing portfolio checker and the
verification service daemon (:mod:`repro.service`).  A job that hangs is
terminated at its deadline and a job whose worker dies (a crash, an
``os._exit``, an OOM kill) is detected by the supervisor -- in both cases
the campaign records a failed :class:`CampaignResult` and keeps going
instead of hanging the pool.

``parallelism=0`` runs the jobs inline in the calling process (no timeout
enforcement), which is handy for debugging and deterministic tests.

Batch campaigns deliberately run the scheduler with ``single_flight=False``:
single-flight coalescing builds each model in the submitting thread to
compute its content key, and a batch run must never stall on a hanging
factory outside the supervised workers -- duplicate work across one batch
is already prevented by the verdict cache and the scenario generator's
unique grid points.
"""

import time

from repro.campaign.cache import ResultCache
from repro.campaign.report import CampaignReport
from repro.campaign.scheduler import (  # noqa: F401  (re-exports)
    CampaignResult,
    CampaignScheduler,
    JobTicket,
    classify_verdict,
)
from repro.exceptions import ConfigurationError
from repro.parallel.context import start_method  # noqa: F401  (re-export)


def run_campaign(jobs, parallelism=1, timeout=None, cache_dir=None, spec=None,
                 skipped=None):
    """Run *jobs* and aggregate the outcomes into a :class:`CampaignReport`.

    Parameters
    ----------
    jobs:
        The :class:`~repro.campaign.jobs.VerificationJob` list to run (for
        instance from :func:`~repro.campaign.scenario.generate_scenarios`).
    parallelism:
        Number of concurrent worker processes; ``0`` runs inline.
    timeout:
        Optional per-job deadline in seconds (worker mode only).
    cache_dir:
        Optional verdict-cache directory shared by all workers.
    spec, skipped:
        Optional :class:`~repro.campaign.scenario.ScenarioSpec` and skipped
        grid points, recorded in the report for provenance.
    """
    jobs = list(jobs)
    seen_ids = set()
    for job in jobs:
        if job.job_id in seen_ids:
            raise ConfigurationError(
                "duplicate job id {!r}: the runner keys its bookkeeping by "
                "job id, so every job needs a unique one".format(job.job_id))
        seen_ids.add(job.job_id)
    if cache_dir is not None:
        ResultCache(cache_dir)  # create the directory once, up front
    started = time.perf_counter()
    scheduler = CampaignScheduler(parallelism=parallelism, timeout=timeout,
                                  cache_dir=cache_dir, single_flight=False)
    try:
        tickets = [scheduler.submit(job) for job in jobs]
        results = [ticket.wait() for ticket in tickets]
    finally:
        scheduler.shutdown(wait=True, cancel_pending=True)
    return CampaignReport(
        results, spec=spec, skipped=skipped, parallelism=parallelism,
        timeout=timeout, cache_dir=cache_dir,
        elapsed=time.perf_counter() - started)
