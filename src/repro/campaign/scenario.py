"""Declarative scenario grids: the cartesian product a campaign verifies.

A :class:`ScenarioSpec` names the axes of the paper's E5 evaluation --
pipeline depth, static-prefix split, injected configuration holes, LFSR
stimulus seeds and supply-voltage operating points -- and
:func:`generate_scenarios` expands it into concrete, picklable
:class:`~repro.campaign.jobs.VerificationJob` objects.  Combinations that
cannot exist (a hole with no included stage behind it, a prefix wider than
the pipeline) are skipped and reported, not silently dropped.
"""

from repro.campaign.jobs import DEFAULT_PROPERTIES, VerificationJob


class ScenarioSpec:
    """The axes and job options of a verification campaign."""

    def __init__(self, depths=(2, 3), static_prefixes=(1,), holes=(0,),
                 lfsr_seeds=(None,), voltages=(None,), family="pipeline",
                 properties=DEFAULT_PROPERTIES, engine="auto", max_states=200000,
                 max_witnesses=2, checker="exhaustive", checker_options=None,
                 custom_properties=None, simulate_steps=0, f_delay=1.0,
                 g_delay=1.0, workers=0, spill_dir=None, spill_bytes=None):
        self.depths = tuple(sorted(set(int(depth) for depth in depths)))
        self.static_prefixes = tuple(sorted(set(int(p) for p in static_prefixes)))
        self.holes = tuple(sorted(set(int(count) for count in holes)))
        self.lfsr_seeds = tuple(dict.fromkeys(lfsr_seeds))
        self.voltages = tuple(dict.fromkeys(voltages))
        self.family = family
        self.properties = tuple(properties)
        self.engine = engine
        self.max_states = int(max_states)
        self.max_witnesses = int(max_witnesses)
        self.checker = str(checker)
        self.checker_options = dict(checker_options or {})
        self.custom_properties = dict(custom_properties or {})
        self.simulate_steps = int(simulate_steps)
        self.f_delay = float(f_delay)
        self.g_delay = float(g_delay)
        #: Exploration workers per job (see ``VerificationJob.workers``);
        #: affects wall-clock only, never verdicts or cache keys.
        self.workers = int(workers or 0)
        #: Out-of-core exploration knobs (see ``VerificationJob.spill_dir``
        #: / ``spill_bytes``); like workers, never part of cache keys.
        self.spill_dir = spill_dir
        self.spill_bytes = spill_bytes

    def axes(self):
        """The grid axes as a JSON-able mapping (for reports)."""
        return {
            "family": self.family,
            "depths": list(self.depths),
            "static_prefixes": list(self.static_prefixes),
            "holes": list(self.holes),
            "lfsr_seeds": list(self.lfsr_seeds),
            "voltages": list(self.voltages),
            "checker": self.checker,
        }

    def grid_size(self):
        """Number of raw grid points (before validity filtering)."""
        return (len(self.depths) * len(self.static_prefixes) * len(self.holes)
                * len(self.lfsr_seeds) * len(self.voltages))

    def __repr__(self):
        return "ScenarioSpec(family={!r}, grid={})".format(self.family, self.grid_size())


def _axis_token(prefix, value):
    if value is None:
        return ""
    if isinstance(value, float):
        return "-{}{:g}".format(prefix, value)
    return "-{}{}".format(prefix, value)


def _scenario_id(family, depth, prefix, hole_count, lfsr_seed, voltage):
    parts = ["{}-d{}".format(family, depth)]
    if family == "pipeline":
        parts.append("-p{}".format(prefix))
        parts.append("-h{}".format(hole_count))
    parts.append(_axis_token("l", lfsr_seed))
    parts.append(_axis_token("v", voltage))
    return "".join(parts)


def enumerate_grid(spec):
    """Yield ``(axes_dict, reason)`` for every raw grid point.

    *reason* is ``None`` for a buildable scenario and a human-readable
    explanation for a grid point that is skipped as structurally invalid.
    """
    for depth in spec.depths:
        for prefix in spec.static_prefixes:
            for hole_count in spec.holes:
                for lfsr_seed in spec.lfsr_seeds:
                    for voltage in spec.voltages:
                        axes = {"depth": depth, "prefix": prefix,
                                "holes": hole_count, "lfsr_seed": lfsr_seed,
                                "voltage": voltage}
                        yield axes, _invalid_reason(spec, axes)


def _invalid_reason(spec, axes):
    depth, prefix, hole_count = axes["depth"], axes["prefix"], axes["holes"]
    if depth < 1:
        return "a pipeline needs at least one stage"
    if hole_count < 0:
        return "hole counts cannot be negative"
    if prefix < 0:
        return "the static prefix cannot be negative"
    if spec.family == "ring" and depth < 2:
        return "a token ring needs at least two registers"
    if spec.family != "pipeline":
        if prefix != spec.static_prefixes[0]:
            return "the static-prefix axis only applies to the pipeline family"
        if hole_count != 0:
            return "configuration holes only apply to the pipeline family"
        return None
    if prefix > depth:
        return "static prefix {} exceeds the {}-stage pipeline".format(prefix, depth)
    if hole_count > 0 and prefix + hole_count >= depth:
        return ("{} hole(s) after a {}-stage prefix leave no included stage "
                "behind the hole in a {}-stage pipeline".format(
                    hole_count, prefix, depth))
    return None


def _job_kwargs(spec, axes):
    depth = axes["depth"]
    if spec.family == "pipeline":
        prefix, hole_count = axes["prefix"], axes["holes"]
        return {
            "stages": depth,
            "static_prefix": prefix,
            "holes": list(range(prefix + 1, prefix + 1 + hole_count)),
            "f_delay": spec.f_delay,
            "g_delay": spec.g_delay,
        }
    if spec.family == "conditional":
        return {"comp_stages": depth}
    if spec.family == "linear":
        return {"stages": depth}
    if spec.family == "ring":
        return {"registers": depth}
    return {"stages": depth}


def _expectation(spec, hole_count):
    """Predict a scenario's outcome, given the properties actually checked.

    A hole configuration is only *expected* to be caught when the deadlock
    check is part of the sweep; with a reduced property set the scenario
    carries no prediction (``None``) instead of a guaranteed mismatch.
    """
    if hole_count == 0:
        return "pass"
    if "deadlock" in spec.properties:
        return "deadlock"
    return None


def generate_scenarios(spec):
    """Expand *spec* into jobs; return ``(jobs, skipped)``.

    *jobs* is the list of :class:`VerificationJob` objects covering every
    valid grid point; *skipped* is a list of ``{"axes": ..., "reason": ...}``
    records for the invalid points.
    """
    jobs, skipped = [], []
    for axes, reason in enumerate_grid(spec):
        if reason is not None:
            skipped.append({"axes": dict(axes), "reason": reason})
            continue
        hole_count = axes["holes"] if spec.family == "pipeline" else 0
        job = VerificationJob(
            job_id=_scenario_id(spec.family, axes["depth"], axes["prefix"],
                                hole_count, axes["lfsr_seed"], axes["voltage"]),
            factory=spec.family,
            kwargs=_job_kwargs(spec, axes),
            properties=spec.properties,
            engine=spec.engine,
            max_states=spec.max_states,
            max_witnesses=spec.max_witnesses,
            checker=spec.checker,
            checker_options=spec.checker_options,
            custom_properties=spec.custom_properties,
            lfsr_seed=axes["lfsr_seed"],
            simulate_steps=spec.simulate_steps,
            voltage=axes["voltage"],
            expect=_expectation(spec, hole_count),
            metadata={"axes": dict(axes)},
            workers=spec.workers,
            spill_dir=spec.spill_dir,
            spill_bytes=spec.spill_bytes,
        )
        jobs.append(job)
    return jobs, skipped
