"""Disk cache of verification verdicts keyed by canonical net fingerprints.

Verifying a model is expensive; deciding whether a model *changed* is cheap.
The cache therefore keys every verdict by a **net fingerprint** (see
:mod:`repro.petri.fingerprint`) -- a stable hash of the places, transitions
and arcs of the Petri-net translation -- combined with a digest of the job
options that can influence the verdict (property set, engine, state bound,
checker choice, simulation stimulus).  Re-running a campaign only verifies
models whose translation or options actually changed; everything else is
answered from disk, bit-identically to the cold run.

The storage layer (atomic JSON files, corrupt entries count as misses) is
:class:`repro.utils.diskcache.JsonDiskCache`, shared with the semiflow cache
of :mod:`repro.petri.invariants`; ``net_fingerprint`` and ``options_digest``
are re-exported here for compatibility.
"""

from repro.petri.fingerprint import net_fingerprint, options_digest
from repro.utils.diskcache import JsonDiskCache

__all__ = ["ResultCache", "net_fingerprint", "options_digest"]


class ResultCache(JsonDiskCache):
    """A directory of cached verdicts, one JSON file per cache key."""
