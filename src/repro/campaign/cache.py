"""Disk cache of verification verdicts keyed by canonical net fingerprints.

Verifying a model is expensive; deciding whether a model *changed* is cheap.
The cache therefore keys every verdict by a **net fingerprint** -- a stable
hash of the places (with initial tokens and capacities), transitions and
arcs of the Petri-net translation -- combined with a digest of the job
options that can influence the verdict (property set, engine, state bound,
simulation stimulus).  Re-running a campaign only verifies models whose
translation or options actually changed; everything else is answered from
disk, bit-identically to the cold run.

Entries are plain JSON files named after their key, written atomically
(temp file + ``os.replace``) so that parallel campaign workers can share one
cache directory without locking.
"""

import hashlib
import json
import os
import tempfile


def _canonical(payload):
    """Serialise *payload* deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def net_fingerprint(net):
    """Return a stable hex fingerprint of a :class:`~repro.petri.net.PetriNet`.

    The fingerprint covers structure and initial marking -- places (name,
    initial tokens, capacity), transition names, and arcs (place, transition,
    kind, weight) -- but not the net's display name or annotations, so two
    structurally identical translations share cached verdicts.
    """
    places = sorted(
        (name, place.tokens, place.capacity) for name, place in net.places.items()
    )
    arcs = sorted(
        (arc.place, arc.transition, arc.kind.value, arc.weight) for arc in net.arcs
    )
    payload = {
        "places": [list(entry) for entry in places],
        "transitions": sorted(net.transitions),
        "arcs": [list(entry) for entry in arcs],
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def options_digest(options):
    """Digest a JSON-able mapping of verdict-relevant job options."""
    return hashlib.sha256(_canonical(options).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of cached verdicts, one JSON file per cache key."""

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    @staticmethod
    def key(fingerprint, digest):
        """Combine a net fingerprint and an options digest into a cache key."""
        return hashlib.sha256(
            "{}:{}".format(fingerprint, digest).encode("utf-8")
        ).hexdigest()

    def path(self, key):
        return os.path.join(self.directory, key + ".json")

    def get(self, key):
        """Return the cached verdict for *key*, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses: the campaign then
        recomputes and overwrites them.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key, verdict):
        """Store *verdict* (a JSON-able dict) under *key* atomically."""
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".cache-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(verdict, handle, sort_keys=True)
            os.replace(temp_path, self.path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return key

    def __len__(self):
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))

    def clear(self):
        """Delete every cached entry."""
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    def __repr__(self):
        return "ResultCache({!r}, entries={})".format(self.directory, len(self))
