"""Verification campaigns: scenario sweeps over the paper's E5 evaluation.

The paper's evaluation (Section III-A, experiment E5) does not verify *one*
pipeline -- it verifies a family of them: the reconfigurable OPE pipeline at
every supported depth, with correctly and incorrectly initialised control
registers, driven by on-chip LFSR stimulus and operated across a supply
-voltage sweep.  This package reproduces that campaign style as a subsystem:

* :mod:`~repro.campaign.scenario` -- :class:`ScenarioSpec` declares the grid
  axes and :func:`generate_scenarios` expands them.  Each axis maps back to
  the paper: **depth** is the OPE window size selected by token
  initialisation (Section III, Fig. 6), **static prefix** is the always-on
  stage split (the chip's ``s1``), **holes** inject the non-contiguous
  configurations whose deadlocks the paper reports catching by verification
  (Section III-A), **LFSR seeds** select the chip's random-mode stimulus
  (Section IV) for a token-game smoke run, and **voltages** annotate the
  operating points of the E5 voltage sweep (Fig. 9).
* :mod:`~repro.campaign.jobs` -- the picklable :class:`VerificationJob`
  unit of work: a model-factory reference plus plain-data options (including
  the checker choice and any named custom Reach properties), never a live
  model, so jobs cross process boundaries and hash into cache keys.
* :mod:`~repro.campaign.runner` -- :func:`run_campaign` fans jobs out over
  supervised worker processes with per-job timeouts and crash containment.
* :mod:`~repro.campaign.cache` -- the on-disk verdict cache keyed by a
  canonical Petri-net fingerprint, so re-runs only verify changed models.
* :mod:`~repro.campaign.report` -- :class:`CampaignReport` with JSON and
  markdown renderers for CI artifacts and the bench-regression gate.

Typical use (also available as ``repro-dfs campaign``)::

    from repro.campaign import ScenarioSpec, generate_scenarios, run_campaign

    spec = ScenarioSpec(depths=range(2, 4), holes=(0, 1))
    jobs, skipped = generate_scenarios(spec)
    report = run_campaign(jobs, parallelism=4, cache_dir=".repro-campaign-cache",
                          spec=spec, skipped=skipped)
    print(report.render_text())
"""

from repro.campaign.cache import ResultCache, net_fingerprint, options_digest
from repro.campaign.jobs import (
    DEFAULT_PROPERTIES,
    FACTORIES,
    VerificationJob,
    build_pipeline_model,
    register_factory,
    resolve_factory,
)
from repro.campaign.report import CampaignReport
from repro.campaign.runner import (
    CampaignResult,
    classify_verdict,
    run_campaign,
    start_method,
)
from repro.campaign.scheduler import CampaignScheduler, JobTicket
from repro.campaign.scenario import ScenarioSpec, enumerate_grid, generate_scenarios

__all__ = [
    "CampaignReport",
    "CampaignResult",
    "CampaignScheduler",
    "DEFAULT_PROPERTIES",
    "FACTORIES",
    "JobTicket",
    "ResultCache",
    "ScenarioSpec",
    "VerificationJob",
    "build_pipeline_model",
    "classify_verdict",
    "enumerate_grid",
    "generate_scenarios",
    "net_fingerprint",
    "options_digest",
    "register_factory",
    "resolve_factory",
    "run_campaign",
    "start_method",
]
