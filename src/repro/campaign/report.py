"""Campaign reports: aggregation plus JSON and markdown renderers."""

import json
import os


class CampaignReport:
    """Aggregated outcome of a verification campaign.

    Wraps the ordered list of :class:`~repro.campaign.runner.CampaignResult`
    records together with the grid that produced them, and renders the whole
    campaign as machine-readable JSON (for CI artifacts and the regression
    gate) or as a markdown table (for humans and PR comments).
    """

    def __init__(self, results, spec=None, skipped=None, parallelism=1,
                 timeout=None, cache_dir=None, elapsed=0.0):
        self.results = list(results)
        self.spec = spec
        self.skipped = list(skipped or [])
        self.parallelism = parallelism
        self.timeout = timeout
        self.cache_dir = cache_dir
        self.elapsed = elapsed

    # -- aggregation ---------------------------------------------------------

    def __len__(self):
        return len(self.results)

    def count(self, *statuses):
        return sum(1 for result in self.results if result.status in statuses)

    @property
    def outcomes(self):
        """Outcome -> count over all results."""
        counts = {}
        for result in self.results:
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    @property
    def cache_hits(self):
        return sum(1 for result in self.results if result.cache_status == "hit")

    @property
    def mismatched(self):
        """Results that definitely did not behave as their scenario predicted."""
        return [result for result in self.results if result.matched is False]

    @property
    def inconclusive(self):
        return [result for result in self.results
                if result.outcome == "inconclusive"]

    @property
    def ok(self):
        """True when no job definitely misbehaved (inconclusive is neutral)."""
        return not self.mismatched

    @property
    def spill_totals(self):
        """Aggregated out-of-core traffic over all jobs that reported it.

        Cold runs on a columnar engine attach ``"exploration"`` stats to
        their payload (see ``VerificationJob.run``); warm cache hits carry
        none, so the totals only count graphs actually (re)built.
        """
        totals = {"write_bytes": 0, "read_bytes": 0, "spilled_jobs": 0}
        for result in self.results:
            spill = (((result.payload or {}).get("exploration") or {})
                     .get("spill") or {})
            if spill.get("spilled"):
                totals["spilled_jobs"] += 1
            totals["write_bytes"] += int(spill.get("write_bytes") or 0)
            totals["read_bytes"] += int(spill.get("read_bytes") or 0)
        return totals

    def summary(self):
        """The aggregate counters as a JSON-able mapping."""
        return {
            "jobs": len(self.results),
            "skipped_grid_points": len(self.skipped),
            "outcomes": self.outcomes,
            "matched": sum(1 for result in self.results if result.matched is True),
            "mismatched": len(self.mismatched),
            "inconclusive": len(self.inconclusive),
            "cache_hits": self.cache_hits,
            "elapsed": self.elapsed,
            "parallelism": self.parallelism,
            "spill": self.spill_totals,
            "ok": self.ok,
        }

    def rows(self):
        """Flat per-scenario rows (for text tables and benchmarks)."""
        rows = []
        for result in self.results:
            verdict = result.verdict or {}
            rows.append({
                "scenario": result.job.job_id,
                "expect": result.job.expect,
                "outcome": result.outcome,
                "matched": result.matched,
                "checker": getattr(result.job, "checker", "exhaustive"),
                "states": verdict.get("state_count", "-"),
                "cache": result.cache_status,
                "seconds": result.elapsed,
            })
        return rows

    # -- renderers -----------------------------------------------------------

    def to_dict(self):
        report = {"campaign": {
            "parallelism": self.parallelism,
            "timeout": self.timeout,
            "cache_dir": self.cache_dir,
            "elapsed": self.elapsed,
        }}
        if self.spec is not None:
            report["campaign"]["grid"] = self.spec.axes()
        if self.skipped:
            report["campaign"]["skipped"] = list(self.skipped)
        report["summary"] = self.summary()
        report["results"] = [result.to_dict() for result in self.results]
        return report

    def render_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path):
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_json() + "\n")
        return path

    def to_markdown(self):
        """Render the campaign as a markdown summary plus a scenario table."""
        summary = self.summary()
        lines = [
            "# Verification campaign",
            "",
            "- jobs: **{}** ({} matched, {} mismatched, {} cache hit(s))".format(
                summary["jobs"], summary["matched"], summary["mismatched"],
                summary["cache_hits"]),
            "- outcomes: {}".format(
                ", ".join("{} {}".format(count, outcome) for outcome, count
                          in sorted(summary["outcomes"].items())) or "none"),
            "- wall clock: {:.3g}s at parallelism {}".format(
                summary["elapsed"], summary["parallelism"]),
            "",
            "| scenario | expect | outcome | matched | checker | states | cache | seconds |",
            "| --- | --- | --- | --- | --- | --- | --- | --- |",
        ]
        for row in self.rows():
            lines.append("| {} | {} | {} | {} | {} | {} | {} | {:.3g} |".format(
                row["scenario"], row["expect"], row["outcome"],
                {True: "yes", False: "NO", None: "?"}[row["matched"]],
                row["checker"], row["states"], row["cache"],
                row["seconds"]))
        if self.skipped:
            lines.append("")
            lines.append("Skipped grid points:")
            for entry in self.skipped:
                lines.append("- `{}`: {}".format(entry["axes"], entry["reason"]))
        return "\n".join(lines) + "\n"

    def render_text(self):
        """A compact plain-text summary for the CLI."""
        summary = self.summary()
        lines = ["campaign: {} job(s), {} matched, {} mismatched, "
                 "{} cache hit(s), {:.3g}s".format(
                     summary["jobs"], summary["matched"], summary["mismatched"],
                     summary["cache_hits"], summary["elapsed"])]
        for row in self.rows():
            lines.append("  [{}] {:<24} expect={:<8} outcome={:<12} "
                         "checker={:<10} states={:<8} cache={}".format(
                             {True: "ok", False: "!!", None: "??"}[row["matched"]],
                             row["scenario"],
                             str(row["expect"]), str(row["outcome"]),
                             row["checker"], str(row["states"]), row["cache"]))
        for entry in self.skipped:
            lines.append("  [--] skipped {}: {}".format(
                entry["axes"], entry["reason"]))
        return "\n".join(lines)

    def __repr__(self):
        return "CampaignReport(jobs={}, ok={})".format(len(self.results), self.ok)
