"""SMT-backed unbounded proving: encode nets, pipe to z3, prove or refute.

This package is the solver side of the verification stack.  It turns a
Petri net into SMT-LIB 2 text (:mod:`repro.smt.encoder`), drives an external
``z3`` process over a line-oriented pipe (:mod:`repro.smt.solver`), and
implements three proof engines on top:

* :mod:`repro.smt.bmc` -- bounded model checking by incremental unrolling;
  a complete falsifier with replayable counterexample traces.
* :mod:`repro.smt.kinduction` -- k-induction strengthened with the net's
  place invariants; proves "holds" with **no state bound at all**.
* :mod:`repro.smt.ic3` -- IC3/PDR frame strengthening; produces an explicit
  inductive-invariant certificate alongside the verdict.

The solver is strictly optional, exactly like the NumPy extra: when ``z3``
is not on ``PATH`` (or ``REPRO_NO_Z3`` is set), :func:`solver_available`
is false, the solver-backed checkers of
:mod:`repro.verification.checkers.smt` skip cleanly, and the structural
siphon/trap fallback of :mod:`repro.petri.invariants` still proves
deadlock-freedom without any solver.
"""

from repro.smt.encoder import SmtEncoder
from repro.smt.solver import (
    PipeSolver,
    require_solver,
    solver_available,
    solver_binary,
    solver_fingerprint,
)

__all__ = [
    "PipeSolver",
    "SmtEncoder",
    "require_solver",
    "solver_available",
    "solver_binary",
    "solver_fingerprint",
]
