"""Bounded model checking by incremental unrolling.

The classic SAT/SMT falsification loop: assert the initial marking, then
for growing ``k`` ask the solver whether some execution of exactly ``k``
steps ends in a bad marking.  The unrolling is **incremental** -- one
solver process holds steps ``0..k`` permanently and the bad-state predicate
is probed under a ``push``/``pop`` scope, so the solver's learned clauses
carry across depths instead of being rebuilt per query.

BMC is a complete falsifier (a violation at depth ``d`` is found once ``k``
reaches ``d``) and never proves: exhausting ``max_depth`` without a model
is an ``unknown`` outcome.  Place invariants are asserted at every step --
sound, since a semiflow holds initially and is preserved by every firing --
which prunes the search space the solver has to consider.

A ``sat`` answer is turned into a trace of transition names read off the
step selectors ``|t@0| .. |t@k-1|``; the checker layer replays the trace
through the net before trusting it.
"""

from repro.exceptions import SolverError
from repro.smt import proof
from repro.smt.solver import PipeSolver


def extend_unrolling(solver, encoder, semiflows, step):
    """Declare marking *step + 1* and assert the step relation of *step*."""
    solver.write(*encoder.declare_marking(step + 1))
    solver.write(*encoder.declare_step(step))
    for formula in encoder.marking_bounds(step + 1):
        solver.write("(assert {})".format(formula))
    for formula in encoder.invariants(semiflows, step + 1):
        solver.write("(assert {})".format(formula))
    for formula in encoder.step_formulas(step):
        solver.write("(assert {})".format(formula))


def read_trace(solver, encoder, steps):
    """Read the fired-transition names of a satisfying unrolling.

    Raises :class:`~repro.exceptions.SolverError` on out-of-range selector
    values (a protocol violation, not a property verdict).
    """
    if steps <= 0:
        return []
    names = [encoder.selector(step) for step in range(steps)]
    values = solver.get_values(names)
    trace = []
    for step in range(steps):
        index = values.get("t@{}".format(step))
        if index is None or not 0 <= index < len(encoder.transition_names):
            raise SolverError(
                "solver model has no valid transition selector for step "
                "{} (got {!r})".format(step, index))
        trace.append(encoder.transition_names[index])
    return trace


def run_bmc(encoder, bad, max_depth=64, semiflows=(), solver=None,
            timeout=None):
    """Search for a bad marking within *max_depth* steps.

    *bad* is a callable mapping an unrolling step to a formula string over
    that step's marking.  *solver* is an existing :class:`PipeSolver` (the
    caller keeps ownership) or ``None`` to run one for the duration of the
    search.  Returns a :class:`repro.smt.proof.ProofOutcome` -- ``violated``
    with a replayable trace, or ``unknown``.
    """
    own_solver = solver is None
    if own_solver:
        solver = PipeSolver(timeout=timeout) if timeout else PipeSolver()
    try:
        solver.write(*encoder.declare_marking(0))
        for formula in encoder.marking_bounds(0):
            solver.write("(assert {})".format(formula))
        for formula in encoder.invariants(semiflows, 0):
            solver.write("(assert {})".format(formula))
        solver.write("(assert {})".format(encoder.initial(0)))
        for depth in range(max_depth + 1):
            solver.push()
            solver.write("(assert {})".format(bad(depth)))
            status = solver.check_sat(timeout=timeout)
            if status == "sat":
                trace = read_trace(solver, encoder, depth)
                solver.pop()
                return proof.violated(
                    "bounded model checking found a bad marking after "
                    "{} step(s)".format(depth), trace, depth=depth)
            solver.pop()
            if status == "unknown":
                return proof.unknown(
                    "the solver answered unknown at unrolling depth "
                    "{}".format(depth), depth=depth)
            if depth < max_depth:
                extend_unrolling(solver, encoder, semiflows, depth)
        return proof.unknown(
            "no counterexample within {} unrolling step(s); bounded model "
            "checking cannot prove".format(max_depth), depth=max_depth)
    finally:
        if own_solver:
            solver.close()
