"""k-induction: unbounded "holds" proofs by strengthened induction.

Two cooperating solver sessions, as in SMPT's ``kinduction`` method:

* the **base** session is a BMC unrolling rooted at the initial marking; at
  iteration ``k`` it checks whether a bad marking is reachable in exactly
  ``k - 1`` steps (so every violation is caught at its exact depth, with a
  replayable trace);
* the **step** session has *no* initial-marking constraint: it holds ``k``
  arbitrary consecutive markings, each satisfying the place invariants and
  bounds, with the first ``k - 1`` known good, and asks whether step ``k``
  can still be bad.  An ``unsat`` answer is the induction step: together
  with the base cases it proves **no reachable marking is ever bad, with no
  state bound at all**.

Two standard strengthenings keep the induction from being hopelessly weak:
the net's semiflows are asserted at every step (sound: a semiflow holds
initially and is preserved by every firing, so adding it only removes
unreachable pseudo-states from the induction hypothesis), and the unrolled
markings are constrained pairwise distinct (the *simple path* condition:
if a bad marking is reachable at all, it is reachable along a loop-free
path, so restricting the step case to loop-free paths is sound -- and it
makes k-induction complete on finite state spaces).
"""

from repro.smt import proof
from repro.smt.bmc import extend_unrolling, read_trace
from repro.smt.solver import PipeSolver


def run_kinduction(encoder, bad, max_depth=32, semiflows=(),
                   simple_path=True, timeout=None, solver_factory=PipeSolver):
    """Prove or refute "some reachable marking satisfies *bad*".

    *bad* maps an unrolling step to a formula string.  Returns a
    :class:`repro.smt.proof.ProofOutcome`: ``proved`` (unbounded),
    ``violated`` with a replayable trace, or ``unknown`` when *max_depth*
    inductions fail to close.
    """
    make = (lambda: solver_factory(timeout=timeout)) if timeout \
        else solver_factory
    base = make()
    step = make()
    try:
        # Base session: bounds + invariants + the initial marking at step 0.
        base.write(*encoder.declare_marking(0))
        for formula in encoder.marking_bounds(0):
            base.write("(assert {})".format(formula))
        for formula in encoder.invariants(semiflows, 0):
            base.write("(assert {})".format(formula))
        base.write("(assert {})".format(encoder.initial(0)))
        # Step session: the same, minus the initial marking.
        step.write(*encoder.declare_marking(0))
        for formula in encoder.marking_bounds(0):
            step.write("(assert {})".format(formula))
        for formula in encoder.invariants(semiflows, 0):
            step.write("(assert {})".format(formula))

        for k in range(1, max_depth + 1):
            # Base case: is a bad marking reachable in exactly k - 1 steps?
            base.push()
            base.write("(assert {})".format(bad(k - 1)))
            status = base.check_sat(timeout=timeout)
            if status == "sat":
                trace = read_trace(base, encoder, k - 1)
                base.pop()
                return proof.violated(
                    "the base case found a bad marking after {} "
                    "step(s)".format(k - 1), trace, depth=k - 1)
            base.pop()
            if status == "unknown":
                return proof.unknown(
                    "the solver answered unknown on the depth-{} base "
                    "case".format(k - 1), depth=k - 1)
            extend_unrolling(base, encoder, semiflows, k - 1)

            # Induction step: k - 1 good steps, can step k be bad?  The
            # negated base case just proved is asserted permanently -- that
            # is what makes this *k*-induction rather than plain induction.
            step.write("(assert (not {}))".format(bad(k - 1)))
            extend_unrolling(step, encoder, semiflows, k - 1)
            if simple_path:
                for earlier in range(k):
                    step.write("(assert {})".format(
                        encoder.distinct_markings(earlier, k)))
            step.push()
            step.write("(assert {})".format(bad(k)))
            status = step.check_sat(timeout=timeout)
            step.pop()
            if status == "unsat":
                return proof.proved(
                    "k-induction closed at k={}: no reachable marking is "
                    "bad (holds, unbounded)".format(k), depth=k)
            if status == "unknown":
                return proof.unknown(
                    "the solver answered unknown on the k={} induction "
                    "step".format(k), depth=k)
        return proof.unknown(
            "k-induction did not close within {} step(s)".format(max_depth),
            depth=max_depth)
    finally:
        base.close()
        step.close()
