"""SMT-LIB encoding of Petri-net semantics: markings, steps, predicates.

The encoding follows the functional style SMPT uses for its z3 backend:

* a marking at unrolling step ``k`` is one Int variable ``|p@k|`` per
  place, constrained non-negative (and ``<= 1`` when the caller certified
  1-safety through the place invariants -- the :class:`SmtEncoder` never
  assumes safeness on its own);
* the transition fired at step ``k`` is a single Int selector ``|t@k|``
  ranging over the sorted transition names -- the same canonical order the
  compiled bitmask engine uses, so a model's selector values replay
  directly through :meth:`repro.petri.net.PetriNet.fire`;
* the step relation asserts (a) the selected transition is enabled --
  consume arcs need ``weight`` tokens, read arcs need one token -- and
  (b) every place's next value is its current value plus an ``ite`` chain
  over the transitions that *touch* it.  The size of the step formula is
  O(arcs), not O(places x transitions): untouched places contribute one
  frame equality, read arcs contribute nothing to the update at all.

Reach predicates are translated from the AST directly (sound for arbitrary
token counts -- no 1-safe cube normalisation involved); the DNF cubes of
:mod:`repro.reach.cubes` are used by the IC3 engine, which runs on
certified 1-safe nets only.  Place invariants (semiflows) become per-step
linear equalities; asserting them is sound at any step because a semiflow
holds at the initial marking and is preserved by every firing.

Everything returned here is either a *declaration line* (ready to send) or
a *formula string* (the caller wraps it in ``(assert ...)`` or combines it
further).  Formulas are plain QF-LIA terms, so the evaluator of
:mod:`repro.smt.sexpr` can check them against concrete markings -- the
solver-free differential oracle used by ``tests/test_smt.py``.
"""

from repro.exceptions import ReachEvaluationError
from repro.reach.ast import (
    And,
    Compare,
    Constant,
    Implies,
    Marked,
    Not,
    Or,
)

#: Reach comparison operators with a 1:1 SMT-LIB spelling.
_DIRECT_OPERATORS = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "="}


def conjoin(formulas):
    """``(and ...)`` over formula strings (``true`` when empty)."""
    formulas = [f for f in formulas if f != "true"]
    if not formulas:
        return "true"
    if len(formulas) == 1:
        return formulas[0]
    return "(and {})".format(" ".join(formulas))


def disjoin(formulas):
    """``(or ...)`` over formula strings (``false`` when empty)."""
    formulas = [f for f in formulas if f != "false"]
    if not formulas:
        return "false"
    if len(formulas) == 1:
        return formulas[0]
    return "(or {})".format(" ".join(formulas))


def negate(formula):
    if formula == "true":
        return "false"
    if formula == "false":
        return "true"
    return "(not {})".format(formula)


def _literal(value):
    """An integer literal (SMT-LIB spells negatives as ``(- n)``)."""
    return str(value) if value >= 0 else "(- {})".format(-value)


class SmtEncoder:
    """Encode one Petri net into SMT-LIB declaration and formula strings."""

    def __init__(self, net, safe=False):
        self.net = net
        #: When true, marking bounds also assert ``<= 1``.  The caller must
        #: have certified 1-safety (via the place invariants) first; the
        #: encoder does not check.
        self.safe = bool(safe)
        self.place_names = sorted(net.places)
        self.transition_names = sorted(net.transitions)
        self.transition_index = {
            name: index for index, name in enumerate(self.transition_names)}
        # Per transition: the token requirement of enabledness (consume
        # weights joined with read arcs) and the non-zero marking deltas.
        self._need = []
        self._delta = []
        # Per place: the transitions that change it, as (index, delta).
        self._touched = {}
        for index, name in enumerate(self.transition_names):
            consume = net.consumed_places(name)
            produce = net.produced_places(name)
            read = net.read_places(name)
            need = dict(consume)
            for place in read:
                need[place] = max(need.get(place, 0), 1)
            delta = dict(produce)
            for place, weight in consume.items():
                delta[place] = delta.get(place, 0) - weight
            delta = {place: d for place, d in delta.items() if d}
            self._need.append(need)
            self._delta.append(delta)
            for place, d in delta.items():
                self._touched.setdefault(place, []).append((index, d))

    # -- naming ---------------------------------------------------------------

    @staticmethod
    def place(name, step):
        """The Int variable of place *name* at unrolling step *step*."""
        return "|{}@{}|".format(name, step)

    @staticmethod
    def selector(step):
        """The Int selector of the transition fired at step *step*."""
        return "|t@{}|".format(step)

    def place_variables(self, step):
        return [self.place(name, step) for name in self.place_names]

    # -- markings -------------------------------------------------------------

    def declare_marking(self, step):
        """Declaration lines for the marking variables of *step*."""
        return ["(declare-const {} Int)".format(var)
                for var in self.place_variables(step)]

    def marking_bounds(self, step):
        """Range formulas: ``p >= 0``, plus ``p <= 1`` for certified nets."""
        formulas = []
        for var in self.place_variables(step):
            if self.safe:
                formulas.append("(and (>= {0} 0) (<= {0} 1))".format(var))
            else:
                formulas.append("(>= {} 0)".format(var))
        return formulas

    def initial(self, step=0, marking=None):
        """The formula pinning *step* to the initial (or given) marking."""
        if marking is None:
            marking = self.net.initial_marking()
        return conjoin([
            "(= {} {})".format(self.place(name, step), _literal(marking[name]))
            for name in self.place_names])

    def marking_from_model(self, values, step=0):
        """Decode a ``get_values`` answer into a ``{place: tokens}`` dict."""
        marking = {}
        for name in self.place_names:
            key = "{}@{}".format(name, step)
            if key not in values:
                return None
            marking[name] = values[key]
        return marking

    # -- the transition relation ----------------------------------------------

    def enabled(self, index, step):
        """The enabledness formula of transition *index* at *step*."""
        return conjoin([
            "(>= {} {})".format(self.place(place, step), _literal(tokens))
            for place, tokens in sorted(self._need[index].items())])

    def deadlock(self, step):
        """No transition is enabled at *step*."""
        return conjoin([
            negate(self.enabled(index, step))
            for index in range(len(self.transition_names))])

    def declare_step(self, step):
        """Declaration lines for the selector of *step*."""
        return ["(declare-const {} Int)".format(self.selector(step))]

    def step_formulas(self, step):
        """Formulas relating the markings of *step* and *step + 1*.

        ``selector`` ranges over the transitions, the selected transition is
        enabled at *step*, and every place is updated by exactly the
        selected transition's effect (the frame equality for untouched
        places).  The caller asserts each formula (or folds them under an
        activation literal, as IC3 does).
        """
        selector = self.selector(step)
        count = len(self.transition_names)
        formulas = [
            "(and (>= {0} 0) (< {0} {1}))".format(selector, count),
            disjoin([
                conjoin(["(= {} {})".format(selector, index),
                         self.enabled(index, step)])
                for index in range(count)]),
        ]
        for name in self.place_names:
            current = self.place(name, step)
            following = self.place(name, step + 1)
            touched = self._touched.get(name)
            if not touched:
                formulas.append("(= {} {})".format(following, current))
                continue
            update = "0"
            for index, delta in reversed(touched):
                update = "(ite (= {} {}) {} {})".format(
                    selector, index, _literal(delta), update)
            formulas.append(
                "(= {} (+ {} {}))".format(following, current, update))
        return formulas

    def distinct_markings(self, step_a, step_b):
        """Some place differs between the markings of the two steps."""
        return disjoin([
            "(not (= {} {}))".format(self.place(name, step_a),
                                     self.place(name, step_b))
            for name in self.place_names])

    # -- predicates and invariants --------------------------------------------

    def predicate(self, expression, step):
        """Translate a Reach AST into a formula over the *step* marking.

        Sound for arbitrary token counts: token comparisons translate
        directly, with no 1-safe normalisation.  Raises
        :class:`~repro.exceptions.ReachEvaluationError` on AST nodes outside
        the Reach core (none exist today, but a loud failure beats encoding
        the wrong property).
        """
        if isinstance(expression, Constant):
            return "true" if expression.value else "false"
        if isinstance(expression, Marked):
            return "(>= {} 1)".format(self.place(expression.place, step))
        if isinstance(expression, Compare):
            variable = self.place(expression.place, step)
            value = _literal(expression.value)
            if expression.operator in _DIRECT_OPERATORS:
                return "({} {} {})".format(
                    _DIRECT_OPERATORS[expression.operator], variable, value)
            if expression.operator == "!=":
                return "(not (= {} {}))".format(variable, value)
        if isinstance(expression, Not):
            return negate(self.predicate(expression.operand, step))
        if isinstance(expression, And):
            return conjoin([self.predicate(expression.left, step),
                            self.predicate(expression.right, step)])
        if isinstance(expression, Or):
            return disjoin([self.predicate(expression.left, step),
                            self.predicate(expression.right, step)])
        if isinstance(expression, Implies):
            return "(=> {} {})".format(self.predicate(expression.left, step),
                                       self.predicate(expression.right, step))
        raise ReachEvaluationError(
            "cannot encode Reach node {!r} into SMT-LIB".format(
                type(expression).__name__))

    def cube(self, cube, step):
        """A 1-safe DNF cube as a formula (used by the IC3 engine)."""
        literals = []
        for place in sorted(cube.true_places):
            literals.append("(>= {} 1)".format(self.place(place, step)))
        for place in sorted(cube.false_places):
            literals.append("(<= {} 0)".format(self.place(place, step)))
        return conjoin(literals)

    def invariant(self, semiflow, step):
        """A place invariant as a linear equality over the *step* marking."""
        terms = []
        for place, weight in sorted(semiflow.weights.items()):
            variable = self.place(place, step)
            terms.append(variable if weight == 1
                         else "(* {} {})".format(weight, variable))
        total = terms[0] if len(terms) == 1 else "(+ {})".format(" ".join(terms))
        return "(= {} {})".format(total, _literal(semiflow.value))

    def invariants(self, semiflows, step):
        return [self.invariant(semiflow, step) for semiflow in semiflows]

    def excess_tokens(self, bound, step):
        """Some place holds more than *bound* tokens at *step*."""
        return disjoin([
            "(> {} {})".format(var, _literal(bound))
            for var in self.place_variables(step)])

    def __repr__(self):
        return "SmtEncoder({!r}, places={}, transitions={}, safe={})".format(
            self.net.name, len(self.place_names),
            len(self.transition_names), self.safe)
