"""IC3/PDR: incremental inductive proofs with frame strengthening.

The property-directed reachability loop, specialised to certified 1-safe
Petri nets (every marking variable is 0/1, so states and blocked regions
are the same :class:`~repro.reach.cubes.Cube` objects the inductive checker
reasons with):

* **Frames** ``F_1 .. F_N`` are growing sets of blocked cubes; frame ``i``
  over-approximates the markings reachable in at most ``i`` steps (delta
  encoding: a cube stored at level ``j`` is blocked in every ``F_i`` with
  ``i <= j``).  ``F_0`` is the initial marking itself.
* **Blocking**: while a bad marking satisfies ``F_N``, its cube is pushed
  down a priority queue of proof obligations.  An obligation at level ``i``
  asks "can ``F_{i-1}`` reach this cube in one step?"; an ``unsat`` answer
  blocks a *generalised* cube (literals are dropped greedily while the
  query stays unsat and the initial marking stays outside), an ``sat``
  answer spawns the predecessor obligation one level down.  Reaching level
  0 reconstructs a concrete counterexample trace from the chain of
  predecessor models.
* **Propagation**: when no bad marking satisfies ``F_N``, every clause that
  is inductive relative to its frame moves up one frame; two adjacent
  frames becoming equal means a fixpoint -- the clauses of that frame are
  an **inductive invariant** separating the reachable markings from the bad
  ones.

The invariant is not taken on faith: before reporting ``proved``, the
engine re-checks the three defining properties (initiation, consecution,
safety) with fresh solver queries and returns ``unknown`` if any fails --
so an implementation bug degrades to inconclusive, never to unsound.  The
certificate (blocked cubes plus the semiflow equalities asserted globally)
is attached to the outcome.

One solver session serves the whole run: markings at steps 0 and 1, the
transition relation folded under a Boolean activation literal (so queries
without a step -- "does this cube intersect the bad states?" -- do not
force a successor to exist), and every frame/query particular asserted
under ``push``/``pop``.
"""

import heapq
import time

from repro.exceptions import VerificationError
from repro.reach.cubes import Cube
from repro.smt import proof
from repro.smt.solver import PipeSolver

#: The Boolean literal that switches the step-0 -> step-1 transition
#: relation on inside ``check-sat-assuming`` queries.
TRANSITION_LITERAL = "|T.act|"


class _Obligation:
    """A cube to block at a frame, chained toward the bad states."""

    __slots__ = ("cube", "level", "transition", "successor")

    def __init__(self, cube, level, transition=None, successor=None):
        self.cube = cube
        self.level = level
        #: Transition name firing from this cube's marking into the
        #: successor obligation's marking (``None`` for the bad state).
        self.transition = transition
        self.successor = successor


class Ic3:
    """One IC3 run over an encoded, certified 1-safe net."""

    def __init__(self, encoder, bad_formula, initial_bad=False, semiflows=(),
                 solver=None, max_frames=64, max_queries=100000,
                 wall_timeout=None, timeout=None):
        if not encoder.safe:
            raise VerificationError(
                "IC3 requires an encoder with certified 1-safe bounds "
                "(safe=True)")
        self.encoder = encoder
        self.bad_formula = bad_formula
        #: Whether the initial marking itself satisfies the bad predicate
        #: (decided exactly by the caller, who holds the Reach AST).  IC3
        #: must know: blocking a cube that contains the initial marking
        #: would be unsound, so a bad initial marking is a depth-0
        #: counterexample, not a proof obligation.
        self.initial_bad = bool(initial_bad)
        self.semiflows = list(semiflows)
        self.max_frames = int(max_frames)
        self.max_queries = int(max_queries)
        self.wall_timeout = wall_timeout
        self.timeout = timeout
        self.queries = 0
        self._deadline = None
        self._own_solver = solver is None
        if self._own_solver:
            solver = PipeSolver(timeout=timeout) if timeout else PipeSolver()
        self.solver = solver
        self.initial_marking = encoder.net.initial_marking()
        self._initial_formula = encoder.initial(0)
        #: Delta-encoded frames: ``frames[j]`` holds the cubes whose clause
        #: is in ``F_i`` exactly for ``i <= j``.  Index 0 is unused (frame 0
        #: is the initial marking, handled symbolically).
        self.frames = [[], []]
        self._setup()

    # -- solver session -------------------------------------------------------

    def _setup(self):
        solver, encoder = self.solver, self.encoder
        solver.write(*encoder.declare_marking(0))
        solver.write(*encoder.declare_marking(1))
        solver.write(*encoder.declare_step(0))
        for step in (0, 1):
            for formula in encoder.marking_bounds(step):
                solver.write("(assert {})".format(formula))
            for formula in encoder.invariants(self.semiflows, step):
                solver.write("(assert {})".format(formula))
        solver.write("(declare-const {} Bool)".format(TRANSITION_LITERAL))
        for formula in encoder.step_formulas(0):
            solver.write("(assert (=> {} {}))".format(
                TRANSITION_LITERAL, formula))

    def _check(self, assuming=()):
        self.queries += 1
        return self.solver.check_sat(timeout=self.timeout, assuming=assuming)

    def _assert_frame(self, level):
        """Assert the clauses of ``F_level`` over the step-0 marking."""
        if level == 0:
            self.solver.write("(assert {})".format(self._initial_formula))
            return
        for stored_level in range(level, len(self.frames)):
            for cube in self.frames[stored_level]:
                self.solver.write("(assert (not {}))".format(
                    self.encoder.cube(cube, 0)))

    def _frame_clauses(self, level):
        """The cubes blocked in ``F_level`` (union of levels >= *level*)."""
        clauses = []
        for stored_level in range(max(level, 1), len(self.frames)):
            clauses.extend(self.frames[stored_level])
        return clauses

    # -- queries --------------------------------------------------------------

    def _bad_state_in(self, level):
        """A marking of ``F_level`` satisfying the bad predicate, or None."""
        solver = self.solver
        solver.push()
        self._assert_frame(level)
        solver.write("(assert {})".format(self.bad_formula))
        status = self._check()
        if status != "sat":
            solver.pop()
            return None if status == "unsat" else "unknown"
        values = solver.get_values(self.encoder.place_variables(0))
        solver.pop()
        return self._cube_from_model(values, 0)

    def _relative_consecution(self, level, cube, want_model=False):
        """Can ``F_level /\\ not cube`` reach *cube* in one step?

        Returns ``("unsat", None, None)`` when the cube is inductive
        relative to the frame, ``("sat", predecessor, transition)`` with the
        predecessor marking cube otherwise.
        """
        solver, encoder = self.solver, self.encoder
        solver.push()
        self._assert_frame(level)
        solver.write("(assert (not {}))".format(encoder.cube(cube, 0)))
        solver.write("(assert {})".format(encoder.cube(cube, 1)))
        status = self._check(assuming=(TRANSITION_LITERAL,))
        if status != "sat":
            solver.pop()
            return status, None, None
        predecessor, transition = None, None
        if want_model:
            names = encoder.place_variables(0) + [encoder.selector(0)]
            values = solver.get_values(names)
            predecessor = self._cube_from_model(values, 0)
            index = values.get("t@0")
            if index is not None and 0 <= index < len(encoder.transition_names):
                transition = encoder.transition_names[index]
        solver.pop()
        return status, predecessor, transition

    def _cube_from_model(self, values, step):
        true_places, false_places = [], []
        for name in self.encoder.place_names:
            tokens = values.get("{}@{}".format(name, step), 0)
            (true_places if tokens else false_places).append(name)
        return Cube(true_places, false_places)

    # -- blocking -------------------------------------------------------------

    def _syntactically_blocked(self, cube, level):
        return any(clause.true_places <= cube.true_places
                   and clause.false_places <= cube.false_places
                   for clause in self._frame_clauses(level))

    def _generalize(self, level, cube):
        """Drop literals while the cube stays inductive relative to *level*."""
        literals = ([(place, True) for place in sorted(cube.true_places)]
                    + [(place, False) for place in sorted(cube.false_places)])
        for place, positive in literals:
            if len(cube.true_places) + len(cube.false_places) <= 1:
                break
            if positive:
                candidate = Cube(cube.true_places - {place}, cube.false_places)
            else:
                candidate = Cube(cube.true_places, cube.false_places - {place})
            # Never block a region containing the initial marking.
            if candidate.evaluate(self.initial_marking):
                continue
            status, _, _ = self._relative_consecution(level, candidate)
            if status == "unsat":
                cube = candidate
        return cube

    def _add_blocked_cube(self, cube, level):
        """Record *cube* as blocked through ``F_level`` (with subsumption)."""
        level = min(level, len(self.frames) - 1)
        for stored_level in range(1, level + 1):
            self.frames[stored_level] = [
                kept for kept in self.frames[stored_level]
                if not (cube.true_places <= kept.true_places
                        and cube.false_places <= kept.false_places)]
        self.frames[level].append(cube)

    def _block(self, bad_cube, level):
        """Block *bad_cube* at *level*; return a counterexample or None.

        The returned value is ``None`` (blocked), a list of transition
        names (a counterexample trace from the initial marking), or the
        string ``"unknown"`` on solver/budget trouble.
        """
        counter = 0
        root = _Obligation(bad_cube, level)
        heap = [(level, 0, root)]
        while heap:
            if self._out_of_budget():
                return "unknown"
            obligation_level, _, obligation = heapq.heappop(heap)
            if obligation_level == 0:
                return self._trace_of(obligation)
            if self._syntactically_blocked(obligation.cube, obligation_level):
                continue
            status, predecessor, transition = self._relative_consecution(
                obligation_level - 1, obligation.cube, want_model=True)
            if status == "unknown":
                return "unknown"
            if status == "unsat":
                generalized = self._generalize(
                    obligation_level - 1, obligation.cube)
                self._add_blocked_cube(generalized, obligation_level)
                if obligation_level < level:
                    counter += 1
                    heapq.heappush(
                        heap, (obligation_level + 1, counter, obligation))
                continue
            predecessor_obligation = _Obligation(
                predecessor, obligation_level - 1, transition=transition,
                successor=obligation)
            counter += 1
            heapq.heappush(
                heap, (obligation_level - 1, counter, predecessor_obligation))
            counter += 1
            heapq.heappush(heap, (obligation_level, counter, obligation))
        return None

    def _trace_of(self, obligation):
        """Fired-transition names from the initial marking to a bad cube."""
        trace = []
        node = obligation
        while node is not None and node.transition is not None:
            trace.append(node.transition)
            node = node.successor
        return trace

    # -- certificate ----------------------------------------------------------

    def _certificate_valid(self, clauses):
        """Re-check initiation, consecution and safety of the invariant."""
        solver, encoder = self.solver, self.encoder
        violation_now = "(or {})".format(" ".join(
            encoder.cube(cube, 0) for cube in clauses)) if clauses else "false"
        violation_next = "(or {})".format(" ".join(
            encoder.cube(cube, 1) for cube in clauses)) if clauses else "false"
        # Initiation: the initial marking satisfies every clause.
        solver.push()
        solver.write("(assert {})".format(self._initial_formula))
        solver.write("(assert {})".format(violation_now))
        initiation = self._check()
        solver.pop()
        # Consecution: no firing leaves the invariant region.
        solver.push()
        for cube in clauses:
            solver.write("(assert (not {}))".format(encoder.cube(cube, 0)))
        solver.write("(assert {})".format(violation_next))
        consecution = self._check(assuming=(TRANSITION_LITERAL,))
        solver.pop()
        # Safety: the invariant region contains no bad marking.
        solver.push()
        for cube in clauses:
            solver.write("(assert (not {}))".format(encoder.cube(cube, 0)))
        solver.write("(assert {})".format(self.bad_formula))
        safety = self._check()
        solver.pop()
        return initiation == "unsat" and consecution == "unsat" \
            and safety == "unsat"

    # -- main loop ------------------------------------------------------------

    def _out_of_budget(self):
        if self.queries > self.max_queries:
            return True
        return (self._deadline is not None
                and time.monotonic() > self._deadline)

    def run(self):
        """Run the IC3 loop to a verdict."""
        self._deadline = (time.monotonic() + self.wall_timeout
                          if self.wall_timeout else None)
        try:
            return self._run()
        finally:
            if self._own_solver:
                self.solver.close()

    def _run(self):
        # Level 0: is the initial marking itself bad?
        if self.initial_bad:
            return proof.violated(
                "the initial marking is a bad marking", [], depth=0)
        while len(self.frames) - 1 < self.max_frames:
            if self._out_of_budget():
                return self._budget_outcome()
            level = len(self.frames) - 1
            found = self._bad_state_in(level)
            if found == "unknown":
                return proof.unknown(
                    "the solver answered unknown while scanning frame "
                    "{}".format(level), depth=level)
            if found is not None:
                result = self._block(found, level)
                if result == "unknown":
                    return self._budget_outcome()
                if result is not None:
                    return proof.violated(
                        "IC3 reconstructed a bad marking {} step(s) from "
                        "the initial marking".format(len(result)), result,
                        depth=level)
                continue
            # Frame clean: open the next one and propagate clauses forward.
            self.frames.append([])
            for propagation_level in range(1, len(self.frames) - 1):
                for cube in list(self.frames[propagation_level]):
                    if cube not in self.frames[propagation_level]:
                        continue  # subsumed away by an earlier propagation
                    if self._out_of_budget():
                        return self._budget_outcome()
                    status, _, _ = self._relative_consecution(
                        propagation_level, cube)
                    if status == "unsat":
                        self.frames[propagation_level].remove(cube)
                        self._add_blocked_cube(cube, propagation_level + 1)
                if not self.frames[propagation_level]:
                    clauses = self._frame_clauses(propagation_level + 1)
                    if not self._certificate_valid(clauses):
                        return proof.unknown(
                            "IC3 reached a fixpoint but its invariant "
                            "failed re-validation", depth=propagation_level)
                    certificate = {
                        "clauses": [
                            {"marked": sorted(cube.true_places),
                             "empty": sorted(cube.false_places)}
                            for cube in clauses],
                        "semiflows": len(self.semiflows),
                        "frames": len(self.frames) - 1,
                    }
                    return proof.proved(
                        "IC3 closed with a {}-clause inductive invariant "
                        "after {} frame(s): no reachable marking is bad "
                        "(holds, unbounded)".format(
                            len(clauses), len(self.frames) - 1),
                        depth=len(self.frames) - 1, certificate=certificate)
        return proof.unknown(
            "IC3 did not converge within {} frame(s)".format(self.max_frames),
            depth=self.max_frames)

    def _budget_outcome(self):
        return proof.unknown(
            "IC3 exceeded its budget ({} solver queries, {} frame(s))".format(
                self.queries, len(self.frames) - 1),
            depth=len(self.frames) - 1)


def run_ic3(encoder, bad_formula, initial_bad=False, semiflows=(),
            solver=None, max_frames=64, max_queries=100000,
            wall_timeout=None, timeout=None):
    """Run IC3; see :class:`Ic3`.  Returns a :class:`repro.smt.proof.ProofOutcome`."""
    engine = Ic3(encoder, bad_formula, initial_bad=initial_bad,
                 semiflows=semiflows, solver=solver, max_frames=max_frames,
                 max_queries=max_queries, wall_timeout=wall_timeout,
                 timeout=timeout)
    return engine.run()
