"""A minimal S-expression toolkit for the SMT-LIB pipe protocol.

The solver interface of :mod:`repro.smt.solver` talks SMT-LIB 2 over a
pipe: commands go down as text, answers come back as S-expressions
(``sat``, ``((|p@0| 1) (|t@0| 3))``, ``(error "...")``).  This module is
the small amount of machinery both directions share:

* :func:`tokenize` / :func:`parse` / :func:`parse_all` -- turn a reply into
  nested lists of atom strings (``|quoted symbols|`` and ``"strings"`` are
  kept as single atoms);
* :func:`serialize` -- the inverse, for diagnostics and tests;
* :func:`balanced` -- is a partial reply complete yet?  The solver's reader
  loop appends lines until the parentheses balance, which is what makes the
  line-oriented protocol robust to multi-line ``get-value`` answers;
* :func:`evaluate` -- a tiny QF-LIA term evaluator.  It gives the encoder a
  solver-free differential oracle: every formula the encoder emits can be
  checked against concrete markings of an explored graph without z3 being
  installed, so the encoding itself is tested on every CI runner.
"""

import operator

from repro.exceptions import SolverError

_COMPARISONS = {"<": operator.lt, "<=": operator.le,
                ">": operator.gt, ">=": operator.ge}

_WHITESPACE = " \t\r\n"
_DELIMITERS = _WHITESPACE + "()|;\""


def tokenize(text):
    """Split SMT-LIB *text* into parenthesis and atom tokens."""
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in _WHITESPACE:
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == "|":
            end = text.find("|", i + 1)
            if end < 0:
                raise SolverError(
                    "unterminated |symbol| in solver output: {!r}".format(text))
            tokens.append(text[i:end + 1])
            i = end + 1
        elif ch == '"':
            j = i + 1
            while j < n:
                if text[j] == '"':
                    if j + 1 < n and text[j + 1] == '"':
                        j += 2  # SMT-LIB escapes a quote by doubling it
                        continue
                    break
                j += 1
            if j >= n:
                raise SolverError(
                    "unterminated string in solver output: {!r}".format(text))
            tokens.append(text[i:j + 1])
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in _DELIMITERS:
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def parse_all(text):
    """Parse *text* into a list of S-expressions (atoms are strings)."""
    expressions = []
    stack = [expressions]
    for token in tokenize(text):
        if token == "(":
            nested = []
            stack[-1].append(nested)
            stack.append(nested)
        elif token == ")":
            if len(stack) == 1:
                raise SolverError(
                    "unbalanced ')' in solver output: {!r}".format(text))
            stack.pop()
        else:
            stack[-1].append(token)
    if len(stack) != 1:
        raise SolverError(
            "unbalanced '(' in solver output: {!r}".format(text))
    return expressions


def parse(text):
    """Parse exactly one S-expression out of *text*."""
    expressions = parse_all(text)
    if len(expressions) != 1:
        raise SolverError(
            "expected one S-expression, found {}: {!r}".format(
                len(expressions), text))
    return expressions[0]


def serialize(expression):
    """Render a parsed S-expression back into SMT-LIB text."""
    if isinstance(expression, str):
        return expression
    return "({})".format(" ".join(serialize(part) for part in expression))


def balanced(text):
    """``True`` when *text* closes every parenthesis it opens.

    Respects ``|symbol|`` and ``"string"`` quoting, so a pipe-quoted ``(``
    never miscounts.  Used by the solver's reader loop to decide whether an
    answer needs more lines.
    """
    depth = 0
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "|":
            end = text.find("|", i + 1)
            if end < 0:
                return False
            i = end + 1
        elif ch == '"':
            j = i + 1
            while j < n:
                if text[j] == '"':
                    if j + 1 < n and text[j + 1] == '"':
                        j += 2
                        continue
                    break
                j += 1
            if j >= n:
                return False
            i = j + 1
        else:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth < 0:
                    return True  # over-closed: let the parser complain
            i += 1
    return depth == 0


def atom_name(atom):
    """The bare name of a (possibly ``|``-quoted) symbol atom."""
    if len(atom) >= 2 and atom.startswith("|") and atom.endswith("|"):
        return atom[1:-1]
    return atom


def _as_int(value):
    try:
        return int(value)
    except ValueError:
        return None


def evaluate(expression, env):
    """Evaluate a parsed QF-LIA term under *env* (name -> int/bool).

    Environment keys are bare names (without ``|`` quoting).  Supports the
    connectives and arithmetic the encoder emits -- ``and or not => = distinct
    < <= > >= + - * ite`` plus integer literals and ``true``/``false`` --
    and raises :class:`~repro.exceptions.SolverError` on anything else, so a
    test failure points at the construct, not at a silently wrong value.
    """
    if isinstance(expression, str):
        if expression == "true":
            return True
        if expression == "false":
            return False
        literal = _as_int(expression)
        if literal is not None:
            return literal
        name = atom_name(expression)
        if name in env:
            return env[name]
        raise SolverError("unbound symbol {!r} in term".format(expression))
    if not expression:
        raise SolverError("cannot evaluate the empty term ()")
    head = expression[0]
    args = expression[1:]
    if head == "ite":
        if len(args) != 3:
            raise SolverError("ite needs 3 arguments, got {}".format(len(args)))
        condition = evaluate(args[0], env)
        return evaluate(args[1] if condition else args[2], env)
    values = [evaluate(argument, env) for argument in args]
    if head == "and":
        return all(values)
    if head == "or":
        return any(values)
    if head == "not":
        if len(values) != 1:
            raise SolverError("not needs 1 argument, got {}".format(len(values)))
        return not values[0]
    if head == "=>":
        result = values[-1]
        for value in reversed(values[:-1]):
            result = (not value) or result
        return result
    if head == "=":
        return all(value == values[0] for value in values[1:])
    if head == "distinct":
        return len(set(values)) == len(values)
    if head in _COMPARISONS:
        compare = _COMPARISONS[head]
        return all(compare(a, b) for a, b in zip(values, values[1:]))
    if head == "+":
        return sum(values)
    if head == "*":
        product = 1
        for value in values:
            product *= value
        return product
    if head == "-":
        if len(values) == 1:
            return -values[0]
        result = values[0]
        for value in values[1:]:
            result -= value
        return result
    raise SolverError("cannot evaluate operator {!r}".format(head))
