"""The common result record of the SMT proof engines.

BMC, k-induction and IC3 all answer the same question -- "is some reachable
marking bad?" -- with the same three-valued outcome the checker layer
expects: ``proved`` (no reachable marking is bad, with no state bound),
``violated`` (a concrete firing sequence reaches a bad marking) or
``unknown`` (budget, timeout, or a solver that declined).  A ``violated``
outcome always carries a *trace* of transition names starting at the
initial marking; the checker layer replays it through
:meth:`repro.petri.net.PetriNet.fire` before trusting it, so a solver bug
can cause an inconclusive verdict but never an unsound one.
"""

PROVED = "proved"
VIOLATED = "violated"
UNKNOWN = "unknown"


class ProofOutcome:
    """Outcome of one SMT proof engine run."""

    __slots__ = ("status", "details", "trace", "depth", "certificate")

    def __init__(self, status, details="", trace=None, depth=None,
                 certificate=None):
        self.status = status
        self.details = details
        #: Transition names firing from the initial marking to a bad
        #: marking (``violated`` outcomes only).
        self.trace = trace
        #: Unrolling depth (BMC/k-induction) or frame count (IC3) reached.
        self.depth = depth
        #: IC3 only: the inductive invariant as a list of blocked-cube
        #: descriptions, a machine-checkable "why it holds".
        self.certificate = certificate

    @property
    def proved(self):
        return self.status == PROVED

    @property
    def violated(self):
        return self.status == VIOLATED

    def __repr__(self):
        return "ProofOutcome({}, depth={}, trace={})".format(
            self.status, self.depth,
            len(self.trace) if self.trace is not None else None)


def proved(details, depth=None, certificate=None):
    return ProofOutcome(PROVED, details=details, depth=depth,
                        certificate=certificate)


def violated(details, trace, depth=None):
    return ProofOutcome(VIOLATED, details=details, trace=trace, depth=depth)


def unknown(details, depth=None):
    return ProofOutcome(UNKNOWN, details=details, depth=depth)
