"""The pipe-to-z3 solver interface: one process, line-oriented SMT-LIB 2.

:class:`PipeSolver` owns one external solver process (``z3 -in -smt2``) and
talks to it over stdin/stdout, the way SMPT and the Model Checking Contest
tools drive their solver portfolios.  One process serves a whole proof
session: the engines of :mod:`repro.smt.bmc` / :mod:`repro.smt.kinduction` /
:mod:`repro.smt.ic3` assert formulas incrementally and use ``push``/``pop``
scopes, so the solver keeps its learned clauses across queries.

Robustness rules the engines rely on:

* **Timeouts cannot hang the caller.**  Every query carries a soft
  solver-side limit (``:timeout``, the solver answers ``unknown``) and a
  hard wall-clock deadline enforced by a reader thread; when the hard
  deadline passes the process is killed and
  :class:`~repro.exceptions.SolverTimeoutError` is raised.
* **A crashed or misbehaving solver is an exception, not a wrong answer.**
  EOF mid-query, an ``(error ...)`` reply or an unparseable answer raise
  :class:`~repro.exceptions.SolverError`; the checkers convert that into an
  inconclusive verdict (containment, never unsoundness).
* **Teardown is clean and idempotent.**  :meth:`PipeSolver.close` sends
  ``(exit)``, waits briefly, then terminates; it is safe to call twice and
  runs from ``__exit__`` and ``__del__`` too, so no zombie solver outlives
  a verification run.

The solver is an optional extra exactly like NumPy: :func:`solver_available`
is the import-time detection, ``REPRO_NO_Z3`` forces it off (the CI job for
the no-solver path), and ``REPRO_SMT_Z3`` points at an alternative binary
(also how the tests inject fake solvers to exercise crash/timeout paths).
"""

import os
import queue
import shutil
import subprocess
import threading
import time

from repro.exceptions import (
    SolverError,
    SolverTimeoutError,
    SolverUnavailableError,
)
from repro.smt.sexpr import atom_name, balanced, parse
from repro.utils import faults as _faults

#: The default solver binary, resolved on PATH.
DEFAULT_SOLVER = "z3"

#: Arguments that put z3 into read-SMT-LIB-2-from-stdin mode.
SOLVER_ARGS = ("-in", "-smt2")

#: Extra wall-clock grace (seconds) past the solver-side soft timeout
#: before the process is killed outright.
HARD_TIMEOUT_GRACE = 5.0


def solver_binary():
    """Path of the SMT solver binary, or ``None`` when unavailable.

    ``REPRO_NO_Z3`` reports the solver as absent even when it is installed
    (mirroring ``REPRO_NO_NUMPY``), so the structural-fallback path can be
    exercised without uninstalling anything; ``REPRO_SMT_Z3`` overrides the
    binary (a PATH name or an absolute path).
    """
    if os.environ.get("REPRO_NO_Z3"):
        return None
    override = os.environ.get("REPRO_SMT_Z3")
    if override:
        if os.path.isfile(override) and os.access(override, os.X_OK):
            return override
        return shutil.which(override)
    return shutil.which(DEFAULT_SOLVER)


def solver_available():
    """``True`` when the optional z3 solver can be run."""
    return solver_binary() is not None


def require_solver():
    """Return the solver binary path or raise an actionable error."""
    binary = solver_binary()
    if binary is not None:
        return binary
    if os.environ.get("REPRO_NO_Z3"):
        raise SolverUnavailableError(
            "the z3 SMT solver is disabled by REPRO_NO_Z3; unset it to use "
            "the solver-backed checkers")
    override = os.environ.get("REPRO_SMT_Z3")
    if override:
        raise SolverUnavailableError(
            "REPRO_SMT_Z3={!r} does not name a runnable solver binary".format(
                override))
    raise SolverUnavailableError(
        "the z3 SMT solver binary was not found on PATH; install z3 "
        "(e.g. `apt-get install z3`) or point REPRO_SMT_Z3 at the binary")


_fingerprints = {}


def solver_fingerprint():
    """A stable identity of the installed solver, or ``None`` when absent.

    The first line of ``z3 --version`` (falling back to the binary path when
    the probe fails).  Campaign option digests fold this in for
    solver-backed checkers, so verdicts produced by different solver
    versions never answer each other from the verdict cache.
    """
    binary = solver_binary()
    if binary is None:
        return None
    cached = _fingerprints.get(binary)
    if cached is None:
        try:
            probe = subprocess.run(
                [binary, "--version"], capture_output=True, text=True,
                timeout=10)
            lines = (probe.stdout or probe.stderr).strip().splitlines()
            cached = lines[0].strip() if lines else binary
        except (OSError, subprocess.TimeoutExpired):
            cached = binary
        _fingerprints[binary] = cached
    return cached


#: Respawns performed by every :class:`PipeSolver` of this process, for
#: the service ``/stats`` endpoint and the checkers' outcome details.
_respawn_lock = threading.Lock()
_respawn_total = 0


def solver_respawns():
    """Total mid-session solver respawns performed in this process."""
    return _respawn_total


#: Commands that must not be replayed into a respawned solver: queries and
#: their per-query knobs (re-issued by the retry itself) and teardown.
_VOLATILE_PREFIXES = ("(check-sat", "(get-value", "(set-option :timeout",
                      "(exit")


class PipeSolver:
    """One external SMT solver process behind a line-oriented pipe.

    A process that dies mid-``check-sat`` is respawned **once**: the
    session transcript (every non-volatile command written so far --
    declarations, assertions, ``push``/``pop`` scopes) is replayed into a
    fresh process and the query retried, so one solver crash costs a
    re-solve instead of an inconclusive verdict.  A second crash on the
    same query raises :class:`~repro.exceptions.SolverError` as before.
    :attr:`respawns` counts this instance's respawns;
    :func:`solver_respawns` the process-wide total.
    """

    def __init__(self, binary=None, timeout=60.0, args=SOLVER_ARGS):
        self.binary = binary or require_solver()
        #: Default per-query wall-clock budget (seconds).
        self.timeout = float(timeout)
        self._args = tuple(args)
        #: Times this session's crashed process was respawned.
        self.respawns = 0
        #: Non-volatile command lines, in order -- the replayable session.
        self._transcript = []
        self._spawn()
        self.write("(set-option :print-success false)")
        self.write("(set-option :produce-models true)")

    # -- plumbing -------------------------------------------------------------

    def _spawn(self):
        """Start the solver process and its reader thread."""
        command = [self.binary, *self._args]
        try:
            self._process = subprocess.Popen(
                command, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL, text=True, bufsize=1)
        except OSError as error:
            raise SolverUnavailableError(
                "cannot start the SMT solver {!r}: {}".format(
                    " ".join(command), error))
        self._closed = False
        self._lines = queue.Queue()
        self._reader = threading.Thread(
            target=self._drain, name="smt-solver-reader", daemon=True)
        self._reader.start()

    def _respawn(self):
        """Replace a dead process and replay the session transcript."""
        global _respawn_total
        self._kill()
        self._spawn()
        self.respawns += 1
        with _respawn_lock:
            _respawn_total += 1
        try:
            for line in self._transcript:
                self._process.stdin.write(line + "\n")
            self._process.stdin.flush()
        except (BrokenPipeError, OSError, ValueError) as error:
            raise SolverError(
                "the respawned SMT solver died replaying the session "
                "({} command(s)): {}".format(len(self._transcript), error))

    def _drain(self):
        """Reader thread: forward solver stdout lines into a queue."""
        try:
            for line in self._process.stdout:
                self._lines.put(line)
        except ValueError:  # stdout closed during teardown
            pass
        self._lines.put(None)  # EOF sentinel

    def write(self, *lines):
        """Send SMT-LIB command lines to the solver."""
        for line in lines:
            if not line.startswith(_VOLATILE_PREFIXES):
                self._transcript.append(line)
        try:
            for line in lines:
                self._process.stdin.write(line + "\n")
            self._process.stdin.flush()
        except (BrokenPipeError, OSError, ValueError) as error:
            returncode = self._process.poll()
            raise SolverError(
                "the SMT solver process is gone (exit code {}): {}".format(
                    returncode, error))

    def _dead(self):
        """Did the process die?  A crashed child may not be reaped yet when
        its stdout EOF is seen, so wait a moment instead of a bare poll."""
        try:
            self._process.wait(timeout=0.5)
            return True
        except subprocess.TimeoutExpired:
            return False

    def _kill(self):
        if self._process.poll() is None:
            self._process.kill()
            try:
                self._process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                pass

    def _read_answer(self, timeout):
        """Read one complete (paren-balanced) answer, or raise."""
        deadline = time.monotonic() + timeout
        answer = ""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill()
                raise SolverTimeoutError(
                    "the SMT solver gave no answer within {:.1f}s; the "
                    "process was killed".format(timeout))
            try:
                line = self._lines.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if line is None:
                raise SolverError(
                    "the SMT solver process exited mid-query (exit code "
                    "{})".format(self._process.poll()))
            answer += line
            if answer.strip() and balanced(answer):
                return answer.strip()

    # -- the SMT-LIB surface the engines use ----------------------------------

    def push(self):
        self.write("(push 1)")

    def pop(self):
        self.write("(pop 1)")

    def check_sat(self, timeout=None, assuming=()):
        """Run ``check-sat`` and return ``"sat"``/``"unsat"``/``"unknown"``.

        *timeout* (seconds, default: the solver's construction timeout) is
        applied twice: as the solver-side soft limit -- so a well-behaved
        solver answers ``unknown`` and the session survives -- and as a hard
        wall-clock deadline (plus grace) after which the process is killed
        and :class:`~repro.exceptions.SolverTimeoutError` is raised.
        """
        budget = self.timeout if timeout is None else float(timeout)
        if _faults.trigger("solver_crash", "query"):
            self._kill()
        try:
            return self._check_sat_once(budget, assuming)
        except SolverTimeoutError:
            raise  # the kill was deliberate; a respawned retry would hang too
        except SolverError:
            if self._closed or not self._dead():
                raise  # protocol error from a live process, or torn down
            self._respawn()
            return self._check_sat_once(budget, assuming)

    def _check_sat_once(self, budget, assuming):
        self.write("(set-option :timeout {})".format(max(1, int(budget * 1000))))
        if assuming:
            self.write("(check-sat-assuming ({}))".format(" ".join(assuming)))
        else:
            self.write("(check-sat)")
        answer = self._read_answer(budget + HARD_TIMEOUT_GRACE)
        if answer in ("sat", "unsat", "unknown"):
            return answer
        if answer.startswith("(error"):
            raise SolverError("the SMT solver reported: {}".format(answer))
        raise SolverError(
            "unexpected check-sat reply from the SMT solver: {!r}".format(
                answer))

    def get_values(self, names, timeout=None):
        """Fetch integer model values for *names* (``|``-quoted or bare).

        Returns a dict keyed by bare (unquoted) names.  Only meaningful
        right after a ``sat`` answer.
        """
        if not names:
            return {}
        budget = self.timeout if timeout is None else float(timeout)
        self.write("(get-value ({}))".format(" ".join(names)))
        answer = self._read_answer(budget + HARD_TIMEOUT_GRACE)
        if answer.startswith("(error"):
            raise SolverError("the SMT solver reported: {}".format(answer))
        parsed = parse(answer)
        values = {}
        for entry in parsed:
            if not isinstance(entry, list) or len(entry) != 2:
                raise SolverError(
                    "malformed get-value entry from the SMT solver: "
                    "{!r}".format(entry))
            name, value = entry
            values[atom_name(name)] = self._as_int(value)
        return values

    @staticmethod
    def _as_int(value):
        if isinstance(value, list):
            # Negative literals come back as the term (- N).
            if len(value) == 2 and value[0] == "-":
                return -PipeSolver._as_int(value[1])
            raise SolverError(
                "non-integer model value from the SMT solver: {!r}".format(
                    value))
        try:
            return int(value)
        except ValueError:
            raise SolverError(
                "non-integer model value from the SMT solver: {!r}".format(
                    value))

    # -- lifecycle ------------------------------------------------------------

    @property
    def alive(self):
        return not self._closed and self._process.poll() is None

    def close(self):
        """Tear the solver process down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._process.poll() is None:
            try:
                self._process.stdin.write("(exit)\n")
                self._process.stdin.flush()
            except (BrokenPipeError, OSError, ValueError):
                pass
            try:
                self._process.stdin.close()
            except (BrokenPipeError, OSError):
                pass
            try:
                self._process.wait(timeout=2)
            except subprocess.TimeoutExpired:
                self._kill()
        try:
            self._process.stdout.close()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self):
        status = "alive" if self.alive else "closed"
        return "PipeSolver({!r}, {})".format(self.binary, status)
