"""Multiprocessing start-method selection, shared by every parallel path.

All process-spawning subsystems (the campaign runner, the sharded explorer,
the racing portfolio) go through one context so they behave identically on a
platform: prefer ``fork`` (cheap, inherits registered factories and loaded
modules) and fall back to ``spawn`` where fork is unavailable.

The ``REPRO_MP_START_METHOD`` environment variable overrides the choice --
CI uses it to exercise the spawn path on platforms whose default is fork, so
picklability regressions (jobs, compiled tables, queries crossing process
boundaries) surface on every run instead of only on spawn-default platforms.
"""

import multiprocessing
import os

from repro.exceptions import ConfigurationError

#: Environment variable forcing a specific start method (``fork`` / ``spawn``
#: / ``forkserver``).
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def mp_context():
    """The multiprocessing context every parallel subsystem uses.

    Honours :data:`START_METHOD_ENV` when set (raising
    :class:`~repro.exceptions.ConfigurationError` for unknown or unavailable
    methods -- a CI matrix must fail loudly, not silently test the wrong
    path), otherwise prefers ``fork`` and falls back to ``spawn``.
    """
    methods = multiprocessing.get_all_start_methods()
    forced = os.environ.get(START_METHOD_ENV)
    if forced:
        if forced not in methods:
            raise ConfigurationError(
                "{}={!r} is not an available start method (available: "
                "{})".format(START_METHOD_ENV, forced, ", ".join(methods)))
        return multiprocessing.get_context(forced)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def start_method():
    """The start method :func:`mp_context` resolves to on this platform."""
    return mp_context().get_start_method()


def in_daemon_worker():
    """Is this process a daemonic worker (and thus unable to spawn children)?

    Campaign workers are daemonic by design (a dead supervisor must never
    leave orphans), and daemonic processes cannot have children -- so the
    sharded explorer and the racing portfolio fall back to their sequential
    paths inside one, instead of crashing the job.
    """
    return multiprocessing.current_process().daemon
