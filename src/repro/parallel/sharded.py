"""Sharded frontier-partitioned BFS over the compiled bitmask relation.

The sequential explorers (:func:`repro.petri.compiled.explore_compiled` and
the array-native :func:`repro.petri.batch.explore_batch`) are bounded by one
core: every enabled-set update, every firing and -- the real limiter at
scale -- every dedup probe of the ever-growing state index runs in one
process.  This module distributes all three across shard workers while
keeping the resulting graph **bit-identical**: same states in the same
discovery order, same packed edge lists, same BFS parents (hence traces),
same frontier and truncation behaviour, so every property verdict computed
on a sharded graph equals the sequential one exactly.

Architecture
------------

* **Workers own hash-partitioned shards of the state space.**  A state
  belongs to the worker ``hash(state) % workers`` (Python's int hash, so the
  partition is reproducible).  Each worker keeps the index of *its* states
  only -- dedup, the memory hog of explicit exploration, is thereby both
  parallelised and partitioned.  Workers expand **vectorised** whenever the
  optional NumPy extra is importable (:class:`_BatchShardWorker`, built on
  the primitives of :mod:`repro.petri.batch`, including a vectorised
  :func:`shard_of` over whole successor batches); without NumPy the
  pure-int backend (:class:`_IntShardWorker`) runs the same wire protocol,
  so the two interoperate and produce identical graphs.
* **Cross-shard successors stream in chunks within a level.**  Expanding a
  level, a worker resolves own-shard successors against its local index and
  ships every foreign successor to that successor's owner.  Instead of one
  batch per level, the outboxes are flushed every ``chunk_states`` expanded
  states (relayed by the coordinator, which never parses them), and between
  flushes the worker drains and resolves whatever inbound chunks have
  already arrived -- so inbound-batch resolution overlaps expansion instead
  of serialising behind the level barrier.  The last chunk of a level
  carries a *final* marker; a worker's level is done when its own expansion
  is finished and every peer's final chunk has been resolved.
* **A bounded requester-side memo short-circuits re-converging edges.**
  After each level the coordinator feeds every worker the final global
  indices its shipped foreign states resolved to (``_MSG_MEMO``); the
  worker keeps a bounded memo of those resolutions and, on the next
  encounter of a memoised state, emits the final packed edge directly --
  no outbox entry, no owner-side probe, no resolution-stream slot.  Only
  admitted states enter the memo, so a hit is exactly the edge the owner
  would have answered and the graph stays bit-identical.  The bound is
  **frequency/depth-aware**: re-convergent edges overwhelmingly target
  early-discovered states, so eviction removes the newest zero-hit entries
  first and spares both older entries and entries that have already
  produced a hit (plain FIFO measurably starved the memo -- 2 hits on the
  3-stage pipeline family where ~1216 are attainable within the default
  bound).  The policy only affects hit rate, never edges.  Hit counters
  are aggregated into ``graph.exchange_stats``.
* **The coordinator replays only admissions, not edges.**  New states are
  admitted in the exact order the sequential BFS would discover them: every
  candidate carries its provenance ``parent_index << 16 | transition``, the
  minimum over all discoverers, and candidates are admitted in sorted
  provenance order up to ``max_states`` -- which reproduces sequential
  discovery order, truncation, frontier and parent pointers bit for bit.
  Edge lists arrive as packed 64-bit streams (the graph's own edge format)
  parsed at C speed; the coordinator's per-edge Python work is a single
  append for resolved edges.

A 1-safeness overflow detected by a worker aborts the exploration with the
same :class:`~repro.exceptions.SafenessOverflowError` the sequential engine
raises (under ``engine="auto"`` the caller then falls back to the explicit
explorer, exactly as before).
"""

import os
import threading
from array import array
from collections import deque
from multiprocessing.connection import wait as connection_wait

from repro.exceptions import SafenessOverflowError, VerificationError
from repro.parallel.context import mp_context
from repro.utils import faults as _faults
from repro.petri.compiled import (
    CompiledNet,
    CompiledReachabilityGraph,
    expand_watch_pairs,
    iter_bits,
    scan_enabled_mask,
)

#: Sentinel transition index: "compute the enabled mask with a full scan"
#: (used for the initial state, which has no parent to update from).
_FULL_SCAN = 0xFFFF

#: Message type prefixes (coordinator -> worker).
_MSG_SEED = 0x53        # "S": level-0 seed (initial state)
_MSG_ASSIGN = 0x41      # "A": admission assignments for the previous level
_MSG_RELAY = 0x52       # "R": relayed successor chunk from another shard
_MSG_MEMO = 0x4D        # "M": resolutions of last level's shipped states
_MSG_QUIT = 0x51        # "Q": shutdown

#: Worker -> coordinator message prefixes.
_MSG_CHUNK = 0x43       # "C": per-destination successor chunk (+final flag)
_MSG_REPORT = 0x45      # "E": edge stream + resolutions + candidates
_MSG_OVERFLOW = 0x56    # "V": 1-safeness overflow (transition, place)

#: Default bound of the requester-side resolution memo (entries per worker).
_DEFAULT_MEMO = 1 << 16

#: Default expansion chunk (states per outbox flush); REPRO_SHARD_CHUNK
#: overrides it, letting tests force many small chunks per level.
_DEFAULT_CHUNK = 2048


def _pack_sections(sections):
    """Concatenate byte *sections* with 4-byte little-endian length headers."""
    out = bytearray()
    for section in sections:
        out += len(section).to_bytes(4, "little")
        out += section
    return bytes(out)


def _unpack_sections(buf, offset=0):
    """Inverse of :func:`_pack_sections` (returns a list of memory slices)."""
    sections = []
    end = len(buf)
    while offset < end:
        length = int.from_bytes(buf[offset:offset + 4], "little")
        offset += 4
        sections.append(buf[offset:offset + length])
        offset += length
    return sections


def shard_of(state, workers):
    """The shard (worker index) owning an integer state, by hash partition.

    ``hash`` of a Python int is deterministic (no ``PYTHONHASHSEED``
    dependence), so the partition -- and with it the exact batch layout of
    the exchange -- is reproducible run to run.  The batch workers compute
    the same partition vectorised with
    :func:`repro.petri.batch.shard_rows`.
    """
    return hash(state) % workers


def _state_row_width(place_count):
    """Bytes of one state on the wire: whole little-endian 64-bit words.

    Both worker backends and the coordinator derive the width from this one
    helper, so the pure-int and NumPy backends stay wire-compatible (the
    batch workers serialise state rows with ``ndarray.tobytes``, which
    emits whole words).
    """
    return 8 * max(1, (place_count + 63) // 64)


class _ShardTables:
    """The picklable slice of a :class:`CompiledNet` a shard worker needs."""

    __slots__ = ("consume", "produce", "need", "affected",
                 "place_count", "transition_count")

    def __init__(self, compiled):
        self.consume = list(compiled.consume)
        self.produce = list(compiled.produce)
        self.need = list(compiled.need)
        self.affected = list(compiled.affected)
        self.place_count = len(compiled.place_names)
        self.transition_count = len(compiled.transition_names)


class _ShardWorkerBase:
    """Shared level protocol of both worker backends.

    Subclasses provide the expansion/resolution machinery through the
    ``_seed`` / ``_apply_assignments`` / ``_begin_level`` /
    ``_expansion_size`` / ``_expand_chunk`` / ``_resolve_inbound`` /
    ``_apply_memo`` / ``_report`` hooks; this base class owns the message
    loop, the chunked flush/drain cycle and the final-marker accounting.
    """

    def __init__(self, connection, tables, worker_id, workers, memo_size,
                 chunk_states):
        self.connection = connection
        self.tables = tables
        self.worker_id = worker_id
        self.workers = workers
        self.memo_size = memo_size
        self.chunk_states = max(1, int(chunk_states))
        self.row_width = _state_row_width(tables.place_count)
        self.mask_width = (tables.transition_count + 7) // 8
        self.shipped_history = deque()
        self.finals_received = 0
        self.level_memo_hits = 0
        self.level_foreign = 0

    def run(self):
        connection = self.connection
        while True:
            message = connection.recv_bytes()
            kind = message[0]
            if kind == _MSG_QUIT:
                return
            if kind == _MSG_MEMO:
                self._apply_memo(memoryview(message)[1:])
                continue
            if kind == _MSG_SEED:
                self._seed(int.from_bytes(message[1:], "little"))
            elif kind == _MSG_ASSIGN:
                self._apply_assignments(memoryview(message)[1:])
            else:
                raise VerificationError(
                    "shard worker received unexpected message {!r}".format(kind))
            try:
                report = self._expand_and_exchange()
            except SafenessOverflowError as overflow:
                connection.send_bytes(
                    bytes([_MSG_OVERFLOW])
                    + int(overflow.transition).to_bytes(2, "little")
                    + int(overflow.place).to_bytes(2, "little"))
                return
            if report is None:
                return  # the coordinator shut the exploration down mid-level
            connection.send_bytes(report)

    def _expand_and_exchange(self):
        self.finals_received = 0
        self.level_memo_hits = 0
        self.level_foreign = 0
        self._begin_level()
        connection = self.connection
        total = self._expansion_size()
        chunk_states = self.chunk_states
        start = 0
        while start < total:
            stop = min(total, start + chunk_states)
            outboxes = self._expand_chunk(start, stop)
            final = 1 if stop >= total else 0
            connection.send_bytes(bytes([_MSG_CHUNK, final])
                                  + _pack_sections(outboxes))
            start = stop
            # Overlap: resolve whatever inbound chunks already arrived
            # before expanding the next slice of our own frontier.
            if not self._drain_inbound(block=False):
                return None
        if total == 0:
            connection.send_bytes(bytes([_MSG_CHUNK, 1])
                                  + _pack_sections([b""] * self.workers))
        if not self._drain_inbound(block=True):
            return None
        if self.memo_size and self.shipped:
            self.shipped_history.append(self.shipped)
            self.shipped = []
        return self._report()

    def _drain_inbound(self, block):
        """Resolve queued relays; ``False`` when the coordinator quit."""
        connection = self.connection
        while True:
            if block:
                if self.finals_received >= self.workers - 1:
                    return True
            elif not connection.poll(0):
                return True
            message = connection.recv_bytes()
            kind = message[0]
            if kind == _MSG_QUIT:
                # The coordinator aborted the level (e.g. another shard hit
                # a 1-safeness overflow); exit quietly instead of waiting
                # for relays that will never come.
                return False
            if kind == _MSG_MEMO:
                self._apply_memo(memoryview(message)[1:])
            elif kind == _MSG_RELAY:
                payload = memoryview(message)[3:]
                if len(payload):
                    self._resolve_inbound(message[1], payload)
                if message[2]:
                    self.finals_received += 1
            else:
                raise VerificationError(
                    "shard worker expected a relay, got {!r}".format(kind))


class _IntShardWorker(_ShardWorkerBase):
    """One shard on the pure-int backend: the no-NumPy fallback.

    Per level the worker expands the states admitted to its shard (in global
    discovery order), emits one packed edge stream, chunked successor
    batches per foreign shard, one resolution stream per requesting shard,
    and the list of its newly discovered (pending) states with
    min-provenance -- see the module docstring for how the coordinator
    stitches these together.
    """

    def __init__(self, connection, tables, worker_id, workers, memo_size,
                 chunk_states):
        super().__init__(connection, tables, worker_id, workers, memo_size,
                         chunk_states)
        self.pairs = expand_watch_pairs(tables.need, tables.affected)
        self.local_index = {}   # own-shard state -> global index
        self.pending = {}       # own-shard state -> pending id (this level)
        self.records = []       # pending id -> (state, parent_mask, transition)
        self.provenance = []    # pending id -> min provenance
        self.expansion = []     # (global index, state, parent_mask, transition)
        self.memo = {}          # foreign state -> global index (depth-ordered)
        self.memo_hot = set()   # memo entries that have produced a hit
        self.shipped = []       # foreign states shipped this level, in order

    def _seed(self, state):
        self.local_index[state] = 0
        self.expansion = [(0, state, 0, _FULL_SCAN)]

    def _apply_assignments(self, payload):
        """Admission results for last level's pendings; queue the admitted."""
        assigned = array("q")
        assigned.frombytes(payload)
        records = self.records
        local_index = self.local_index
        expansion = []
        expansion_append = expansion.append
        for pending_id, index in enumerate(assigned):
            if index < 0:
                continue  # rejected: the state bound was hit first
            state, parent_mask, transition = records[pending_id]
            local_index[state] = index
            expansion_append((index, state, parent_mask, transition))
        expansion.sort()  # expand in global discovery order
        self.expansion = expansion
        self.pending = {}
        self.records = []
        self.provenance = []

    def _apply_memo(self, payload):
        resolutions = array("q")
        resolutions.frombytes(payload)
        shipped = self.shipped_history.popleft()
        memo = self.memo
        for state, index in zip(shipped, resolutions):
            if index >= 0:
                memo[state] = index  # re-resolutions keep their depth slot
        excess = len(memo) - self.memo_size
        if excess > 0:
            # Frequency/depth-aware eviction: walk the newest entries first
            # and spare anything that has already produced a hit -- long
            # -range re-convergences target early-discovered states, so the
            # oldest entries are the ones worth keeping.
            hot = self.memo_hot
            victims = []
            for state in reversed(memo):
                if state not in hot:
                    victims.append(state)
                    if len(victims) == excess:
                        break
            for state in victims:
                del memo[state]
            excess = len(memo) - self.memo_size
            if excess > 0:  # every entry is hot: drop the newest of those
                victims = [state for _, state in zip(range(excess),
                                                     reversed(memo))]
                for state in victims:
                    del memo[state]
                    hot.discard(state)

    def _begin_level(self):
        self.counts = array("H")
        self.edges = array("q")
        self.resolutions = [array("q") for _ in range(self.workers)]
        self.shipped = []

    def _expansion_size(self):
        return len(self.expansion)

    def _expand_chunk(self, start, stop):
        tables = self.tables
        consume = tables.consume
        produce = tables.produce
        need = tables.need
        pairs = self.pairs
        row_width = self.row_width
        mask_width = self.mask_width
        worker_id = self.worker_id
        workers = self.workers
        local_index_get = self.local_index.get
        pending = self.pending
        pending_get = pending.get
        records = self.records
        records_append = records.append
        provenance_list = self.provenance
        provenance_append = provenance_list.append
        counts_append = self.counts.append
        edges_append = self.edges.append
        own_resolutions_append = self.resolutions[worker_id].append
        memo_get = self.memo.get
        hot_add = self.memo_hot.add
        memo_enabled = self.memo_size > 0
        shipped_append = self.shipped.append
        outboxes = [bytearray() for _ in range(workers)]
        foreign = 0
        memo_hits = 0

        for current, state, parent_mask, transition in self.expansion[start:stop]:
            if transition == _FULL_SCAN:
                mask = scan_enabled_mask(need, state)
            else:
                watch, touched = pairs[transition]
                mask = parent_mask & ~touched
                for bit, other_need in watch:
                    if (state & other_need) == other_need:
                        mask |= bit
            mask_bytes = None
            provenance_base = current << 16
            edge_count = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                index = low.bit_length() - 1
                remainder = state & ~consume[index]
                produced = produce[index]
                overflow = remainder & produced
                if overflow:
                    raise SafenessOverflowError(index, next(iter_bits(overflow)))
                successor = remainder | produced
                edge_count += 1
                owner = hash(successor) % workers
                if owner == worker_id:
                    resolved = local_index_get(successor)
                    if resolved is not None:
                        # Known own-shard state: a direct, final packed edge.
                        edges_append(index | (resolved << 16))
                        continue
                    # New own-shard state: a reference into this shard's own
                    # resolution stream (min-provenance kept for admission).
                    pending_id = pending_get(successor)
                    if pending_id is None:
                        pending_id = len(records)
                        pending[successor] = pending_id
                        records_append((successor, mask, index))
                        provenance_append(provenance_base | index)
                    elif provenance_base | index < provenance_list[pending_id]:
                        provenance_list[pending_id] = provenance_base | index
                    edges_append(-(index | (worker_id << 16)) - 1)
                    own_resolutions_append(-pending_id - 1)
                else:
                    # Foreign successor: answer from the resolution memo when
                    # possible, otherwise ship it to its owner and emit a
                    # reference the coordinator fills from the owner's
                    # resolution stream for this shard.  The record carries
                    # no separate transition -- the provenance's low 16 bits
                    # are the transition already.
                    foreign += 1
                    if memo_enabled:
                        cached = memo_get(successor)
                        if cached is not None:
                            hot_add(successor)  # a hit protects the entry
                            memo_hits += 1
                            edges_append(index | (cached << 16))
                            continue
                        shipped_append(successor)
                    if mask_bytes is None:
                        mask_bytes = mask.to_bytes(mask_width, "little")
                    outbox = outboxes[owner]
                    outbox += successor.to_bytes(row_width, "little")
                    outbox += mask_bytes
                    outbox += (provenance_base | index).to_bytes(8, "little")
                    edges_append(-(index | (owner << 16)) - 1)
            counts_append(edge_count)
        self.level_foreign += foreign
        self.level_memo_hits += memo_hits
        return outboxes

    def _resolve_inbound(self, requester, batch):
        from_bytes = int.from_bytes
        row_width = self.row_width
        mask_width = self.mask_width
        local_index_get = self.local_index.get
        pending = self.pending
        pending_get = pending.get
        records = self.records
        records_append = records.append
        provenance_list = self.provenance
        provenance_append = provenance_list.append
        stream_append = self.resolutions[requester].append
        position = 0
        end = len(batch)
        while position < end:
            state_end = position + row_width
            state = from_bytes(batch[position:state_end], "little")
            mask_end = state_end + mask_width
            position = mask_end + 8
            resolved = local_index_get(state)
            if resolved is not None:
                stream_append(resolved)
                continue
            pending_id = pending_get(state)
            provenance = from_bytes(batch[mask_end:position], "little")
            if pending_id is None:
                pending_id = len(records)
                pending[state] = pending_id
                parent_mask = from_bytes(batch[state_end:mask_end], "little")
                records_append((state, parent_mask, provenance & 0xFFFF))
                provenance_append(provenance)
            elif provenance < provenance_list[pending_id]:
                provenance_list[pending_id] = provenance
            stream_append(-pending_id - 1)

    def _report(self):
        candidate_states = bytearray()
        row_width = self.row_width
        for state, _, _ in self.records:
            candidate_states += state.to_bytes(row_width, "little")
        candidate_provenance = array("Q", self.provenance)
        stats = array("Q", [self.level_memo_hits, self.level_foreign])
        return bytes([_MSG_REPORT]) + _pack_sections(
            [self.counts.tobytes(), self.edges.tobytes()]
            + [stream.tobytes() for stream in self.resolutions]
            + [candidate_provenance.tobytes(), candidate_states,
               stats.tobytes()])


class _BatchShardWorker(_ShardWorkerBase):
    """One shard on the NumPy backend: whole-chunk vectorised expansion.

    The same wire protocol as :class:`_IntShardWorker`, produced with the
    array primitives of :mod:`repro.petri.batch`: broadcast firing over the
    chunk, vectorised :func:`shard_of` routing, sort-based dedup of new
    own-shard states, hash-probed local/pending/memo indices, and
    ``tobytes`` serialisation of outboxes, edge streams and candidates.
    """

    def __init__(self, connection, tables, worker_id, workers, memo_size,
                 chunk_states):
        super().__init__(connection, tables, worker_id, workers, memo_size,
                         chunk_states)
        import numpy
        from repro.petri import batch
        self._n = numpy
        self._b = batch
        self.word_tables = batch.WordTables.from_raw(
            tables.need, tables.consume, tables.produce, tables.affected,
            tables.place_count)
        words = self.word_tables.words
        self.words = words
        self.local_rows = numpy.zeros((256, words), dtype=numpy.uint64)
        self.local_global = numpy.zeros(256, dtype=numpy.int64)
        self.local_count = 0
        self.local_keys = numpy.empty(0, dtype=numpy.uint64)
        self.local_pos = numpy.empty(0, dtype=numpy.int64)
        self.exp_rows = numpy.empty((0, words), dtype=numpy.uint64)
        self.exp_enabled = numpy.empty((0, tables.transition_count),
                                       dtype=bool)
        self.exp_global = numpy.empty(0, dtype=numpy.int64)
        self.memo_rows = numpy.empty((0, words), dtype=numpy.uint64)
        self.memo_idx = numpy.empty(0, dtype=numpy.int64)
        self.memo_hashes = numpy.empty(0, dtype=numpy.uint64)
        self.memo_hits = numpy.empty(0, dtype=numpy.int64)
        self.memo_keys = numpy.empty(0, dtype=numpy.uint64)
        self.memo_pos = numpy.empty(0, dtype=numpy.int64)
        self.shipped = []       # per-chunk row matrices shipped this level
        self._reset_pending()

    # -- stores ---------------------------------------------------------------

    def _reset_pending(self):
        n = self._n
        words = self.words
        self.pend_rows = n.zeros((64, words), dtype=n.uint64)
        self.pend_masks = n.zeros((64, self.mask_width), dtype=n.uint8)
        self.pend_fired = n.zeros(64, dtype=n.int64)
        self.pend_prov = n.zeros(64, dtype=n.int64)
        self.pend_count = 0
        self.pend_keys = n.empty(0, dtype=n.uint64)
        self.pend_pos = n.empty(0, dtype=n.int64)

    def _insert_local(self, rows, global_indices):
        n = self._n
        count = self.local_count
        needed = count + len(rows)
        while needed > len(self.local_rows):
            self.local_rows = n.concatenate(
                [self.local_rows, n.zeros_like(self.local_rows)])
            self.local_global = n.concatenate(
                [self.local_global, n.zeros_like(self.local_global)])
        self.local_rows[count:needed] = rows
        self.local_global[count:needed] = global_indices
        self.local_keys, self.local_pos = self._b.merge_sorted_index(
            self.local_keys, self.local_pos,
            self.word_tables.hash_rows(rows),
            n.arange(count, needed, dtype=n.int64))
        self.local_count = needed

    def _append_pending(self, rows, hashes, masks, fired, provenance):
        n = self._n
        count = self.pend_count
        needed = count + len(rows)
        while needed > len(self.pend_rows):
            self.pend_rows = n.concatenate(
                [self.pend_rows, n.zeros_like(self.pend_rows)])
            self.pend_masks = n.concatenate(
                [self.pend_masks, n.zeros_like(self.pend_masks)])
            self.pend_fired = n.concatenate(
                [self.pend_fired, n.zeros_like(self.pend_fired)])
            self.pend_prov = n.concatenate(
                [self.pend_prov, n.zeros_like(self.pend_prov)])
        identifiers = n.arange(count, needed, dtype=n.int64)
        self.pend_rows[count:needed] = rows
        self.pend_masks[count:needed] = masks
        self.pend_fired[count:needed] = fired
        self.pend_prov[count:needed] = provenance
        self.pend_keys, self.pend_pos = self._b.merge_sorted_index(
            self.pend_keys, self.pend_pos, hashes, identifiers)
        self.pend_count = needed
        return identifiers

    # -- protocol hooks -------------------------------------------------------

    def _seed(self, state):
        n = self._n
        row = n.asarray([self._b.int_to_words(state, self.words)],
                        dtype=n.uint64)
        self._insert_local(row, n.zeros(1, dtype=n.int64))
        self.exp_rows = row
        self.exp_enabled = self.word_tables.enabled_matrix(row)
        self.exp_global = n.zeros(1, dtype=n.int64)

    def _apply_assignments(self, payload):
        n = self._n
        assigned = n.frombuffer(bytes(payload), dtype="<i8")
        transition_count = self.tables.transition_count
        if len(assigned):
            admitted = n.flatnonzero(assigned >= 0)
            admitted = admitted[n.argsort(assigned[admitted])]
            global_indices = assigned[admitted].astype(n.int64)
            rows = n.ascontiguousarray(
                self.pend_rows[:self.pend_count][admitted])
            enabled = self._b.unpack_mask_rows(
                self.pend_masks[:self.pend_count][admitted],
                transition_count).astype(bool)
            if len(admitted):
                self._b.refresh_enabled(
                    self.word_tables, enabled, rows,
                    self.pend_fired[:self.pend_count][admitted])
                self._insert_local(rows, global_indices)
            self.exp_rows = rows
            self.exp_enabled = enabled
            self.exp_global = global_indices
        else:
            self.exp_rows = n.empty((0, self.words), dtype=n.uint64)
            self.exp_enabled = n.empty((0, transition_count), dtype=bool)
            self.exp_global = n.empty(0, dtype=n.int64)
        self._reset_pending()

    def _apply_memo(self, payload):
        n = self._n
        b = self._b
        resolved = n.frombuffer(bytes(payload), dtype="<i8")
        chunks = self.shipped_history.popleft()
        rows = chunks[0] if len(chunks) == 1 else n.concatenate(chunks)
        admitted = resolved >= 0
        if not admitted.any():
            return
        rows = rows[admitted]
        indices = resolved[admitted].astype(n.int64)
        hashes = self.word_tables.hash_rows(rows)
        # Duplicate shipments of one state resolve identically; keep one.
        _, _, group_rows, group_hashes, group_idx = b.dedup_rows(
            rows, hashes, indices, self.words)
        slot = b._probe_rows(self.memo_keys, self.memo_pos, self.memo_rows,
                             group_rows, group_hashes, self.words)
        fresh = slot < 0
        if not fresh.any():
            return
        previous = len(self.memo_rows)
        self.memo_rows = n.concatenate([self.memo_rows, group_rows[fresh]])
        self.memo_idx = n.concatenate([self.memo_idx, group_idx[fresh]])
        self.memo_hashes = n.concatenate([self.memo_hashes,
                                          group_hashes[fresh]])
        self.memo_hits = n.concatenate(
            [self.memo_hits,
             n.zeros(int(fresh.sum()), dtype=n.int64)])
        if len(self.memo_rows) > self.memo_size:
            # Frequency/depth-aware bound (mirrors the int backend): a
            # stable sort by descending hit count puts proven entries
            # first and, within equal counts, the oldest first -- so the
            # evictees are exactly the newest zero-hit rows.  Survivors
            # keep their insertion (depth) order.  Slot positions shift,
            # so the sorted index is rebuilt -- only on eviction; the
            # steady state below merges incrementally.
            order = n.argsort(-self.memo_hits, kind="stable")
            keep = n.sort(order[:self.memo_size])
            self.memo_rows = self.memo_rows[keep]
            self.memo_idx = self.memo_idx[keep]
            self.memo_hashes = self.memo_hashes[keep]
            self.memo_hits = self.memo_hits[keep]
            position = n.argsort(self.memo_hashes)
            self.memo_keys = self.memo_hashes[position]
            self.memo_pos = position.astype(n.int64)
        else:
            self.memo_keys, self.memo_pos = b.merge_sorted_index(
                self.memo_keys, self.memo_pos, group_hashes[fresh],
                n.arange(previous, len(self.memo_rows), dtype=n.int64))

    def _begin_level(self):
        self.count_chunks = []
        self.edge_chunks = []
        self.stream_chunks = [[] for _ in range(self.workers)]
        self.shipped = []

    def _expansion_size(self):
        return len(self.exp_global)

    def _expand_chunk(self, start, stop):
        n = self._n
        b = self._b
        tables = self.word_tables
        words = self.words
        workers = self.workers
        worker_id = self.worker_id
        transition_count = self.tables.transition_count
        rows = self.exp_rows[start:stop]
        enabled = self.exp_enabled[start:stop]
        global_indices = self.exp_global[start:stop]
        outboxes = [b""] * workers
        flat = n.flatnonzero(enabled)
        self.count_chunks.append(
            n.bincount(flat // transition_count, minlength=stop - start))
        if not len(flat):
            return outboxes
        # Shared firing: raises SafenessOverflowError with integer indices,
        # which is exactly this worker's overflow wire format.
        source_local, transition, successor = b.fire_enabled(tables, rows,
                                                             flat)
        provenance = (global_indices[source_local] << 16) | transition
        owner = b.shard_rows(successor, workers)
        edge_values = n.empty(len(flat), dtype=n.int64)

        own_positions = n.flatnonzero(owner == worker_id)
        if len(own_positions):
            own_rows = successor[own_positions]
            own_hashes = tables.hash_rows(own_rows)
            local_hit = b._probe_rows(self.local_keys, self.local_pos,
                                      self.local_rows, own_rows, own_hashes,
                                      words)
            known = local_hit >= 0
            known_positions = own_positions[known]
            edge_values[known_positions] = (
                transition[known_positions]
                | (self.local_global[local_hit[known]] << 16))
            unknown_positions = own_positions[~known]
            if len(unknown_positions):
                (order, group_of_sorted, group_rows, group_hashes,
                 group_prov) = b.dedup_rows(
                    own_rows[~known], own_hashes[~known],
                    provenance[unknown_positions], words)
                group_pending = b._probe_rows(
                    self.pend_keys, self.pend_pos, self.pend_rows,
                    group_rows, group_hashes, words)
                hit = group_pending >= 0
                if hit.any():
                    identifiers = group_pending[hit]
                    self.pend_prov[identifiers] = n.minimum(
                        self.pend_prov[identifiers], group_prov[hit])
                fresh = n.flatnonzero(~hit)
                if len(fresh):
                    fresh_prov = group_prov[fresh]
                    # The min-provenance parent is in this level's
                    # expansion; its enabled row is the shipped mask.
                    parent_pos = n.searchsorted(self.exp_global,
                                                fresh_prov >> 16)
                    group_pending[fresh] = self._append_pending(
                        group_rows[fresh], group_hashes[fresh],
                        b.pack_mask_rows(self.exp_enabled[parent_pos]),
                        fresh_prov & 0xFFFF, fresh_prov)
                occurrence = n.empty(len(unknown_positions), dtype=n.int64)
                occurrence[order] = group_pending[group_of_sorted]
                self.stream_chunks[worker_id].append(-occurrence - 1)
                edge_values[unknown_positions] = -(
                    transition[unknown_positions] | (worker_id << 16)) - 1

        foreign_positions = n.flatnonzero(owner != worker_id)
        if len(foreign_positions):
            self.level_foreign += len(foreign_positions)
            foreign_rows = successor[foreign_positions]
            foreign_hashes = tables.hash_rows(foreign_rows)
            if self.memo_size:
                slot = b._probe_rows(self.memo_keys, self.memo_pos,
                                     self.memo_rows, foreign_rows,
                                     foreign_hashes, words)
                hit = slot >= 0
            else:
                hit = n.zeros(len(foreign_positions), dtype=bool)
            hit_positions = foreign_positions[hit]
            if len(hit_positions):
                self.level_memo_hits += len(hit_positions)
                n.add.at(self.memo_hits, slot[hit], 1)  # protect on eviction
                edge_values[hit_positions] = (
                    transition[hit_positions]
                    | (self.memo_idx[slot[hit]] << 16))
            miss_positions = foreign_positions[~hit]
            if len(miss_positions):
                miss_owner = owner[miss_positions]
                edge_values[miss_positions] = -(
                    transition[miss_positions] | (miss_owner << 16)) - 1
                miss_rows = foreign_rows[~hit]
                if self.memo_size:
                    self.shipped.append(miss_rows)
                record_width = self.row_width + self.mask_width + 8
                record = n.empty((len(miss_positions), record_width),
                                 dtype=n.uint8)
                record[:, :self.row_width] = n.ascontiguousarray(
                    miss_rows.astype("<u8", copy=False)).view(
                        n.uint8).reshape(len(miss_positions), -1)
                record[:, self.row_width:self.row_width + self.mask_width] = \
                    b.pack_mask_rows(enabled[source_local[miss_positions]])
                record[:, record_width - 8:] = n.ascontiguousarray(
                    provenance[miss_positions].astype("<u8")).view(
                        n.uint8).reshape(len(miss_positions), 8)
                dest_order = n.argsort(miss_owner, kind="stable")
                sorted_owner = miss_owner[dest_order]
                bounds = n.searchsorted(
                    sorted_owner, n.arange(workers + 1, dtype=n.int64))
                for destination in n.unique(sorted_owner).tolist():
                    members = dest_order[bounds[destination]:
                                         bounds[destination + 1]]
                    outboxes[destination] = record[members].tobytes()
        self.edge_chunks.append(edge_values)
        return outboxes

    def _resolve_inbound(self, requester, payload):
        n = self._n
        b = self._b
        words = self.words
        record_width = self.row_width + self.mask_width + 8
        buf = n.frombuffer(bytes(payload), dtype=n.uint8)
        count = len(buf) // record_width
        buf = buf.reshape(count, record_width)
        rows = n.ascontiguousarray(buf[:, :self.row_width]).view(
            "<u8").reshape(count, words).astype(n.uint64)
        provenance = n.ascontiguousarray(buf[:, record_width - 8:]).view(
            "<u8").reshape(count).astype(n.int64)
        hashes = self.word_tables.hash_rows(rows)
        stream = n.empty(count, dtype=n.int64)
        local_hit = b._probe_rows(self.local_keys, self.local_pos,
                                  self.local_rows, rows, hashes, words)
        known = local_hit >= 0
        stream[known] = self.local_global[local_hit[known]]
        unknown = n.flatnonzero(~known)
        if len(unknown):
            unknown_rows = rows[unknown]
            unknown_hashes = hashes[unknown]
            unknown_prov = provenance[unknown]
            # The representative of each group must be one occurrence (its
            # shipped parent mask has to pair with its own provenance), so
            # dedup with the min-provenance occurrence as the head.
            order, group_of_sorted, heads = b.dedup_rows_argmin(
                unknown_rows, unknown_hashes, unknown_prov, words)
            group_rows = unknown_rows[heads]
            group_hashes = unknown_hashes[heads]
            group_prov = unknown_prov[heads]
            group_pending = b._probe_rows(
                self.pend_keys, self.pend_pos, self.pend_rows,
                group_rows, group_hashes, words)
            hit = group_pending >= 0
            if hit.any():
                identifiers = group_pending[hit]
                self.pend_prov[identifiers] = n.minimum(
                    self.pend_prov[identifiers], group_prov[hit])
            fresh = n.flatnonzero(~hit)
            if len(fresh):
                head_records = unknown[heads[fresh]]
                masks = buf[head_records,
                            self.row_width:self.row_width + self.mask_width]
                group_pending[fresh] = self._append_pending(
                    group_rows[fresh], group_hashes[fresh], masks,
                    group_prov[fresh] & 0xFFFF, group_prov[fresh])
            occurrence = n.empty(len(unknown), dtype=n.int64)
            occurrence[order] = group_pending[group_of_sorted]
            stream[unknown] = -occurrence - 1
        self.stream_chunks[requester].append(stream)

    def _report(self):
        n = self._n
        counts = (n.concatenate(self.count_chunks)
                  if self.count_chunks else n.empty(0, dtype=n.int64))
        edges = (n.concatenate(self.edge_chunks)
                 if self.edge_chunks else n.empty(0, dtype=n.int64))
        streams = []
        for chunks in self.stream_chunks:
            if chunks:
                streams.append(n.concatenate(chunks).astype(
                    "<i8", copy=False).tobytes())
            else:
                streams.append(b"")
        candidate_provenance = self.pend_prov[:self.pend_count].astype("<u8")
        candidate_states = n.ascontiguousarray(
            self.pend_rows[:self.pend_count].astype(
                "<u8", copy=False)).tobytes()
        stats = array("Q", [self.level_memo_hits, self.level_foreign])
        return bytes([_MSG_REPORT]) + _pack_sections(
            [counts.astype("<u2").tobytes(),
             edges.astype("<i8", copy=False).tobytes()]
            + streams
            + [candidate_provenance.tobytes(), candidate_states,
               stats.tobytes()])


def _shard_worker_main(connection, tables, worker_id, workers, memo_size,
                       chunk_states, batch):
    try:
        worker_class = _IntShardWorker
        if batch is not False:
            try:
                from repro.petri.batch import numpy_available
                if numpy_available():
                    worker_class = _BatchShardWorker
            except ImportError:  # pragma: no cover - defensive
                pass
        worker_class(connection, tables, worker_id, workers, memo_size,
                     chunk_states).run()
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        connection.close()


class _Sender:
    """A dispatch thread: keeps coordinator receives deadlock-free.

    Pipes have finite OS buffers; if the coordinator blocked sending to a
    worker that is itself blocked sending its report back, both sides would
    wait forever.  Routing every outbound message through one thread lets
    the coordinator's main loop keep draining inbound traffic while a send
    backpressures.
    """

    def __init__(self, connections):
        self.connections = connections
        self.queue = []
        self.lock = threading.Lock()
        self.ready = threading.Event()
        self.closed = False
        self.error = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def send(self, worker, payload):
        with self.lock:
            self.queue.append((worker, payload))
            self.ready.set()

    def close(self):
        with self.lock:
            self.closed = True
            self.ready.set()
        self.thread.join(timeout=10.0)

    def _run(self):
        while True:
            self.ready.wait()
            with self.lock:
                batch, self.queue = self.queue, []
                if not batch and self.closed:
                    return
                self.ready.clear()
            for worker, payload in batch:
                try:
                    self.connections[worker].send_bytes(payload)
                except (BrokenPipeError, OSError) as error:
                    self.error = error
                    return


def explore_sharded(compiled, marking=None, max_states=200000, workers=None,
                    memo_size=None, chunk_states=None, batch=None,
                    spill=None, checkpoint=None):
    """Breadth-first exploration sharded across worker processes.

    Returns a graph bit-identical to ``explore_compiled(compiled, marking,
    max_states)`` -- see the module docstring for how.  With the NumPy
    extra importable the coordinator merges the workers' report streams
    **directly into columnar arrays** (a
    :class:`~repro.petri.batch.ColumnarReachabilityGraph`, spillable to
    disk through *spill* -- a :class:`~repro.petri.storage.SpillConfig`,
    or ``None`` to consult ``REPRO_SPILL_DIR`` / ``REPRO_SPILL_BYTES``);
    without NumPy it accumulates the Python-list
    :class:`~repro.petri.compiled.CompiledReachabilityGraph` exactly as
    before.  *workers* defaults to the CPU count.  *memo_size* bounds the
    per-worker requester-side resolution memo (default 65536 entries; 0
    disables it), *chunk_states* sets the intra-level streaming chunk
    (default 2048 expanded states per flush, overridable with
    ``REPRO_SHARD_CHUNK``), and *batch* selects the worker backend:
    ``None`` (default) uses the vectorised NumPy backend whenever the
    extra is importable in the workers, ``False`` forces the pure-int
    backend.  Exchange/memo counters are attached to the result as
    ``graph.exchange_stats``; per-phase timings and spill counters as
    ``graph.exploration_stats``.

    With *checkpoint* set to a directory (and the NumPy merger active) the
    coordinator keeps its columnar stores at named paths there and writes
    the same per-level :class:`~repro.petri.storage.Checkpoint` manifest
    as ``explore_batch`` after every merged level -- the two engines'
    on-disk layouts are bit-identical at level boundaries, so a sharded
    run killed mid-level is resumed by the *batch* engine (see
    ``build_reachability_graph(resume=...)``).  The coordinator itself
    always starts fresh: any stale manifest under the directory is
    superseded.
    """
    if not isinstance(compiled, CompiledNet):
        compiled = CompiledNet.compile(compiled)
    workers = int(workers) if workers else (os.cpu_count() or 1)
    if workers < 1:
        raise VerificationError(
            "sharded exploration needs at least one worker, got {}".format(
                workers))
    if workers > 127:
        raise VerificationError(
            "sharded exploration supports at most 127 workers")
    if memo_size is None:
        memo_size = _DEFAULT_MEMO
    memo_size = max(0, int(memo_size))
    if chunk_states is None:
        chunk_states = int(os.environ.get("REPRO_SHARD_CHUNK",
                                          _DEFAULT_CHUNK))
    initial = marking if marking is not None else compiled.net.initial_marking()
    initial_state = compiled.encode(initial)

    context = mp_context()
    tables = _ShardTables(compiled)
    connections = []
    processes = []
    for worker_id in range(workers):
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=_shard_worker_main,
            args=(child_end, tables, worker_id, workers, memo_size,
                  chunk_states, batch), daemon=True)
        process.start()
        child_end.close()
        connections.append(parent_end)
        processes.append(process)
    sender = _Sender(connections)
    completed = False
    try:
        graph = _drive(compiled, initial_state, max_states, workers,
                       connections, sender, memo_size, spill, checkpoint)
        completed = True
        return graph
    finally:
        if not completed:
            # Abort path (overflow, worker death, any mid-level error):
            # workers may be blocked writing into full pipes, and the sender
            # thread may be blocked writing towards them -- a blocking QUIT
            # from here would deadlock.  Kill the workers first; the broken
            # pipes then unblock the sender thread too.
            for process in processes:
                process.terminate()
        sender.close()
        for connection in connections:
            try:
                connection.send_bytes(bytes([_MSG_QUIT]))
            except (BrokenPipeError, OSError):
                pass
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for connection in connections:
            connection.close()


def _recv(connections, worker):
    try:
        return connections[worker].recv_bytes()
    except (EOFError, OSError):
        raise VerificationError(
            "sharded exploration worker {} died mid-level".format(worker))


class _ListMerger:
    """Coordinator admission/merge state on Python lists (no NumPy).

    Accumulates the classic :class:`CompiledReachabilityGraph` one edge
    list at a time, exactly as the pre-columnar coordinator did -- the
    fallback when the NumPy extra is unavailable.
    """

    def __init__(self, compiled, initial_state, max_states, workers,
                 memo_size, spill=None, checkpoint=None):
        self.workers = workers
        self.max_states = max_states
        self.memo_size = memo_size
        self.row_width = _state_row_width(len(compiled.place_names))
        self.graph = CompiledReachabilityGraph(compiled, initial_state)
        self.truncated = False
        # The initial state's edge list is not pre-created: edge lists are
        # appended by the merge phase in discovery order, starting with the
        # initial state itself when level 0's expansion is merged.
        self.graph._mask_states.append(initial_state)
        self.graph._parents.append(None)
        self.owner_seq = []
        self.next_owner_seq = []
        self.assignments = []

    def seed(self, owner):
        self.owner_seq = [owner]

    def record_checkpoint(self, levels):
        """Checkpointing needs the columnar merger; a no-op on lists."""

    def load_reports(self, reports):
        workers = self.workers
        counts = {}
        edge_streams = {}
        resolution_streams = {}
        candidates = []
        pending_counts = [0] * workers
        for worker, sections in reports.items():
            counts[worker] = array("H")
            counts[worker].frombytes(sections[0])
            edge_streams[worker] = array("q")
            edge_streams[worker].frombytes(sections[1])
            streams = []
            for requester in range(workers):
                stream = array("q")
                stream.frombytes(sections[2 + requester])
                streams.append(stream)
            resolution_streams[worker] = streams
            provenance = array("Q")
            provenance.frombytes(sections[2 + workers])
            pending_counts[worker] = len(provenance)
            for pending_id, value in enumerate(provenance):
                candidates.append((value, worker, pending_id))
        self.counts = counts
        self.edge_streams = edge_streams
        self.resolution_streams = resolution_streams
        self.candidates = candidates
        self.pending_counts = pending_counts
        self.candidate_states = {worker: reports[worker][3 + workers]
                                 for worker in reports}

    def admit(self):
        # Sorting by provenance reproduces the exact order the sequential
        # BFS first reaches each new state, so indices, parents and the
        # truncation cut-off all match bit for bit.  The provenance int
        # *is* the packed parent pointer the graph stores.
        states = self.graph._mask_states
        states_append = states.append
        parents_append = self.graph._parents.append
        from_bytes = int.from_bytes
        row_width = self.row_width
        candidate_states = self.candidate_states
        candidates = self.candidates
        candidates.sort()
        rejected = array("q", [-1])
        assignments = [rejected * self.pending_counts[worker]
                       for worker in range(self.workers)]
        next_owner_seq = []
        next_owner_append = next_owner_seq.append
        index = len(states)
        for provenance, worker, pending_id in candidates:
            if index >= self.max_states:
                self.truncated = True
                break
            assignments[worker][pending_id] = index
            index += 1
            encoded = candidate_states[worker]
            states_append(from_bytes(
                encoded[pending_id * row_width:
                        (pending_id + 1) * row_width], "little"))
            parents_append(provenance)
            next_owner_append(worker)
        self.assignments = assignments
        self.next_owner_seq = next_owner_seq
        return len(next_owner_seq)

    def assignment_payload(self, worker):
        return self.assignments[worker].tobytes()

    def merge(self):
        # Merge the edge streams in global discovery order, consuming each
        # shard's resolution streams to finalise references.  Edge lists
        # are created here, not at admission: states are merged in exactly
        # the order they were admitted, so plain appends keep ``edges``
        # aligned with ``states``.  While consuming foreign references the
        # coordinator records their final resolutions per requester -- the
        # memo feedback returned to the caller (one payload per worker;
        # empty payloads are not sent).
        workers = self.workers
        graph = self.graph
        edges = graph._mask_edges
        edges_append = edges.append
        frontier_add = graph._frontier_indices.add
        counts = self.counts
        edge_streams = self.edge_streams
        resolution_streams = self.resolution_streams
        assignments = self.assignments
        positions = {worker: 0 for worker in counts}
        edge_cursors = {worker: 0 for worker in counts}
        requester_cursors = [[0] * workers for _ in range(workers)]
        requester_streams = [
            [resolution_streams[owner][worker] for owner in range(workers)]
            for worker in range(workers)
        ]
        feedback = ([array("q") for _ in range(workers)]
                    if self.memo_size else None)
        for worker in self.owner_seq:
            position = positions[worker]
            edge_count = counts[worker][position]
            positions[worker] = position + 1
            cursor = edge_cursors[worker]
            chunk_end = cursor + edge_count
            chunk = edge_streams[worker][cursor:chunk_end]
            edge_cursors[worker] = chunk_end
            cursors = requester_cursors[worker]
            streams = requester_streams[worker]
            current_edges = []
            current_edges_append = current_edges.append
            complete = True
            for value in chunk:
                if value >= 0:
                    current_edges_append(value)
                    continue
                key = -value - 1
                owner = key >> 16
                offset = cursors[owner]
                cursors[owner] = offset + 1
                resolved = streams[owner][offset]
                if resolved < 0:
                    resolved = assignments[owner][-resolved - 1]
                    if resolved < 0:
                        complete = False
                        if feedback is not None and owner != worker:
                            feedback[worker].append(-1)
                        continue
                if feedback is not None and owner != worker:
                    feedback[worker].append(resolved)
                current_edges_append((key & 0xFFFF) | (resolved << 16))
            if not complete:
                frontier_add(len(edges))
            edges_append(current_edges)
        if feedback is None:
            return None
        return [payload.tobytes() for payload in feedback]

    def advance(self):
        self.owner_seq = self.next_owner_seq

    def finish(self, exchange_stats, timing):
        graph = self.graph
        graph.truncated = self.truncated
        graph.exchange_stats = exchange_stats
        graph.exploration_stats = {
            "engine": "sharded",
            "levels": exchange_stats["levels"],
            "states": len(graph._mask_states),
            "edges": sum(len(edge_list) for edge_list in graph._mask_edges),
            "phases": dict(timing),
            "spill": {"enabled": False, "spilled": False,
                      "budget_bytes": None, "directory": None,
                      "write_bytes": 0, "read_bytes": 0, "files": 0},
        }
        return graph

    def abort(self):
        pass


class _ColumnarMerger:
    """Coordinator admission/merge directly into columnar spillable arrays.

    Builds the same :class:`~repro.petri.batch.ColumnarReachabilityGraph`
    as ``explore_batch`` straight out of the workers' report streams,
    instead of accumulating Python lists: admission is one provenance
    argsort (bit-identical to the sequential discovery order -- each
    candidate's provenance is its packed first-discovery edge, unique
    within a level), and the per-state merge becomes one vectorised
    resolve + scatter per reporting worker.  Every array lives in an
    :class:`~repro.petri.storage.ArrayStore` behind one
    :class:`~repro.petri.storage.SpillPool`, so sharded graphs larger
    than the spill budget stream onto disk exactly like batch ones.
    """

    def __init__(self, compiled, initial_state, max_states, workers,
                 memo_size, spill=None, checkpoint=None):
        import numpy
        from repro.petri.batch import (
            ColumnarReachabilityGraph,
            WordTables,
            _group_arange,
            checkpoint_identity,
        )
        from repro.petri.storage import (
            ArrayStore,
            Checkpoint,
            MANIFEST_NAME,
            SpillConfig,
            SpillPool,
        )
        self._np = numpy
        self._group_arange = _group_arange
        self._array_store = ArrayStore
        self.workers = workers
        self.max_states = max_states
        self.memo_size = memo_size
        self.tables = WordTables(compiled)
        self.word_count = self.tables.words
        self.graph = ColumnarReachabilityGraph(compiled, self.tables,
                                               initial_state)
        if spill is None:
            spill = SpillConfig.resolve()
        self.checkpoint_dir = str(checkpoint) if checkpoint else None
        self.pool = SpillPool(spill, label="sharded",
                              named_dir=self.checkpoint_dir)
        if self.checkpoint_dir is not None:
            # The coordinator always starts fresh: a stale manifest (from
            # an older run of any identity) must not outlive the stores it
            # described, which the fresh ArrayStores truncate below.
            try:
                os.remove(os.path.join(self.checkpoint_dir, MANIFEST_NAME))
            except OSError:
                pass
        self.words = ArrayStore(self.pool, "words", numpy.uint64,
                                columns=self.word_count)
        self.parents = ArrayStore(self.pool, "parents", numpy.int64)
        self.edges = ArrayStore(self.pool, "edges", numpy.int64)
        self.counts_store = ArrayStore(self.pool, "counts", numpy.int64)
        self.frontier = ArrayStore(self.pool, "frontier", numpy.int64)
        self.checkpointer = None
        if self.checkpoint_dir is not None:
            self.checkpointer = Checkpoint(
                self.checkpoint_dir,
                {"words": self.words, "parents": self.parents,
                 "edges": self.edges, "counts": self.counts_store,
                 "frontier": self.frontier},
                checkpoint_identity(compiled, initial_state, max_states))
        self.truncated = False
        self.total = 1
        self.words.append(self.tables.encode_rows([initial_state]))
        self.parents.append(numpy.full(1, -1, dtype=numpy.int64))
        self.owner_seq = numpy.empty(0, dtype=numpy.int64)
        self.next_owner_seq = self.owner_seq
        #: Global index of the first state of ``owner_seq``'s level.
        self.merge_base = 0
        self.next_merge_base = 1
        self.assignments = []

    def seed(self, owner):
        self.owner_seq = self._np.full(1, owner, dtype=self._np.int64)
        self.merge_base = 0

    def load_reports(self, reports):
        np = self._np
        workers = self.workers
        self.counts = {}
        self.edge_streams = {}
        self.resolution_streams = {}
        self.cand_provenance = {}
        self.cand_rows = {}
        for worker, sections in reports.items():
            self.counts[worker] = np.frombuffer(
                bytes(sections[0]), dtype="<u2").astype(np.int64)
            self.edge_streams[worker] = np.frombuffer(
                bytes(sections[1]), dtype="<i8")
            self.resolution_streams[worker] = [
                np.frombuffer(bytes(sections[2 + requester]), dtype="<i8")
                for requester in range(workers)]
            # Provenance fits in int64 (parent index << 16 | transition),
            # and sorting signed matches unsigned on non-negative values.
            self.cand_provenance[worker] = np.frombuffer(
                bytes(sections[2 + workers]), dtype="<u8").astype(np.int64)
            self.cand_rows[worker] = np.frombuffer(
                bytes(sections[3 + workers]),
                dtype="<u8").reshape(-1, self.word_count).astype(np.uint64)

    def admit(self):
        np = self._np
        base = self.total
        parts_provenance = []
        parts_worker = []
        parts_pending = []
        for worker in range(self.workers):
            provenance = self.cand_provenance.get(worker)
            if provenance is None or not len(provenance):
                continue
            parts_provenance.append(provenance)
            parts_worker.append(np.full(len(provenance), worker,
                                        dtype=np.int64))
            parts_pending.append(np.arange(len(provenance), dtype=np.int64))
        if not parts_provenance:
            self.assignments = [np.empty(0, dtype=np.int64)
                                for _ in range(self.workers)]
            self.next_owner_seq = np.empty(0, dtype=np.int64)
            self.next_merge_base = base
            return 0
        provenance_all = np.concatenate(parts_provenance)
        worker_all = np.concatenate(parts_worker)
        pending_all = np.concatenate(parts_pending)
        # Provenance values are unique across the level (one candidate per
        # first-discovery edge), so this argsort reproduces both the
        # sequential BFS discovery order and the list merger's
        # (provenance, worker, pending) tuple sort; ``stable`` keeps the
        # tuple tie-break exact even if a duplicate ever slipped through.
        order = np.argsort(provenance_all, kind="stable")
        capacity = max(0, self.max_states - base)
        if len(order) > capacity:
            self.truncated = True
            order = order[:capacity]
        admitted_worker = worker_all[order]
        admitted_pending = pending_all[order]
        self.parents.append(provenance_all[order])
        rows = np.empty((len(order), self.word_count), dtype=np.uint64)
        global_index = base + np.arange(len(order), dtype=np.int64)
        assignments = []
        for worker in range(self.workers):
            pending_count = len(self.cand_provenance.get(worker, ()))
            assignment = np.full(pending_count, -1, dtype=np.int64)
            mine = np.flatnonzero(admitted_worker == worker)
            if len(mine):
                assignment[admitted_pending[mine]] = global_index[mine]
                rows[mine] = self.cand_rows[worker][admitted_pending[mine]]
            assignments.append(assignment)
        self.words.append(rows)
        self.total = base + len(order)
        self.assignments = assignments
        self.next_owner_seq = admitted_worker
        self.next_merge_base = base
        return int(len(order))

    def assignment_payload(self, worker):
        return self.assignments[worker].tobytes()

    def merge(self):
        # The vectorised phase-4: per reporting worker, resolve its
        # negative references through the owners' resolution streams
        # (consumed strictly front-to-back -- the FIFO pipes and in-order
        # expansion guarantee stream order matches reference order), drop
        # rejected edges (their sources join the frontier), then scatter
        # each worker's kept edges into the level's global discovery-order
        # slots in one fancy-indexed assignment.
        np = self._np
        owner_arr = self.owner_seq
        level_size = len(owner_arr)
        level_counts = np.zeros(level_size, dtype=np.int64)
        worker_positions = {}
        worker_edges = {}
        feedback = [b""] * self.workers if self.memo_size else None
        frontier_parts = []
        for worker, stream in self.edge_streams.items():
            positions = np.flatnonzero(owner_arr == worker)
            if not len(positions):
                continue
            counts = self.counts[worker]
            negatives = np.flatnonzero(stream < 0)
            if len(negatives):
                keys = -stream[negatives] - 1
                ref_owner = keys >> 16
                resolved = np.empty(len(keys), dtype=np.int64)
                for owner in np.unique(ref_owner).tolist():
                    refs = ref_owner == owner
                    ref_count = int(refs.sum())
                    stream_o = self.resolution_streams[owner][worker]
                    if ref_count > len(stream_o):
                        raise VerificationError(
                            "sharded exploration shard {} resolved fewer "
                            "references than worker {} issued".format(
                                owner, worker))
                    values = stream_o[:ref_count].astype(np.int64)
                    pending = values < 0
                    if pending.any():
                        values[pending] = self.assignments[owner][
                            -values[pending] - 1]
                    resolved[refs] = values
                if feedback is not None:
                    foreign = ref_owner != worker
                    if foreign.any():
                        feedback[worker] = resolved[foreign].tobytes()
                filled = stream.astype(np.int64)  # writable copy
                filled[negatives] = (keys & 0xFFFF) | (resolved << 16)
                rejected = resolved < 0
                if rejected.any():
                    keep = np.ones(len(stream), dtype=bool)
                    keep[negatives[rejected]] = False
                    segment = np.repeat(
                        np.arange(len(counts), dtype=np.int64), counts)
                    dropped = np.bincount(segment[negatives[rejected]],
                                          minlength=len(counts))
                    counts = counts - dropped
                    frontier_parts.append(
                        self.merge_base + positions[np.flatnonzero(dropped)])
                    filled = filled[keep]
            else:
                filled = stream
            level_counts[positions] = counts
            worker_positions[worker] = (positions, counts)
            worker_edges[worker] = filled
        level_offsets = np.zeros(level_size + 1, dtype=np.int64)
        np.cumsum(level_counts, out=level_offsets[1:])
        level_edges = np.empty(int(level_offsets[-1]), dtype=np.int64)
        for worker, (positions, counts) in worker_positions.items():
            source = worker_edges[worker]
            if not len(source):
                continue
            destination = (np.repeat(level_offsets[positions], counts)
                           + self._group_arange(counts))
            level_edges[destination] = source
        self.edges.append(level_edges)
        self.counts_store.append(level_counts)
        if frontier_parts:
            self.frontier.append(np.sort(np.concatenate(frontier_parts)))
        return feedback

    def advance(self):
        self.owner_seq = self.next_owner_seq
        self.merge_base = self.next_merge_base
        # Stream the merged level out of memory (see SpillPool.drop_resident).
        self.pool.drop_resident()

    def record_checkpoint(self, levels):
        """Manifest the just-merged level (the same layout as batch)."""
        if self.checkpointer is None:
            return
        self.checkpointer.record_level({
            "levels": int(levels),
            "total": int(self.total),
            "truncated": bool(self.truncated),
            "level_start": int(self.merge_base),
        })

    def finish(self, exchange_stats, timing):
        np = self._np
        graph = self.graph
        pool = self.pool
        total = self.total
        graph._words = self.words.trim()
        graph._parents_arr = self.parents.trim()
        graph._edge_data = self.edges.trim()
        # Every admitted state is merged by the following level's merge
        # (the final, empty-admission level included), so the counts store
        # covers all states; the CSR offsets are one cumulative sum.
        counted = len(self.counts_store)
        offsets = self._array_store(pool, "offsets", np.int64)
        offsets.set_length(total + 1)
        offsets_view = offsets.data
        offsets_view[0] = 0
        if counted:
            np.cumsum(self.counts_store.data, out=offsets_view[1:counted + 1])
        if counted < total:
            offsets_view[counted + 1:] = offsets_view[counted]
        self.counts_store.release()
        graph._edge_offsets = offsets.trim()
        graph._frontier_arr = self.frontier.trim()
        # The hash index only accelerates lookups (it is not part of the
        # bit-identical contract), so it is built once here rather than
        # merged level by level: hash every stored row in chunks, then one
        # argsort.  The argsort's O(states) temporaries are the only
        # above-frontier RAM this path allocates.
        keys_store = self._array_store(pool, "hash-keys", np.uint64)
        keys_store.set_length(total)
        keys_view = keys_store.data
        chunk = 1 << 16
        words_view = graph._words
        for start in range(0, total, chunk):
            stop = min(start + chunk, total)
            keys_view[start:stop] = self.tables.hash_rows(
                words_view[start:stop])
        order = np.argsort(keys_view, kind="stable").astype(np.int64)
        keys_view[:] = keys_view[order]
        idx_store = self._array_store(pool, "hash-idx", np.int64)
        idx_store.append(order)
        graph._hash_keys = keys_store.trim()
        graph._hash_idx = idx_store.trim()
        graph.truncated = self.truncated
        graph._spill_pool = pool
        if self.checkpointer is not None:
            # Completed: nothing left to resume from, nothing left on disk.
            self.checkpointer.discard()
            pool.discard_checkpoint_files()
        graph.exchange_stats = exchange_stats
        graph.exploration_stats = {
            "engine": "sharded",
            "levels": exchange_stats["levels"],
            "states": total,
            "edges": int(len(graph._edge_data)),
            "phases": dict(timing),
            "spill": pool.stats(),
            "checkpoint": {"directory": self.checkpoint_dir,
                           "resumed_from_level": None},
        }
        return graph

    def abort(self):
        self.pool.close()


def _drive(compiled, initial_state, max_states, workers, connections, sender,
           memo_size, spill=None, checkpoint=None):
    from time import perf_counter

    #: Per-phase second counters, attached as ``exploration_stats``
    #: ``phases`` and printed when REPRO_SHARD_TIMING is set: wait
    #: (receiving/relaying), admit (phase 2), merge (phase 4).
    timing = {"wait": 0.0, "admit": 0.0, "merge": 0.0}

    place_names = compiled.place_names
    transition_names = compiled.transition_names
    row_width = _state_row_width(len(place_names))

    merger_class = _ListMerger
    try:
        from repro.petri.batch import numpy_available
        if numpy_available():
            merger_class = _ColumnarMerger
    except ImportError:  # pragma: no cover - batch always importable
        pass
    merger = merger_class(compiled, initial_state, max_states, workers,
                          memo_size, spill, checkpoint)
    exchange_stats = {"memo_hits": 0, "foreign_refs": 0, "levels": 0,
                      "chunk_messages": 0}

    try:
        # Level 0: seed the owning shard; everyone else gets empty
        # assignments.
        owner = shard_of(initial_state, workers)
        merger.seed(owner)
        sender.send(owner, bytes([_MSG_SEED])
                    + initial_state.to_bytes(row_width, "little"))
        for worker in range(workers):
            if worker != owner:
                sender.send(worker, bytes([_MSG_ASSIGN]))

        while True:
            exchange_stats["levels"] += 1
            # Phase 1: collect successor chunks as workers expand, relaying
            # each chunk to the shard that owns its states as soon as it
            # arrives (the workers resolve them while still expanding).
            phase_started = perf_counter()
            waiting = set(range(workers))
            reports = {}
            while waiting:
                for connection in connection_wait(
                        [connections[w] for w in waiting], timeout=1.0):
                    worker = connections.index(connection)
                    message = _recv(connections, worker)
                    kind = message[0]
                    if kind == _MSG_OVERFLOW:
                        raise SafenessOverflowError(
                            transition_names[message[1] | (message[2] << 8)],
                            place_names[message[3] | (message[4] << 8)])
                    if kind == _MSG_CHUNK:
                        exchange_stats["chunk_messages"] += 1
                        final = message[1]
                        batches = _unpack_sections(memoryview(message), 2)
                        for destination in range(workers):
                            if destination == worker:
                                continue
                            payload = batches[destination]
                            # Empty non-final chunks carry no information;
                            # the final marker must reach every peer
                            # regardless.
                            if final or len(payload):
                                sender.send(destination,
                                            bytes([_MSG_RELAY, worker, final])
                                            + bytes(payload))
                    elif kind == _MSG_REPORT:
                        reports[worker] = _unpack_sections(
                            memoryview(message), 1)
                        waiting.discard(worker)
                    else:
                        raise VerificationError(
                            "coordinator received unexpected message "
                            "{!r}".format(kind))
                if sender.error is not None:
                    raise VerificationError(
                        "sharded exploration dispatch failed: {}".format(
                            sender.error))
            for worker, sections in reports.items():
                report_stats = array("Q")
                report_stats.frombytes(sections[4 + workers])
                exchange_stats["memo_hits"] += report_stats[0]
                exchange_stats["foreign_refs"] += report_stats[1]
            merger.load_reports(reports)
            timing["wait"] += perf_counter() - phase_started
            phase_started = perf_counter()

            # Phase 2: admission (provenance-sorted; see the mergers).
            admitted = merger.admit()
            timing["admit"] += perf_counter() - phase_started

            # Phase 3: broadcast the assignments immediately -- the workers
            # start expanding the next level while the coordinator is still
            # merging this level's edge streams below.  When nothing was
            # admitted the exploration is over; the workers are left
            # waiting for assignments and the caller's shutdown message is
            # the next thing they see (the final merge below still runs).
            finished = not admitted
            if not finished:
                for worker in range(workers):
                    sender.send(worker, bytes([_MSG_ASSIGN])
                                + merger.assignment_payload(worker))
            phase_started = perf_counter()

            # Phase 4: merge the level's edge streams into the graph.  The
            # memo feedback pairs positionally with each worker's shipped
            # list; workers only push a shipped list when it is non-empty,
            # so empty feedback is not sent (and none is after the final
            # level).
            feedback = merger.merge()
            if feedback is not None and not finished:
                for worker in range(workers):
                    payload = feedback[worker]
                    if len(payload):
                        sender.send(worker, bytes([_MSG_MEMO]) + payload)
            timing["merge"] += perf_counter() - phase_started
            if finished:
                break
            merger.advance()
            # Fault point of the crash-recovery tier: firing here leaves
            # the merged level's rows on disk but unmanifested, the torn
            # state a mid-level SIGKILL of the coordinator produces.
            if _faults.trigger("kill_worker", "level"):
                import signal
                os.kill(os.getpid(), signal.SIGKILL)
            merger.record_checkpoint(exchange_stats["levels"])

        if os.environ.get("REPRO_SHARD_TIMING"):
            import sys
            print("sharded coordinator: wait {wait:.2f}s admit {admit:.2f}s "
                  "merge {merge:.2f}s".format(**timing), file=sys.stderr)
        return merger.finish(exchange_stats, timing)
    except BaseException:
        # Exploration died mid-level: release the merger's stores (and
        # spill-file handles) now instead of waiting for collection.
        merger.abort()
        raise
