"""Sharded frontier-partitioned BFS over the compiled bitmask relation.

The sequential explorer (:func:`repro.petri.compiled.explore_compiled`) is
bounded by one core: every enabled-set update, every firing and -- the real
limiter at scale -- every dedup probe of the ever-growing state index runs
in one process.  This module distributes all three across shard workers
while keeping the resulting graph **bit-identical**: same states in the same
discovery order, same packed edge lists, same BFS parents (hence traces),
same frontier and truncation behaviour, so every property verdict computed
on a sharded graph equals the sequential one exactly.

Architecture
------------

* **Workers own hash-partitioned shards of the state space.**  A state
  belongs to the worker ``hash(state) % workers`` (Python's int hash, so the
  partition is reproducible).  Each worker keeps the index of *its* states
  only -- dedup, the memory hog of explicit exploration, is thereby both
  parallelised and partitioned.
* **Cross-shard successors are exchanged in batches.**  Expanding a level,
  a worker resolves own-shard successors against its local index and sends
  every foreign successor to that successor's owner in one batch per level
  (relayed by the coordinator, which never parses them).  The owner dedups
  against its shard and answers with a *resolution stream* -- a known global
  index, or a shard-local id for a newly discovered state.
* **The coordinator replays only admissions, not edges.**  New states are
  admitted in the exact order the sequential BFS would discover them: every
  candidate carries its provenance ``parent_index << 16 | transition``, the
  minimum over all discoverers, and candidates are admitted in sorted
  provenance order up to ``max_states`` -- which reproduces sequential
  discovery order, truncation, frontier and parent pointers bit for bit.
  Edge lists arrive as packed 64-bit streams (the graph's own edge format)
  parsed at C speed; the coordinator's per-edge Python work is a single
  append for resolved edges.

The per-level message round trip is: coordinator sends admission
assignments, workers expand and exchange successor batches, workers report
(edge stream, resolution streams, new-state candidates), coordinator admits
and merges.  A 1-safeness overflow detected by a worker aborts the
exploration with the same :class:`~repro.exceptions.SafenessOverflowError`
the sequential engine raises (under ``engine="auto"`` the caller then falls
back to the explicit explorer, exactly as before).
"""

import os
import threading
from multiprocessing.connection import wait as connection_wait

from repro.exceptions import SafenessOverflowError, VerificationError
from repro.parallel.context import mp_context
from repro.petri.compiled import (
    CompiledNet,
    CompiledReachabilityGraph,
    expand_watch_pairs,
    iter_bits,
    scan_enabled_mask,
)

#: Sentinel transition index: "compute the enabled mask with a full scan"
#: (used for the initial state, which has no parent to update from).
_FULL_SCAN = 0xFFFF

#: Message type prefixes (coordinator -> worker).
_MSG_SEED = 0x53        # "S": level-0 seed (initial state)
_MSG_ASSIGN = 0x41      # "A": admission assignments for the previous level
_MSG_RELAY = 0x52       # "R": relayed successor batch from another shard
_MSG_QUIT = 0x51        # "Q": shutdown

#: Worker -> coordinator message prefixes.
_MSG_OUTBOX = 0x4F      # "O": per-destination successor batches
_MSG_REPORT = 0x45      # "E": edge stream + resolutions + candidates
_MSG_OVERFLOW = 0x56    # "V": 1-safeness overflow (transition, place)


def _pack_sections(sections):
    """Concatenate byte *sections* with 4-byte little-endian length headers."""
    out = bytearray()
    for section in sections:
        out += len(section).to_bytes(4, "little")
        out += section
    return bytes(out)


def _unpack_sections(buf, offset=0):
    """Inverse of :func:`_pack_sections` (returns a list of memory slices)."""
    sections = []
    end = len(buf)
    while offset < end:
        length = int.from_bytes(buf[offset:offset + 4], "little")
        offset += 4
        sections.append(buf[offset:offset + length])
        offset += length
    return sections


def shard_of(state, workers):
    """The shard (worker index) owning an integer state, by hash partition.

    ``hash`` of a Python int is deterministic (no ``PYTHONHASHSEED``
    dependence), so the partition -- and with it the exact batch layout of
    the exchange -- is reproducible run to run.
    """
    return hash(state) % workers


class _ShardTables:
    """The picklable slice of a :class:`CompiledNet` a shard worker needs."""

    __slots__ = ("consume", "produce", "need", "affected",
                 "place_count", "transition_count")

    def __init__(self, compiled):
        self.consume = list(compiled.consume)
        self.produce = list(compiled.produce)
        self.need = list(compiled.need)
        self.affected = list(compiled.affected)
        self.place_count = len(compiled.place_names)
        self.transition_count = len(compiled.transition_names)


class _ShardWorker:
    """One shard: local state index, expansion, and successor resolution.

    Per level the worker expands the states admitted to its shard (in global
    discovery order), emits one packed edge stream, one successor batch per
    foreign shard, one resolution stream per requesting shard, and the list
    of its newly discovered (pending) states with min-provenance -- see the
    module docstring for how the coordinator stitches these together.
    """

    def __init__(self, connection, tables, worker_id, workers):
        self.connection = connection
        self.tables = tables
        self.worker_id = worker_id
        self.workers = workers
        self.state_width = (tables.place_count + 7) // 8
        self.pairs = expand_watch_pairs(tables.need, tables.affected)
        self.local_index = {}   # own-shard state -> global index
        self.pending = {}       # own-shard state -> pending id (this level)
        self.records = []       # pending id -> (state, parent_mask, transition)
        self.provenance = []    # pending id -> min provenance
        self.expansion = []     # (global index, state, parent_mask, transition)

    # -- per-level protocol ---------------------------------------------------

    def run(self):
        connection = self.connection
        while True:
            message = connection.recv_bytes()
            kind = message[0]
            if kind == _MSG_QUIT:
                return
            if kind == _MSG_SEED:
                state = int.from_bytes(message[1:], "little")
                self.local_index[state] = 0
                self.expansion = [(0, state, 0, _FULL_SCAN)]
            elif kind == _MSG_ASSIGN:
                self._apply_assignments(message)
            else:
                raise VerificationError(
                    "shard worker received unexpected message {!r}".format(kind))
            try:
                report = self._expand_and_exchange()
            except SafenessOverflowError as overflow:
                connection.send_bytes(
                    bytes([_MSG_OVERFLOW])
                    + int(overflow.transition).to_bytes(2, "little")
                    + int(overflow.place).to_bytes(2, "little"))
                return
            if report is None:
                return  # the coordinator shut the exploration down mid-level
            connection.send_bytes(report)

    def _apply_assignments(self, message):
        """Admission results for last level's pendings; queue the admitted."""
        from array import array

        assigned = array("q")
        assigned.frombytes(memoryview(message)[1:])
        records = self.records
        local_index = self.local_index
        expansion = []
        expansion_append = expansion.append
        for pending_id, index in enumerate(assigned):
            if index < 0:
                continue  # rejected: the state bound was hit first
            state, parent_mask, transition = records[pending_id]
            local_index[state] = index
            expansion_append((index, state, parent_mask, transition))
        expansion.sort()  # expand in global discovery order
        self.expansion = expansion
        self.pending = {}
        self.records = []
        self.provenance = []

    def _expand_and_exchange(self):
        from array import array

        tables = self.tables
        consume = tables.consume
        produce = tables.produce
        need = tables.need
        pairs = self.pairs
        state_width = self.state_width
        mask_width = (tables.transition_count + 7) // 8
        worker_id = self.worker_id
        workers = self.workers
        connection = self.connection
        local_index = self.local_index
        local_index_get = local_index.get
        pending = self.pending
        pending_get = pending.get
        records = self.records
        records_append = records.append
        provenance_list = self.provenance
        provenance_append = provenance_list.append

        counts = array("H")
        counts_append = counts.append
        edges = array("q")
        edges_append = edges.append
        outboxes = [bytearray() for _ in range(workers)]
        resolutions = [array("q") for _ in range(workers)]
        own_resolutions_append = resolutions[worker_id].append

        for current, state, parent_mask, transition in self.expansion:
            if transition == _FULL_SCAN:
                mask = scan_enabled_mask(need, state)
            else:
                watch, touched = pairs[transition]
                mask = parent_mask & ~touched
                for bit, other_need in watch:
                    if (state & other_need) == other_need:
                        mask |= bit
            mask_bytes = None
            provenance_base = current << 16
            edge_count = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                index = low.bit_length() - 1
                remainder = state & ~consume[index]
                produced = produce[index]
                overflow = remainder & produced
                if overflow:
                    raise SafenessOverflowError(index, next(iter_bits(overflow)))
                successor = remainder | produced
                edge_count += 1
                owner = hash(successor) % workers
                if owner == worker_id:
                    resolved = local_index_get(successor)
                    if resolved is not None:
                        # Known own-shard state: a direct, final packed edge.
                        edges_append(index | (resolved << 16))
                        continue
                    # New own-shard state: a reference into this shard's own
                    # resolution stream (min-provenance kept for admission).
                    pending_id = pending_get(successor)
                    if pending_id is None:
                        pending_id = len(records)
                        pending[successor] = pending_id
                        records_append((successor, mask, index))
                        provenance_append(provenance_base | index)
                    elif provenance_base | index < provenance_list[pending_id]:
                        provenance_list[pending_id] = provenance_base | index
                    edges_append(-(index | (worker_id << 16)) - 1)
                    own_resolutions_append(-pending_id - 1)
                else:
                    # Foreign successor: ship it to its owner, emit a
                    # reference the coordinator fills from the owner's
                    # resolution stream for this shard.  The record carries
                    # no separate transition -- the provenance's low 16 bits
                    # are the transition already.
                    if mask_bytes is None:
                        mask_bytes = mask.to_bytes(mask_width, "little")
                    outbox = outboxes[owner]
                    outbox += successor.to_bytes(state_width, "little")
                    outbox += mask_bytes
                    outbox += (provenance_base | index).to_bytes(8, "little")
                    edges_append(-(index | (owner << 16)) - 1)
            counts_append(edge_count)

        connection.send_bytes(bytes([_MSG_OUTBOX]) + _pack_sections(outboxes))

        # Resolve the successor batches the other shards sent us.
        from_bytes = int.from_bytes
        inbound = [None] * workers
        received = 0
        while received < workers - 1:
            message = connection.recv_bytes()
            if message[0] == _MSG_QUIT:
                # The coordinator aborted the level (e.g. another shard hit a
                # 1-safeness overflow); exit quietly instead of waiting for
                # relays that will never come.
                return None
            if message[0] != _MSG_RELAY:
                raise VerificationError(
                    "shard worker expected a relay, got {!r}".format(message[0]))
            inbound[message[1]] = memoryview(message)[2:]
            received += 1
        for requester in range(workers):
            batch = inbound[requester]
            if not batch:
                continue
            stream_append = resolutions[requester].append
            position = 0
            end = len(batch)
            while position < end:
                state_end = position + state_width
                state = from_bytes(batch[position:state_end], "little")
                mask_end = state_end + mask_width
                position = mask_end + 8
                resolved = local_index_get(state)
                if resolved is not None:
                    stream_append(resolved)
                    continue
                pending_id = pending_get(state)
                provenance = from_bytes(batch[mask_end:position], "little")
                if pending_id is None:
                    pending_id = len(records)
                    pending[state] = pending_id
                    parent_mask = from_bytes(batch[state_end:mask_end],
                                             "little")
                    records_append((state, parent_mask, provenance & 0xFFFF))
                    provenance_append(provenance)
                elif provenance < provenance_list[pending_id]:
                    provenance_list[pending_id] = provenance
                stream_append(-pending_id - 1)

        candidate_states = bytearray()
        for state, _, _ in records:
            candidate_states += state.to_bytes(state_width, "little")
        candidate_provenance = array("Q", provenance_list)
        return bytes([_MSG_REPORT]) + _pack_sections(
            [counts.tobytes(), edges.tobytes()]
            + [stream.tobytes() for stream in resolutions]
            + [candidate_provenance.tobytes(), candidate_states])


def _shard_worker_main(connection, tables, worker_id, workers):
    try:
        _ShardWorker(connection, tables, worker_id, workers).run()
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        connection.close()


class _Sender:
    """A dispatch thread: keeps coordinator receives deadlock-free.

    Pipes have finite OS buffers; if the coordinator blocked sending to a
    worker that is itself blocked sending its report back, both sides would
    wait forever.  Routing every outbound message through one thread lets
    the coordinator's main loop keep draining inbound traffic while a send
    backpressures.
    """

    def __init__(self, connections):
        self.connections = connections
        self.queue = []
        self.lock = threading.Lock()
        self.ready = threading.Event()
        self.closed = False
        self.error = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def send(self, worker, payload):
        with self.lock:
            self.queue.append((worker, payload))
            self.ready.set()

    def close(self):
        with self.lock:
            self.closed = True
            self.ready.set()
        self.thread.join(timeout=10.0)

    def _run(self):
        while True:
            self.ready.wait()
            with self.lock:
                batch, self.queue = self.queue, []
                if not batch and self.closed:
                    return
                self.ready.clear()
            for worker, payload in batch:
                try:
                    self.connections[worker].send_bytes(payload)
                except (BrokenPipeError, OSError) as error:
                    self.error = error
                    return


def explore_sharded(compiled, marking=None, max_states=200000, workers=None):
    """Breadth-first exploration sharded across worker processes.

    Returns a :class:`~repro.petri.compiled.CompiledReachabilityGraph`
    bit-identical to ``explore_compiled(compiled, marking, max_states)`` --
    see the module docstring for how.  *workers* defaults to the CPU count.
    """
    if not isinstance(compiled, CompiledNet):
        compiled = CompiledNet.compile(compiled)
    workers = int(workers) if workers else (os.cpu_count() or 1)
    if workers < 1:
        raise VerificationError(
            "sharded exploration needs at least one worker, got {}".format(
                workers))
    if workers > 127:
        raise VerificationError(
            "sharded exploration supports at most 127 workers")
    initial = marking if marking is not None else compiled.net.initial_marking()
    initial_state = compiled.encode(initial)

    context = mp_context()
    tables = _ShardTables(compiled)
    connections = []
    processes = []
    for worker_id in range(workers):
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=_shard_worker_main,
            args=(child_end, tables, worker_id, workers), daemon=True)
        process.start()
        child_end.close()
        connections.append(parent_end)
        processes.append(process)
    sender = _Sender(connections)
    completed = False
    try:
        graph = _drive(compiled, initial_state, max_states, workers,
                       connections, sender)
        completed = True
        return graph
    finally:
        if not completed:
            # Abort path (overflow, worker death, any mid-level error):
            # workers may be blocked writing into full pipes, and the sender
            # thread may be blocked writing towards them -- a blocking QUIT
            # from here would deadlock.  Kill the workers first; the broken
            # pipes then unblock the sender thread too.
            for process in processes:
                process.terminate()
        sender.close()
        for connection in connections:
            try:
                connection.send_bytes(bytes([_MSG_QUIT]))
            except (BrokenPipeError, OSError):
                pass
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for connection in connections:
            connection.close()


def _recv(connections, worker):
    try:
        return connections[worker].recv_bytes()
    except (EOFError, OSError):
        raise VerificationError(
            "sharded exploration worker {} died mid-level".format(worker))


def _drive(compiled, initial_state, max_states, workers, connections, sender):
    from array import array
    from time import perf_counter

    #: Per-phase second counters, printed when REPRO_SHARD_TIMING is set:
    #: wait (receiving/relaying), admit (phase 2), merge (phase 3).
    timing = {"wait": 0.0, "admit": 0.0, "merge": 0.0}

    place_names = compiled.place_names
    transition_names = compiled.transition_names
    state_width = (len(place_names) + 7) // 8
    from_bytes = int.from_bytes

    graph = CompiledReachabilityGraph(compiled, initial_state)
    states = graph._mask_states
    edges = graph._mask_edges
    parents = graph._parents
    frontier = graph._frontier_indices
    truncated = False

    # The initial state's edge list is not pre-created: edge lists are
    # appended by the merge phase in discovery order, starting with the
    # initial state itself when level 0's expansion is merged.
    states.append(initial_state)
    parents.append(None)

    # Level 0: seed the owning shard; everyone else gets empty assignments.
    owner_seq = [shard_of(initial_state, workers)]
    sender.send(owner_seq[0], bytes([_MSG_SEED])
                + initial_state.to_bytes(state_width, "little"))
    for worker in range(workers):
        if worker != owner_seq[0]:
            sender.send(worker, bytes([_MSG_ASSIGN]))

    states_append = states.append
    edges_append = edges.append
    parents_append = parents.append
    frontier_add = frontier.add

    while owner_seq:
        # Phase 1: collect successor batches as workers finish expanding,
        # relaying each batch to the shard that owns its states.
        phase_started = perf_counter()
        waiting = set(range(workers))
        reports = {}
        while waiting:
            for connection in connection_wait(
                    [connections[w] for w in waiting], timeout=1.0):
                worker = connections.index(connection)
                message = _recv(connections, worker)
                kind = message[0]
                if kind == _MSG_OVERFLOW:
                    raise SafenessOverflowError(
                        transition_names[message[1] | (message[2] << 8)],
                        place_names[message[3] | (message[4] << 8)])
                if kind == _MSG_OUTBOX:
                    batches = _unpack_sections(memoryview(message), 1)
                    for destination in range(workers):
                        if destination != worker:
                            sender.send(destination,
                                        bytes([_MSG_RELAY, worker])
                                        + bytes(batches[destination]))
                elif kind == _MSG_REPORT:
                    reports[worker] = _unpack_sections(memoryview(message), 1)
                    waiting.discard(worker)
                else:
                    raise VerificationError(
                        "coordinator received unexpected message {!r}".format(
                            kind))
            if sender.error is not None:
                raise VerificationError(
                    "sharded exploration dispatch failed: {}".format(
                        sender.error))

        counts = {}
        edge_streams = {}
        resolution_streams = {}
        candidates = []
        pending_counts = [0] * workers
        for worker, sections in reports.items():
            counts[worker] = array("H")
            counts[worker].frombytes(sections[0])
            edge_streams[worker] = array("q")
            edge_streams[worker].frombytes(sections[1])
            streams = []
            for requester in range(workers):
                stream = array("q")
                stream.frombytes(sections[2 + requester])
                streams.append(stream)
            resolution_streams[worker] = streams
            provenance = array("Q")
            provenance.frombytes(sections[2 + workers])
            pending_counts[worker] = len(provenance)
            for pending_id, value in enumerate(provenance):
                candidates.append((value, worker, pending_id))
        candidate_states = {worker: reports[worker][3 + workers]
                            for worker in reports}

        timing["wait"] += perf_counter() - phase_started
        phase_started = perf_counter()

        # Phase 2: admission.  Sorting by provenance reproduces the exact
        # order the sequential BFS first reaches each new state, so indices,
        # parents and the truncation cut-off all match bit for bit.  The
        # provenance int *is* the packed parent pointer the graph stores.
        candidates.sort()
        rejected = array("q", [-1])
        assignments = [rejected * pending_counts[worker]
                       for worker in range(workers)]
        next_owner_seq = []
        next_owner_append = next_owner_seq.append
        index = len(states)
        for provenance, worker, pending_id in candidates:
            if index >= max_states:
                truncated = True
                break
            assignments[worker][pending_id] = index
            index += 1
            encoded = candidate_states[worker]
            states_append(from_bytes(
                encoded[pending_id * state_width:
                        (pending_id + 1) * state_width], "little"))
            parents_append(provenance)
            next_owner_append(worker)

        timing["admit"] += perf_counter() - phase_started

        # Phase 3: broadcast the assignments immediately -- the workers
        # start expanding the next level while the coordinator is still
        # merging this level's edge streams below.  When nothing was
        # admitted the exploration is over; the workers are left waiting
        # for assignments and the caller's shutdown message is the next
        # thing they see (the final merge below still runs).
        finished = not next_owner_seq
        if not finished:
            for worker in range(workers):
                sender.send(worker, bytes([_MSG_ASSIGN])
                            + assignments[worker].tobytes())
        phase_started = perf_counter()

        # Phase 4: merge the edge streams in global discovery order,
        # consuming each shard's resolution streams to finalise references.
        # Edge lists are created here, not at admission: states are merged
        # in exactly the order they were admitted, so plain appends keep
        # ``edges`` aligned with ``states``.
        positions = {worker: 0 for worker in reports}
        edge_cursors = {worker: 0 for worker in reports}
        requester_cursors = [[0] * workers for _ in range(workers)]
        requester_streams = [
            [resolution_streams[owner][worker] for owner in range(workers)]
            for worker in range(workers)
        ]
        for worker in owner_seq:
            position = positions[worker]
            edge_count = counts[worker][position]
            positions[worker] = position + 1
            cursor = edge_cursors[worker]
            chunk_end = cursor + edge_count
            chunk = edge_streams[worker][cursor:chunk_end]
            edge_cursors[worker] = chunk_end
            cursors = requester_cursors[worker]
            streams = requester_streams[worker]
            current_edges = []
            current_edges_append = current_edges.append
            complete = True
            for value in chunk:
                if value >= 0:
                    current_edges_append(value)
                    continue
                key = -value - 1
                owner = key >> 16
                offset = cursors[owner]
                cursors[owner] = offset + 1
                resolved = streams[owner][offset]
                if resolved < 0:
                    resolved = assignments[owner][-resolved - 1]
                    if resolved < 0:
                        complete = False
                        continue
                current_edges_append((key & 0xFFFF) | (resolved << 16))
            if not complete:
                frontier_add(len(edges))
            edges_append(current_edges)

        timing["merge"] += perf_counter() - phase_started
        if finished:
            break
        owner_seq = next_owner_seq

    if os.environ.get("REPRO_SHARD_TIMING"):
        import sys
        print("sharded coordinator: wait {wait:.2f}s admit {admit:.2f}s "
              "merge {merge:.2f}s".format(**timing), file=sys.stderr)
    graph.truncated = truncated
    return graph
