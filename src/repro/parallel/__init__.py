"""Parallel execution primitives: supervision, racing, sharded exploration.

Everything in the repo that spans more than one process goes through this
package:

* :mod:`~repro.parallel.context` -- one multiprocessing start-method policy
  (fork preferred, spawn fallback, ``REPRO_MP_START_METHOD`` override) so
  fork and spawn behave identically and CI can exercise both.
* :mod:`~repro.parallel.supervisor` -- the supervised process pool extracted
  from the campaign runner: per-task timeouts, crash containment, and
  first-winner cancellation (``stop_when``) for portfolio races.
* :mod:`~repro.parallel.sharded` -- frontier-partitioned BFS over the
  compiled bitmask relation, bit-identical to the single-process explorer
  but with the per-edge firing work spread across worker processes.
"""

from repro.parallel.context import in_daemon_worker, mp_context, start_method
from repro.parallel.sharded import explore_sharded, shard_of
from repro.parallel.supervisor import STATUSES, TaskOutcome, run_supervised

__all__ = [
    "STATUSES",
    "TaskOutcome",
    "explore_sharded",
    "in_daemon_worker",
    "mp_context",
    "run_supervised",
    "shard_of",
    "start_method",
]
