"""A supervised process pool: the shared engine under every parallel path.

This is the supervision machinery that used to live inside the campaign
runner, extracted so the racing portfolio checker (and any future parallel
subsystem) reuses it instead of growing its own: each *task* runs in its own
worker process (bounded to *parallelism* concurrent workers), a task that
hangs is terminated at its deadline, a worker that dies without reporting
(a crash, ``os._exit``, an OOM kill) is detected and recorded -- the caller
always gets one :class:`TaskOutcome` per task, never a hung pool.

On top of the campaign runner's semantics it adds **first-winner
cancellation**: pass ``stop_when`` (a predicate over :class:`TaskOutcome`)
and the pool terminates every other worker the moment an outcome satisfies
it, recording the losers as ``"cancelled"``.  That is exactly the shape of a
checker portfolio race -- first conclusive verdict wins, losers are killed
immediately instead of running out their budgets.

``parallelism=0`` runs the tasks inline in the calling process (no timeout
enforcement, but ``stop_when`` still short-circuits), which doubles as the
deterministic fallback inside daemonic workers that cannot spawn children.
"""

import queue as queue_module
import time
import traceback
from collections import deque

from repro.exceptions import ConfigurationError
from repro.parallel.context import mp_context

#: Seconds the supervisor waits for a dead worker's queued result to drain
#: before declaring the worker crashed.
_CRASH_GRACE = 0.5

#: The terminal statuses a task can end in.
STATUSES = ("ok", "error", "timeout", "crashed", "cancelled")


class TaskOutcome:
    """How one supervised task ended.

    *status* is ``"ok"`` (the task ran; *payload* holds its return value),
    ``"error"`` (the task raised; *error* holds the traceback), ``"timeout"``
    (the worker exceeded its deadline and was terminated), ``"crashed"`` (the
    worker died without reporting) or ``"cancelled"`` (a ``stop_when`` winner
    made the task moot and its worker was terminated).
    """

    __slots__ = ("task_id", "status", "payload", "error", "elapsed")

    def __init__(self, task_id, status, payload=None, error=None, elapsed=0.0):
        self.task_id = task_id
        self.status = status
        self.payload = payload
        self.error = error
        self.elapsed = elapsed

    @property
    def ok(self):
        return self.status == "ok"

    def __repr__(self):
        return "TaskOutcome({!r}, {})".format(self.task_id, self.status)


def _worker_main(task_id, target, args, results_queue):
    """Worker entry point: run one task and stream the outcome back."""
    started = time.perf_counter()
    try:
        payload = target(*args)
        results_queue.put((task_id, "ok", payload, None,
                           time.perf_counter() - started))
    except Exception:
        results_queue.put((task_id, "error", None, traceback.format_exc(),
                           time.perf_counter() - started))


def _check_ids(tasks):
    seen = set()
    for task_id, _, _ in tasks:
        if task_id in seen:
            raise ConfigurationError(
                "duplicate task id {!r}: the supervisor keys its bookkeeping "
                "by task id, so every task needs a unique one".format(task_id))
        seen.add(task_id)


def _run_inline(tasks, stop_when):
    outcomes = {}
    stopped = False
    for task_id, target, args in tasks:
        if stopped:
            outcomes[task_id] = TaskOutcome(task_id, "cancelled")
            continue
        started = time.perf_counter()
        try:
            payload = target(*args)
            outcome = TaskOutcome(task_id, "ok", payload=payload,
                                  elapsed=time.perf_counter() - started)
        except Exception:
            outcome = TaskOutcome(task_id, "error", error=traceback.format_exc(),
                                  elapsed=time.perf_counter() - started)
        outcomes[task_id] = outcome
        if stop_when is not None and stop_when(outcome):
            stopped = True
    return outcomes


def _drain(results_queue, records, block_seconds=0.0):
    """Move every available queue item into *records*."""
    while True:
        try:
            item = (results_queue.get(timeout=block_seconds)
                    if block_seconds else results_queue.get_nowait())
        except queue_module.Empty:
            return
        records[item[0]] = item[1:]
        block_seconds = 0.0


def _terminate(process):
    process.terminate()
    process.join(1.0)
    if process.is_alive():
        process.kill()
        process.join(1.0)


def run_supervised(tasks, parallelism, timeout=None, stop_when=None):
    """Run *tasks* in supervised worker processes; return their outcomes.

    Parameters
    ----------
    tasks:
        Iterable of ``(task_id, target, args)`` triples.  *target* must be a
        picklable callable (a module-level function) and *args* a picklable
        tuple -- the task is executed as ``target(*args)`` in a worker
        process and its return value must be picklable too.
    parallelism:
        Number of concurrent worker processes; ``0`` runs inline.
    timeout:
        Optional per-task deadline in seconds (worker mode only).
    stop_when:
        Optional predicate over :class:`TaskOutcome`.  The first outcome
        satisfying it wins the race: every other active worker is terminated
        immediately and every unfinished task is recorded as ``"cancelled"``.

    Returns the list of :class:`TaskOutcome` in task order.
    """
    tasks = [(task_id, target, tuple(args)) for task_id, target, args in tasks]
    _check_ids(tasks)
    if parallelism <= 0:
        outcomes = _run_inline(tasks, stop_when)
        return [outcomes[task_id] for task_id, _, _ in tasks]

    context = mp_context()
    results_queue = context.Queue()
    pending = deque(tasks)
    active = {}   # task_id -> (process, started, deadline)
    records = {}  # task_id -> (status, payload, error, elapsed)
    outcomes = {}
    winner_found = False

    while pending or active:
        while pending and len(active) < parallelism and not winner_found:
            task_id, target, args = pending.popleft()
            process = context.Process(
                target=_worker_main,
                args=(task_id, target, args, results_queue), daemon=True)
            process.start()
            started = time.monotonic()
            deadline = started + timeout if timeout is not None else None
            active[task_id] = (process, started, deadline)
        if winner_found and pending:
            while pending:
                task_id, _, _ = pending.popleft()
                outcomes[task_id] = TaskOutcome(task_id, "cancelled")
        _drain(results_queue, records, block_seconds=0.05)

        now = time.monotonic()
        for task_id in list(active):
            process, started, deadline = active[task_id]
            if task_id in records:
                process.join()
                del active[task_id]
                status, payload, error, elapsed = records.pop(task_id)
                outcome = TaskOutcome(task_id, status, payload=payload,
                                      error=error, elapsed=elapsed)
                outcomes[task_id] = outcome
                if (not winner_found and stop_when is not None
                        and stop_when(outcome)):
                    winner_found = True
            elif winner_found:
                _terminate(process)
                outcomes[task_id] = TaskOutcome(
                    task_id, "cancelled", elapsed=now - started)
                del active[task_id]
            elif deadline is not None and now > deadline:
                _terminate(process)
                outcomes[task_id] = TaskOutcome(
                    task_id, "timeout", elapsed=now - started,
                    error="task exceeded its {:.3g}s deadline and was "
                          "terminated".format(timeout))
                del active[task_id]
            elif not process.is_alive():
                # The worker died; give its (possibly buffered) result one
                # last chance to drain before declaring a crash.
                _drain(results_queue, records, block_seconds=_CRASH_GRACE)
                if task_id not in records:
                    outcomes[task_id] = TaskOutcome(
                        task_id, "crashed", elapsed=time.monotonic() - started,
                        error="worker process died with exit code {} before "
                              "reporting a result".format(process.exitcode))
                    del active[task_id]
                process.join()

    results_queue.close()
    return [outcomes[task_id] for task_id, _, _ in tasks]
