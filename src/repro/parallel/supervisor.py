"""A supervised process pool: the shared engine under every parallel path.

This is the supervision machinery that used to live inside the campaign
runner, extracted so the racing portfolio checker (and any future parallel
subsystem) reuses it instead of growing its own: each *task* runs in its own
worker process (bounded to *parallelism* concurrent workers), a task that
hangs is terminated at its deadline, a worker that dies without reporting
(a crash, ``os._exit``, an OOM kill) is detected and recorded -- the caller
always gets one :class:`TaskOutcome` per task, never a hung pool.

On top of the campaign runner's semantics it adds **first-winner
cancellation**: pass ``stop_when`` (a predicate over :class:`TaskOutcome`)
and the pool terminates every other worker the moment an outcome satisfies
it, recording the losers as ``"cancelled"``.  That is exactly the shape of a
checker portfolio race -- first conclusive verdict wins, losers are killed
immediately instead of running out their budgets.

``parallelism=0`` runs the tasks inline in the calling process (no timeout
enforcement, but ``stop_when`` still short-circuits), which doubles as the
deterministic fallback inside daemonic workers that cannot spawn children.

Two entry points share the machinery:

* :func:`run_supervised` -- the original batch call: run a task list, block,
  return the outcomes in task order.  ``on_outcome`` streams each
  :class:`TaskOutcome` to a callback the moment it is recorded.
* :class:`SupervisorPool` -- a **long-running** pool for serving workloads:
  tasks are submitted incrementally (with priorities and per-task
  deadlines), a supervision thread runs them as capacity frees up, and
  completion callbacks fire as tasks finish -- the async-friendly front the
  verification service daemon schedules on (callbacks marshal back into an
  event loop with ``call_soon_threadsafe``).
"""

import heapq
import itertools
import queue as queue_module
import threading
import time
import traceback
from collections import deque

from repro.exceptions import ConfigurationError
from repro.parallel.context import mp_context
from repro.utils import faults as _faults

#: Seconds the supervisor waits for a dead worker's queued result to drain
#: before declaring the worker crashed.
_CRASH_GRACE = 0.5

#: The terminal statuses a task can end in.
STATUSES = ("ok", "error", "timeout", "crashed", "cancelled")


class TaskOutcome:
    """How one supervised task ended.

    *status* is ``"ok"`` (the task ran; *payload* holds its return value),
    ``"error"`` (the task raised; *error* holds the traceback), ``"timeout"``
    (the worker exceeded its deadline and was terminated), ``"crashed"`` (the
    worker died without reporting) or ``"cancelled"`` (a ``stop_when`` winner
    made the task moot and its worker was terminated).
    """

    __slots__ = ("task_id", "status", "payload", "error", "elapsed")

    def __init__(self, task_id, status, payload=None, error=None, elapsed=0.0):
        self.task_id = task_id
        self.status = status
        self.payload = payload
        self.error = error
        self.elapsed = elapsed

    @property
    def ok(self):
        return self.status == "ok"

    def __repr__(self):
        return "TaskOutcome({!r}, {})".format(self.task_id, self.status)


def _worker_main(task_id, target, args, results_queue):
    """Worker entry point: run one task and stream the outcome back."""
    started = time.perf_counter()
    try:
        if _faults.trigger("kill_worker", "task"):
            import os
            import signal
            os.kill(os.getpid(), signal.SIGKILL)
        payload = target(*args)
        results_queue.put((task_id, "ok", payload, None,
                           time.perf_counter() - started))
    except Exception:
        results_queue.put((task_id, "error", None, traceback.format_exc(),
                           time.perf_counter() - started))


def _check_ids(tasks):
    seen = set()
    for task_id, _, _ in tasks:
        if task_id in seen:
            raise ConfigurationError(
                "duplicate task id {!r}: the supervisor keys its bookkeeping "
                "by task id, so every task needs a unique one".format(task_id))
        seen.add(task_id)


def _run_inline(tasks, stop_when, on_outcome=None):
    outcomes = {}
    stopped = False
    for task_id, target, args in tasks:
        if stopped:
            outcome = TaskOutcome(task_id, "cancelled")
        else:
            started = time.perf_counter()
            try:
                payload = target(*args)
                outcome = TaskOutcome(task_id, "ok", payload=payload,
                                      elapsed=time.perf_counter() - started)
            except Exception:
                outcome = TaskOutcome(task_id, "error",
                                      error=traceback.format_exc(),
                                      elapsed=time.perf_counter() - started)
        outcomes[task_id] = outcome
        if on_outcome is not None:
            on_outcome(outcome)
        if stop_when is not None and stop_when(outcome):
            stopped = True
    return outcomes


def _drain(results_queue, records, block_seconds=0.0):
    """Move every available queue item into *records*."""
    while True:
        try:
            item = (results_queue.get(timeout=block_seconds)
                    if block_seconds else results_queue.get_nowait())
        except queue_module.Empty:
            return
        records[item[0]] = item[1:]
        block_seconds = 0.0


def _terminate(process):
    process.terminate()
    process.join(1.0)
    if process.is_alive():
        process.kill()
        process.join(1.0)


def run_supervised(tasks, parallelism, timeout=None, stop_when=None,
                   on_outcome=None):
    """Run *tasks* in supervised worker processes; return their outcomes.

    Parameters
    ----------
    tasks:
        Iterable of ``(task_id, target, args)`` triples.  *target* must be a
        picklable callable (a module-level function) and *args* a picklable
        tuple -- the task is executed as ``target(*args)`` in a worker
        process and its return value must be picklable too.
    parallelism:
        Number of concurrent worker processes; ``0`` runs inline.
    timeout:
        Optional per-task deadline in seconds (worker mode only).
    stop_when:
        Optional predicate over :class:`TaskOutcome`.  The first outcome
        satisfying it wins the race: every other active worker is terminated
        immediately and every unfinished task is recorded as ``"cancelled"``.
    on_outcome:
        Optional callback invoked with each :class:`TaskOutcome` the moment
        it is recorded (completion order, not task order) -- the streaming
        hook progress reporters and event forwarders attach to.

    Returns the list of :class:`TaskOutcome` in task order.
    """
    tasks = [(task_id, target, tuple(args)) for task_id, target, args in tasks]
    _check_ids(tasks)
    if parallelism <= 0:
        outcomes = _run_inline(tasks, stop_when, on_outcome)
        return [outcomes[task_id] for task_id, _, _ in tasks]

    context = mp_context()
    results_queue = context.Queue()
    pending = deque(tasks)
    active = {}   # task_id -> (process, started, deadline)
    records = {}  # task_id -> (status, payload, error, elapsed)
    outcomes = {}
    winner_found = False

    def record(outcome):
        outcomes[outcome.task_id] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    while pending or active:
        while pending and len(active) < parallelism and not winner_found:
            task_id, target, args = pending.popleft()
            process = context.Process(
                target=_worker_main,
                args=(task_id, target, args, results_queue), daemon=True)
            process.start()
            started = time.monotonic()
            deadline = started + timeout if timeout is not None else None
            active[task_id] = (process, started, deadline)
        if winner_found and pending:
            while pending:
                task_id, _, _ = pending.popleft()
                record(TaskOutcome(task_id, "cancelled"))
        _drain(results_queue, records, block_seconds=0.05)

        now = time.monotonic()
        for task_id in list(active):
            process, started, deadline = active[task_id]
            if task_id in records:
                process.join()
                del active[task_id]
                status, payload, error, elapsed = records.pop(task_id)
                outcome = TaskOutcome(task_id, status, payload=payload,
                                      error=error, elapsed=elapsed)
                record(outcome)
                if (not winner_found and stop_when is not None
                        and stop_when(outcome)):
                    winner_found = True
            elif winner_found:
                _terminate(process)
                record(TaskOutcome(task_id, "cancelled",
                                   elapsed=now - started))
                del active[task_id]
            elif deadline is not None and now > deadline:
                _terminate(process)
                record(TaskOutcome(
                    task_id, "timeout", elapsed=now - started,
                    error="task exceeded its {:.3g}s deadline and was "
                          "terminated".format(timeout)))
                del active[task_id]
            elif not process.is_alive():
                # The worker died; give its (possibly buffered) result one
                # last chance to drain before declaring a crash.
                _drain(results_queue, records, block_seconds=_CRASH_GRACE)
                if task_id not in records:
                    record(TaskOutcome(
                        task_id, "crashed", elapsed=time.monotonic() - started,
                        error="worker process died with exit code {} before "
                              "reporting a result".format(process.exitcode)))
                    del active[task_id]
                process.join()

    results_queue.close()
    return [outcomes[task_id] for task_id, _, _ in tasks]


class _PoolTask:
    __slots__ = ("task_id", "target", "args", "timeout", "on_start",
                 "on_outcome")

    def __init__(self, task_id, target, args, timeout, on_start, on_outcome):
        self.task_id = task_id
        self.target = target
        self.args = args
        self.timeout = timeout
        self.on_start = on_start
        self.on_outcome = on_outcome


class SupervisorPool:
    """A long-running supervised pool with incremental submission.

    Where :func:`run_supervised` runs one task list to completion, the pool
    stays up: :meth:`submit` enqueues a task (higher *priority* runs first,
    FIFO within a priority) and returns immediately; a supervision thread
    starts queued tasks as capacity frees up, enforces per-task deadlines,
    detects dead workers, and invokes the task's ``on_outcome`` callback --
    and optional ``on_start`` -- from the supervision thread.  Callbacks
    must be quick and must not raise (a raising callback is swallowed and
    recorded on ``callback_errors`` rather than killing supervision); an
    asyncio consumer bridges with ``loop.call_soon_threadsafe``.

    The pool is the process front of the verification service daemon; the
    campaign scheduler drives it for batch runs too, so both fronts share
    one notion of timeout/crash containment.
    """

    def __init__(self, parallelism, timeout=None):
        parallelism = int(parallelism)
        if parallelism < 1:
            raise ConfigurationError(
                "a supervisor pool needs at least one worker (got {}); use "
                "run_supervised(parallelism=0) for inline execution".format(
                    parallelism))
        self.parallelism = parallelism
        self.timeout = timeout
        self.context = mp_context()
        self.callback_errors = 0
        self._results_queue = self.context.Queue()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._sequence = itertools.count()
        self._pending = []   # heap of (-priority, seq, _PoolTask)
        self._active = {}    # task_id -> (task, process, started, deadline)
        self._queued_ids = set()
        self._closed = False
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="supervisor-pool")
        self._thread.start()

    # -- submission ----------------------------------------------------------

    def submit(self, task_id, target, args=(), timeout=False, priority=0,
               on_start=None, on_outcome=None):
        """Enqueue ``target(*args)`` as *task_id*; return immediately.

        *timeout* defaults to the pool's deadline (pass ``None`` for no
        deadline on this task).  *priority* orders the queue (higher first).
        *on_outcome* receives the task's :class:`TaskOutcome` from the
        supervision thread.
        """
        if timeout is False:
            timeout = self.timeout
        task = _PoolTask(task_id, target, tuple(args), timeout, on_start,
                         on_outcome)
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "cannot submit to a shut-down supervisor pool")
            if task_id in self._queued_ids or task_id in self._active:
                raise ConfigurationError(
                    "duplicate task id {!r}: the pool keys its bookkeeping "
                    "by task id, so every in-flight task needs a unique "
                    "one".format(task_id))
            heapq.heappush(self._pending,
                           (-int(priority), next(self._sequence), task))
            self._queued_ids.add(task_id)
        self._wake.set()
        return task_id

    @property
    def queued(self):
        """Tasks waiting for a worker slot."""
        with self._lock:
            return len(self._pending)

    @property
    def running(self):
        """Tasks currently executing in a worker."""
        with self._lock:
            return len(self._active)

    @property
    def depth(self):
        """Total in-flight tasks (queued + running)."""
        with self._lock:
            return len(self._pending) + len(self._active)

    def shutdown(self, wait=True, cancel_pending=True):
        """Stop the pool: cancel queued tasks, terminate active workers.

        With ``cancel_pending`` every queued task is recorded as
        ``"cancelled"`` (its ``on_outcome`` still fires); active workers are
        terminated and recorded as ``"cancelled"`` too.  With
        ``cancel_pending=False`` the pool drains: no new submissions are
        accepted, queued and active tasks run to completion first.
        """
        with self._lock:
            self._closed = True
            self._drain_on_close = not cancel_pending
        self._wake.set()
        if wait:
            self._thread.join()

    # -- supervision loop ----------------------------------------------------

    def _notify(self, callback, *args):
        if callback is None:
            return
        try:
            callback(*args)
        except Exception:
            self.callback_errors += 1

    def _finish(self, task, outcome):
        self._notify(task.on_outcome, outcome)

    def _loop(self):
        records = {}
        while True:
            with self._lock:
                closed = self._closed
                drain = closed and getattr(self, "_drain_on_close", False)
                # Start queued tasks while there is capacity.
                started_tasks = []
                while (self._pending and len(self._active) < self.parallelism
                       and (not closed or drain)):
                    _, _, task = heapq.heappop(self._pending)
                    self._queued_ids.discard(task.task_id)
                    started_tasks.append(task)
                cancelled = []
                if closed and not drain:
                    while self._pending:
                        _, _, task = heapq.heappop(self._pending)
                        self._queued_ids.discard(task.task_id)
                        cancelled.append(task)
            for task in cancelled:
                self._finish(task, TaskOutcome(task.task_id, "cancelled"))
            for task in started_tasks:
                process = self.context.Process(
                    target=_worker_main,
                    args=(task.task_id, task.target, task.args,
                          self._results_queue),
                    daemon=True)
                process.start()
                started = time.monotonic()
                deadline = (started + task.timeout
                            if task.timeout is not None else None)
                with self._lock:
                    self._active[task.task_id] = (task, process, started,
                                                  deadline)
                self._notify(task.on_start, task.task_id)

            if closed and not drain:
                with self._lock:
                    active = list(self._active.values())
                    self._active.clear()
                for task, process, started, _ in active:
                    _terminate(process)
                    self._finish(task, TaskOutcome(
                        task.task_id, "cancelled",
                        elapsed=time.monotonic() - started))
                self._results_queue.close()
                return

            _drain(self._results_queue, records, block_seconds=0.05)
            now = time.monotonic()
            with self._lock:
                active_ids = list(self._active)
            for task_id in active_ids:
                with self._lock:
                    entry = self._active.get(task_id)
                if entry is None:
                    continue
                task, process, started, deadline = entry
                outcome = None
                if task_id in records:
                    process.join()
                    status, payload, error, elapsed = records.pop(task_id)
                    outcome = TaskOutcome(task_id, status, payload=payload,
                                          error=error, elapsed=elapsed)
                elif deadline is not None and now > deadline:
                    _terminate(process)
                    outcome = TaskOutcome(
                        task_id, "timeout", elapsed=now - started,
                        error="task exceeded its {:.3g}s deadline and was "
                              "terminated".format(task.timeout))
                elif not process.is_alive():
                    _drain(self._results_queue, records,
                           block_seconds=_CRASH_GRACE)
                    if task_id in records:
                        continue  # picked up next iteration
                    process.join()
                    outcome = TaskOutcome(
                        task_id, "crashed", elapsed=now - started,
                        error="worker process died with exit code {} before "
                              "reporting a result".format(process.exitcode))
                if outcome is not None:
                    with self._lock:
                        del self._active[task_id]
                    self._finish(task, outcome)
                    self._wake.set()  # capacity freed: start queued work now

            with self._lock:
                idle = not self._active and not self._pending and not closed
            if idle:
                self._wake.wait(timeout=1.0)
            self._wake.clear()
            with self._lock:
                if (self._closed and getattr(self, "_drain_on_close", False)
                        and not self._active and not self._pending):
                    self._results_queue.close()
                    return
