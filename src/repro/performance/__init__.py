"""Performance analysis of DFS pipelines (Fig. 5 of the paper).

Two complementary views are provided:

* **Analytic cycle analysis** (:mod:`repro.performance.cycles`,
  :mod:`repro.performance.analyzer`): every cycle of the dataflow graph is a
  token/bubble loop whose sustainable throughput is bounded by
  ``min(tokens, holes) / delay``; the slowest cycles limit the whole
  pipeline, and their highest-delay nodes are the bottleneck the tool
  highlights.
* **Timed token simulation** (:mod:`repro.performance.timed`): an
  event-driven simulation of the token game where each event takes the delay
  of its node, giving measured throughput and per-register activity.

The optimisation helpers suggest the same remedies the paper mentions:
adjusting the number of tokens, buffering with extra registers and wagging.
"""

from repro.performance.cycles import CycleMetrics, dataflow_cycles
from repro.performance.analyzer import PerformanceAnalyzer, PerformanceReport
from repro.performance.timed import TimedDfsSimulator, TimedRun
from repro.performance.optimization import suggest_optimisations, wagging_speedup

__all__ = [
    "CycleMetrics",
    "PerformanceAnalyzer",
    "PerformanceReport",
    "TimedDfsSimulator",
    "TimedRun",
    "dataflow_cycles",
    "suggest_optimisations",
    "wagging_speedup",
]
