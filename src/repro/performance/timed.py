"""Timed (event-driven) token simulation of DFS models.

The untimed token game of :mod:`repro.dfs.simulation` answers "what can
happen"; this module answers "how fast".  Each event, once enabled, completes
after the delay of its node; the simulator advances a global clock, fires the
earliest pending event, recomputes enabledness and repeats.  Measured
throughput at a chosen observation register is then simply the number of
tokens that passed through it divided by the elapsed time.

This timed view is what the performance benches use to compare the SDFS and
DFS versions of the motivating example: in the DFS version a False outcome of
``cond`` bypasses the expensive ``comp`` pipeline entirely, so the measured
time per item drops with the fraction of False tokens, whereas the SDFS
version always pays the worst-case latency.
"""

import heapq
import itertools
import random

from repro.exceptions import SimulationError
from repro.dfs.semantics import EventAction, marking_event_names, model_events
from repro.dfs.state import DfsState


class TimedRun:
    """Result of a timed simulation run."""

    def __init__(self, elapsed, fired_events, tokens_at_observed, observed):
        self.elapsed = float(elapsed)
        self.fired_events = list(fired_events)
        self.tokens_at_observed = int(tokens_at_observed)
        self.observed = observed

    @property
    def throughput(self):
        """Tokens per time unit observed at the observation register."""
        if self.elapsed <= 0:
            return 0.0
        return self.tokens_at_observed / self.elapsed

    @property
    def mean_cycle_time(self):
        """Average time between tokens at the observation register."""
        if self.tokens_at_observed == 0:
            return float("inf")
        return self.elapsed / self.tokens_at_observed

    def __repr__(self):
        return "TimedRun(elapsed={:.4g}, tokens={}, throughput={:.4g})".format(
            self.elapsed, self.tokens_at_observed, self.throughput)


class TimedDfsSimulator:
    """Event-driven timed simulation of the DFS token game."""

    def __init__(self, dfs, choice_policy=None, seed=None):
        """Create a timed simulator.

        Parameters
        ----------
        dfs:
            The dataflow structure to simulate.
        choice_policy:
            Optional ``policy(control_name, occurrence_index) -> bool`` used
            to resolve the True/False choice of uncontrolled control
            registers; by default the choice is random (seeded by *seed*).
        seed:
            Seed of the random choice resolution and tie-breaking.
        """
        self.dfs = dfs
        self.events = model_events(dfs)
        self.choice_policy = choice_policy
        self._rng = random.Random(seed)
        self.reset()

    def reset(self):
        self.state = DfsState(self.dfs)
        self.now = 0.0
        self.fired = []
        self._choice_counts = {}
        self._choice_values = {}
        self._pending = []       # heap of (time, tiebreak, event_name)
        self._pending_set = set()
        self._counter = itertools.count()

    # -- internals ------------------------------------------------------------------

    def _delay_of(self, event):
        return self.dfs.node(event.node).delay

    def _resolve_choice(self, event):
        """Return ``False`` when the choice policy vetoes this marking event."""
        if event.action not in (EventAction.MARK_TRUE, EventAction.MARK_FALSE):
            return True
        node = self.dfs.node(event.node)
        if not node.is_dynamic or self.dfs.controls_of(event.node):
            return True
        count = self._choice_counts.get(event.node, 0)
        key = (event.node, count)
        if key not in self._choice_values:
            # The choice is made once per token (occurrence) so that exactly
            # one of the True/False marking events is admitted.
            if self.choice_policy is not None:
                self._choice_values[key] = bool(self.choice_policy(event.node, count))
            else:
                self._choice_values[key] = bool(self._rng.getrandbits(1))
        wanted = self._choice_values[key]
        return (event.action is EventAction.MARK_TRUE) == wanted

    def _schedule_enabled(self):
        for name, event in self.events.items():
            if name in self._pending_set:
                continue
            if not self.state.is_enabled(event):
                continue
            if not self._resolve_choice(event):
                continue
            fire_time = self.now + self._delay_of(event)
            heapq.heappush(self._pending, (fire_time, next(self._counter), name))
            self._pending_set.add(name)

    def step(self):
        """Fire the earliest pending event; return ``(time, event)`` or ``None``."""
        self._schedule_enabled()
        while self._pending:
            fire_time, _, name = heapq.heappop(self._pending)
            self._pending_set.discard(name)
            event = self.events[name]
            # The event may have been disabled by an earlier firing.
            if not self.state.is_enabled(event):
                continue
            self.now = max(self.now, fire_time)
            self.state.apply(event)
            if event.action in (EventAction.MARK_TRUE, EventAction.MARK_FALSE):
                node = self.dfs.node(event.node)
                if node.is_dynamic and not self.dfs.controls_of(event.node):
                    self._choice_counts[event.node] = self._choice_counts.get(event.node, 0) + 1
            self.fired.append((self.now, name))
            return self.now, name
        return None

    # -- runs --------------------------------------------------------------------------

    def run(self, observed, token_goal=20, max_events=100000):
        """Run until *token_goal* tokens have passed through register *observed*.

        Returns a :class:`TimedRun`.  Raises
        :class:`~repro.exceptions.SimulationError` when the simulation
        deadlocks before reaching the goal or exceeds *max_events*.
        """
        if observed not in self.dfs.register_nodes:
            raise SimulationError("unknown observation register: {!r}".format(observed))
        marking_events = marking_event_names(observed)
        tokens = 0
        for _ in range(max_events):
            outcome = self.step()
            if outcome is None:
                raise SimulationError(
                    "timed simulation deadlocked at t={:.4g} after {} tokens at {!r}".format(
                        self.now, tokens, observed))
            _, name = outcome
            if name in marking_events:
                tokens += 1
                if tokens >= token_goal:
                    return TimedRun(self.now, self.fired, tokens, observed)
        raise SimulationError(
            "timed simulation did not reach {} tokens at {!r} within {} events".format(
                token_goal, observed, max_events))

    def run_for(self, duration, max_events=100000):
        """Run until the clock passes *duration*; return the number of fired events."""
        fired = 0
        for _ in range(max_events):
            if self.now >= duration:
                break
            if self.step() is None:
                break
            fired += 1
        return fired
