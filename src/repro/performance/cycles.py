"""Cycle enumeration and per-cycle throughput metrics.

The throughput of a self-timed ring is bounded both by its tokens (forward
latency limited) and by its holes (bubble limited); a pipeline built of many
interconnected rings is limited by its slowest ring.  This module enumerates
the simple cycles of the dataflow graph and computes, per cycle:

* the number of registers and the number of initially marked registers
  (tokens) and unmarked registers (holes);
* the total delay around the cycle;
* the resulting cycle throughput ``min(tokens, holes) / delay``.

Cycles with zero tokens or zero holes have zero throughput: tokens cannot
move at all, which the analyser reports as a structural problem.
"""

from repro.utils.graphs import enumerate_simple_cycles


class CycleMetrics:
    """Metrics of one simple cycle of the dataflow graph."""

    def __init__(self, nodes, registers, tokens, delay):
        self.nodes = list(nodes)
        self.registers = int(registers)
        self.tokens = int(tokens)
        self.delay = float(delay)

    @property
    def holes(self):
        """Unmarked registers of the cycle (room for tokens to move into)."""
        return self.registers - self.tokens

    @property
    def throughput(self):
        """Sustainable throughput of the cycle in tokens per time unit."""
        if self.delay <= 0:
            return float("inf")
        limiting = min(self.tokens, self.holes)
        return limiting / self.delay

    @property
    def is_stalled(self):
        """True when the cycle can never advance (no token or no hole)."""
        return self.registers > 0 and (self.tokens == 0 or self.holes == 0)

    @property
    def token_limited(self):
        """True when adding tokens (not holes) would raise the throughput."""
        return self.tokens < self.holes

    def __repr__(self):
        return ("CycleMetrics(registers={}, tokens={}, holes={}, delay={:.3g}, "
                "throughput={:.3g})").format(
                    self.registers, self.tokens, self.holes, self.delay, self.throughput)


def dataflow_cycles(dfs, limit=None):
    """Return :class:`CycleMetrics` for every simple cycle of the model.

    Parameters
    ----------
    dfs:
        The dataflow structure to analyse.
    limit:
        Optional cap on the number of cycles enumerated (protects against
        models with a combinatorial number of cycles).
    """
    cycles = enumerate_simple_cycles(dfs.edges, nodes=dfs.nodes, limit=limit)
    marking = dfs.initial_marking()
    metrics = []
    for cycle in cycles:
        registers = [name for name in cycle if dfs.is_register(name)]
        tokens = sum(1 for name in registers if marking.get(name, False))
        delay = sum(dfs.node(name).delay for name in cycle)
        metrics.append(CycleMetrics(cycle, len(registers), tokens, delay))
    return metrics


def slowest_cycles(metrics, count=3):
    """Return the *count* cycles with the lowest throughput (stalled first)."""
    return sorted(metrics, key=lambda m: (m.throughput, -m.delay))[:count]


def cycle_bottlenecks(dfs, cycle_metrics):
    """Return the nodes of the cycle with the maximum delay."""
    if not cycle_metrics.nodes:
        return []
    node_delays = [(name, dfs.node(name).delay) for name in cycle_metrics.nodes]
    maximum = max(delay for _, delay in node_delays)
    return [name for name, delay in node_delays if delay == maximum]
