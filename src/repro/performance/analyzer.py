"""The performance analyser: throughput of the slowest cycles and bottlenecks.

This is the programmatic counterpart of the Workcraft performance-analysis
pane shown in Fig. 5 of the paper: it "reports the throughput of the slowest
cycles and highlights the bottleneck nodes in each cycle".
"""

from repro.performance.cycles import cycle_bottlenecks, dataflow_cycles, slowest_cycles


class PerformanceReport:
    """Result of :meth:`PerformanceAnalyzer.analyse`."""

    def __init__(self, model_name, cycles, slowest, bottlenecks):
        self.model_name = model_name
        self.cycles = cycles
        self.slowest = slowest
        self.bottlenecks = bottlenecks

    @property
    def throughput(self):
        """Overall sustainable throughput: the minimum over all cycles.

        Models without cycles (pure feed-forward pipelines) are not
        throughput-limited by a ring; ``None`` is returned in that case.
        """
        if not self.cycles:
            return None
        return min(metric.throughput for metric in self.cycles)

    @property
    def stalled_cycles(self):
        """Cycles that can never advance (zero tokens or zero holes)."""
        return [metric for metric in self.cycles if metric.is_stalled]

    def table(self):
        """Return the analysis as a list of row dictionaries (one per slow cycle)."""
        rows = []
        for metric in self.slowest:
            rows.append({
                "cycle": " -> ".join(metric.nodes),
                "registers": metric.registers,
                "tokens": metric.tokens,
                "holes": metric.holes,
                "delay": metric.delay,
                "throughput": metric.throughput,
                "bottlenecks": ", ".join(self.bottlenecks.get(id(metric), [])),
            })
        return rows

    def render(self):
        """Return a human-readable report (similar to the tool's output pane)."""
        lines = ["Performance analysis of {!r}".format(self.model_name)]
        if not self.cycles:
            lines.append("  the model has no cycles; throughput is environment-limited")
            return "\n".join(lines)
        lines.append("  {} cycle(s); overall throughput {:.4g} tokens/unit".format(
            len(self.cycles), self.throughput))
        for index, metric in enumerate(self.slowest, start=1):
            lines.append("  #{} throughput {:.4g}  (registers={}, tokens={}, holes={}, delay={:.4g})".format(
                index, metric.throughput, metric.registers, metric.tokens,
                metric.holes, metric.delay))
            nodes = self.bottlenecks.get(id(metric), [])
            if nodes:
                lines.append("      bottleneck node(s): {}".format(", ".join(nodes)))
        return "\n".join(lines)

    def __repr__(self):
        return "PerformanceReport({!r}, cycles={}, throughput={!r})".format(
            self.model_name, len(self.cycles), self.throughput)


class PerformanceAnalyzer:
    """Analyses the cycle throughput of a dataflow structure."""

    def __init__(self, dfs, cycle_limit=2000):
        self.dfs = dfs
        self.cycle_limit = cycle_limit

    def analyse(self, slowest_count=5):
        """Run the analysis and return a :class:`PerformanceReport`."""
        cycles = dataflow_cycles(self.dfs, limit=self.cycle_limit)
        slowest = slowest_cycles(cycles, count=slowest_count)
        bottlenecks = {
            id(metric): cycle_bottlenecks(self.dfs, metric) for metric in slowest
        }
        return PerformanceReport(self.dfs.name, cycles, slowest, bottlenecks)

    # American-spelling alias, because both show up in downstream code.
    analyze = analyse
