"""Optimisation suggestions derived from the cycle analysis.

The paper lists the remedies available to the designer once the slow cycles
are known: "adjusting the number of tokens, adding registers to buffer the
flow of tokens, and applying advanced performance optimisation techniques,
such as wagging".  The helpers here turn the cycle metrics into such
suggestions and estimate the effect of wagging.
"""


class Suggestion:
    """A single optimisation suggestion."""

    def __init__(self, kind, message, cycle=None, estimated_throughput=None):
        self.kind = kind
        self.message = message
        self.cycle = cycle
        self.estimated_throughput = estimated_throughput

    def __repr__(self):
        return "Suggestion({!r}, {!r})".format(self.kind, self.message)


def suggest_optimisations(report, target_throughput=None):
    """Produce optimisation suggestions from a :class:`PerformanceReport`.

    Parameters
    ----------
    report:
        The report produced by the performance analyser.
    target_throughput:
        Optional throughput the designer wants to reach; suggestions are only
        produced for cycles below the target (all slow cycles otherwise).
    """
    suggestions = []
    for metric in report.slowest:
        if target_throughput is not None and metric.throughput >= target_throughput:
            continue
        cycle_text = " -> ".join(metric.nodes)
        if metric.is_stalled:
            if metric.tokens == 0:
                suggestions.append(Suggestion(
                    "add-token",
                    "cycle [{}] holds no token and can never advance; "
                    "initialise one of its registers".format(cycle_text),
                    cycle=metric,
                ))
            else:
                suggestions.append(Suggestion(
                    "add-register",
                    "cycle [{}] has no hole (every register is marked); "
                    "insert an empty buffer register".format(cycle_text),
                    cycle=metric,
                ))
            continue
        if metric.token_limited:
            new_tokens = metric.tokens + 1
            estimated = min(new_tokens, metric.registers - new_tokens) / metric.delay
            suggestions.append(Suggestion(
                "add-token",
                "cycle [{}] is token-limited ({} token(s) over {} registers); "
                "adding a token raises its throughput to about {:.3g}".format(
                    cycle_text, metric.tokens, metric.registers, estimated),
                cycle=metric,
                estimated_throughput=estimated,
            ))
        else:
            new_registers = metric.registers + 1
            estimated = min(metric.tokens, new_registers - metric.tokens) / metric.delay
            suggestions.append(Suggestion(
                "add-register",
                "cycle [{}] is bubble-limited ({} hole(s) over {} registers); "
                "inserting a buffer register raises its throughput to about {:.3g}".format(
                    cycle_text, metric.holes, metric.registers, estimated),
                cycle=metric,
                estimated_throughput=estimated,
            ))
        suggestions.append(Suggestion(
            "wagging",
            "cycle [{}] can be replicated {}-way (wagging) for up to a "
            "{}x throughput improvement at the cost of area".format(cycle_text, 2, 2),
            cycle=metric,
            estimated_throughput=metric.throughput * 2,
        ))
    return suggestions


def wagging_speedup(ways, duplication_overhead=0.1):
    """Estimate the speed-up of *ways*-way wagging.

    Wagging (Brej, ACSD 2010) interleaves tokens over *ways* copies of the
    slow stage; the ideal speed-up is ``ways``, degraded by the splitting and
    merging overhead modelled here as a fixed fraction per way.
    """
    if ways < 1:
        raise ValueError("the number of ways must be at least 1")
    ideal = float(ways)
    overhead = 1.0 + duplication_overhead * (ways - 1)
    return ideal / overhead
