"""DFS models of the OPE pipelines (Fig. 7 and the static counterpart).

Both pipelines are instances of the generic pipeline of
:mod:`repro.pipelines.generic` with OPE-specific function annotations: the
per-stage ``f`` stores/compares window items (``compare``), the per-stage
``g`` updates the stored rank (``rank``), and the aggregation network sums
the per-stage increments into the rank of the new item (``aggregate``).

* the **static** pipeline has all 18 stages built in the static style (its
  depth cannot change);
* the **reconfigurable** pipeline keeps stage ``s1`` static (it is always part
  of the window) and builds stages ``s2 ... sN`` in the reconfigurable style,
  with the ``s2`` control-sharing optimisation described in the paper.
"""

from repro.exceptions import ConfigurationError
from repro.pipelines.generic import build_generic_pipeline
from repro.pipelines.reconfigurable import PipelineConfiguration

#: The fabricated chip's pipeline length and the depths it supports.
CHIP_STAGES = 18
CHIP_MIN_DEPTH = 3

#: Relative delays of the OPE stage functions (comparator vs. rank update),
#: matching the component figures of :mod:`repro.circuits.library`.
COMPARE_DELAY = 1.1
RANK_DELAY = 0.8


def build_static_ope_pipeline(stages=CHIP_STAGES, name=None):
    """Build the static OPE pipeline (every stage in the static style)."""
    if stages < 1:
        raise ConfigurationError("the OPE pipeline needs at least one stage")
    pipeline = build_generic_pipeline(
        stages,
        static_prefix_stages=stages,
        name=name or "ope_static_{}".format(stages),
        f_delay=COMPARE_DELAY,
        g_delay=RANK_DELAY,
    )
    return pipeline


def build_reconfigurable_ope_pipeline(stages=CHIP_STAGES, depth=None, min_depth=CHIP_MIN_DEPTH,
                                      name=None):
    """Build the reconfigurable OPE pipeline (Fig. 7) and its configuration.

    Parameters
    ----------
    stages:
        Total number of stages (18 on the chip).
    depth:
        Initially configured depth (defaults to all stages included).
    min_depth:
        Smallest supported depth (3 on the chip).

    Returns ``(pipeline, configuration)``.
    """
    if stages < 2:
        raise ConfigurationError(
            "the reconfigurable OPE pipeline needs at least two stages")
    depth = stages if depth is None else int(depth)
    if not min_depth <= depth <= stages:
        raise ConfigurationError(
            "depth {} is outside the supported range {}..{}".format(depth, min_depth, stages))
    pipeline = build_generic_pipeline(
        stages,
        static_prefix_stages=1,
        included_depth=depth,
        name=name or "ope_reconfigurable_{}".format(stages),
        f_delay=COMPARE_DELAY,
        g_delay=RANK_DELAY,
        share_control_second_stage=True,
    )
    configuration = PipelineConfiguration(pipeline, min_depth=min_depth)
    return pipeline, configuration
