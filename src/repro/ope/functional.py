"""Stage-by-stage functional model of the pipelined OPE algorithm.

The hardware pipeline (after Guo, Luk and Weston, ASAP 2014) keeps one window
item per stage.  When a new item arrives:

* every stage concurrently compares its stored item with the new item and
  produces a single increment bit;
* the rank of the new item is one plus the number of asserted bits (computed
  by the aggregation network);
* every stored item's rank from the previous window is *reused*: it is
  decremented when the item that just left the window ranked below it and
  incremented when the new item ranks at or below it.

This mirrors how the silicon computes rank lists without re-sorting the whole
window, and it must (and does -- see the test suite) produce exactly the same
rank lists as the behavioural model of :mod:`repro.ope.reference`.
"""

from collections import deque

from repro.exceptions import ConfigurationError
from repro.ope.reference import ordinal_ranks


class OpePipelineFunctional:
    """Functional simulation of the OPE pipeline with a configurable depth."""

    def __init__(self, depth):
        if depth < 1:
            raise ConfigurationError("the pipeline depth must be at least 1")
        self.depth = int(depth)
        self.reset()

    def reset(self):
        """Clear the window and the stored rank list."""
        self._window = deque()
        self._ranks = deque()

    @property
    def window(self):
        """The items currently stored in the pipeline stages (oldest first)."""
        return list(self._window)

    @property
    def ranks(self):
        """The rank list of the current window (oldest item first)."""
        return list(self._ranks)

    @property
    def full(self):
        """True once every stage holds an item (a full window is available)."""
        return len(self._window) == self.depth

    def _evict(self):
        """Remove the oldest item and adjust the remaining ranks."""
        evicted_rank = self._ranks.popleft()
        self._window.popleft()
        for index in range(len(self._ranks)):
            if self._ranks[index] > evicted_rank:
                self._ranks[index] -= 1

    def push(self, item):
        """Process one incoming item; return the new rank list or ``None``.

        ``None`` is returned while the pipeline is still filling (fewer than
        ``depth`` items seen so far), mirroring the latency of the hardware.
        """
        if self.full:
            self._evict()
        # Concurrent per-stage comparisons: how many stored items rank at or
        # below the new item (ties favour the stored item).
        increments = [1 if stored <= item else 0 for stored in self._window]
        new_rank = 1 + sum(increments)
        # Reuse of the previous rank list: stored items ranked at or above the
        # new item shift up by one position.
        for index in range(len(self._ranks)):
            if self._ranks[index] >= new_rank:
                self._ranks[index] += 1
        self._window.append(item)
        self._ranks.append(new_rank)
        if not self.full:
            return None
        return list(self._ranks)

    def process(self, stream):
        """Feed a whole stream; return the list of rank lists (one per full window)."""
        outputs = []
        for item in stream:
            ranks = self.push(item)
            if ranks is not None:
                outputs.append(ranks)
        return outputs

    def check_against_reference(self):
        """Verify the stored rank list against a from-scratch computation."""
        return list(self._ranks) == ordinal_ranks(list(self._window))

    def __repr__(self):
        return "OpePipelineFunctional(depth={}, filled={})".format(
            self.depth, len(self._window))
