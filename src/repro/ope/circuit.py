"""Circuit and silicon views of the OPE pipelines.

``ope_netlist`` maps an OPE pipeline DFS model onto the NCL-D component
library (yielding a netlist that can be exported to Verilog), and
``ope_silicon_model`` builds the analytic timing/energy model of the
corresponding implementation, which is what the chip-level benches sweep.
"""

from repro.circuits.library import default_library
from repro.circuits.mapping import MappingOptions, SyncStyle, map_dfs_to_netlist
from repro.silicon.chip import PipelineSiliconModel, SyncStructure
from repro.silicon.voltage import VoltageModel

#: Data width of the OPE datapath (stream items and ranks).
OPE_DATA_WIDTH = 16


def ope_netlist(pipeline, sync_style=SyncStyle.TREE, data_width=OPE_DATA_WIDTH,
                library=None):
    """Map an OPE pipeline (a :class:`GenericPipeline`) onto the component library."""
    library = library or default_library(data_width=data_width)
    options = MappingOptions(
        data_width=data_width,
        sync_style=sync_style,
        function_map={"compare": "dr_comparator", "rank": "dr_incrementer",
                      "aggregate": "dr_adder"},
    )
    return map_dfs_to_netlist(pipeline.dfs, library=library, options=options)


def ope_silicon_model(stages, reconfigurable, sync_structure=None, voltage_model=None,
                      calibration=None):
    """Build the analytic silicon model of an OPE pipeline implementation.

    The defaults reproduce the fabricated chip: the static pipeline uses a
    tree of C-elements to join the per-stage acknowledgements, while the
    reconfigurable pipeline as fabricated uses a daisy chain (the source of
    its 36 % computation-time overhead); passing
    ``sync_structure=SyncStructure.TREE`` for the reconfigurable pipeline
    models the improved implementation the paper estimates at below 10 %
    overhead.
    """
    voltage_model = voltage_model or VoltageModel()
    if sync_structure is None:
        sync_structure = (SyncStructure.DAISY_CHAIN if reconfigurable
                          else SyncStructure.TREE)
    return PipelineSiliconModel(
        stages,
        reconfigurable=reconfigurable,
        sync_structure=sync_structure,
        voltage_model=voltage_model,
        calibration=calibration,
    )
