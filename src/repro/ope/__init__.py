"""Ordinal pattern encoding (OPE) -- the paper's case study and chip workload.

OPE "ranks" the last ``N`` items of an incoming data stream: for every window
position it outputs the list of ranks the window items would take after
sorting (ties broken by position, earlier items first).  Users sweep the
window size ``N`` to discover hidden patterns, which is why the accelerator
needs a reconfigurable pipeline depth.

* :mod:`repro.ope.reference`  -- the behavioural (golden) model, including the
  worked example of Section III-A;
* :mod:`repro.ope.functional` -- a stage-by-stage functional model of the
  pipelined algorithm (one stage per window slot, ranks computed by concurrent
  comparisons and reuse of the previous rank list), checked against the
  reference;
* :mod:`repro.ope.pipeline`   -- the DFS models of the static and
  reconfigurable OPE pipelines (Fig. 7);
* :mod:`repro.ope.circuit`    -- mapping of those models onto the NCL-D
  component library and the matching analytic silicon models.
"""

from repro.ope.reference import OpeReference, ordinal_ranks, paper_example_table
from repro.ope.functional import OpePipelineFunctional
from repro.ope.pipeline import build_reconfigurable_ope_pipeline, build_static_ope_pipeline
from repro.ope.circuit import ope_netlist, ope_silicon_model

__all__ = [
    "OpePipelineFunctional",
    "OpeReference",
    "build_reconfigurable_ope_pipeline",
    "build_static_ope_pipeline",
    "ope_netlist",
    "ope_silicon_model",
    "ordinal_ranks",
    "paper_example_table",
]
