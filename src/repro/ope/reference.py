"""Behavioural (golden) model of ordinal pattern encoding.

The rank of an item in a list is the position the item ends up at after
sorting the list, with ties resolved in favour of the earlier item.  The
paper's footnote example: the ranks of the items of ``(2, 0, 1, 7)`` are
``(3, 1, 2, 4)``.
"""

from repro.exceptions import ConfigurationError


def ordinal_ranks(window):
    """Return the 1-based rank list of *window*.

    >>> ordinal_ranks([2, 0, 1, 7])
    [3, 1, 2, 4]
    >>> ordinal_ranks([3, 1, 4, 1, 5, 9])
    [3, 1, 4, 2, 5, 6]
    """
    window = list(window)
    order = sorted(range(len(window)), key=lambda index: (window[index], index))
    ranks = [0] * len(window)
    for position, index in enumerate(order, start=1):
        ranks[index] = position
    return ranks


def rank_of_new_item(window, item):
    """Rank the incoming *item* would take if appended to *window*.

    Equals ``1 +`` the number of window items that are smaller than or equal
    to *item* (ties favour the earlier -- already stored -- item).
    """
    return 1 + sum(1 for value in window if value <= item)


class OpeReference:
    """Streaming behavioural model of an OPE engine with window size ``N``."""

    def __init__(self, window_size):
        if window_size < 1:
            raise ConfigurationError("the OPE window size must be at least 1")
        self.window_size = int(window_size)

    def windows(self, stream):
        """Yield ``(start_index, window)`` for every full window of *stream*."""
        stream = list(stream)
        for start in range(len(stream) - self.window_size + 1):
            yield start + 1, stream[start:start + self.window_size]

    def encode(self, stream):
        """Return the list of rank lists, one per window position."""
        return [ordinal_ranks(window) for _, window in self.windows(stream)]

    def encode_last(self, stream):
        """Return the rank list of the last full window (``None`` if too short)."""
        stream = list(stream)
        if len(stream) < self.window_size:
            return None
        return ordinal_ranks(stream[-self.window_size:])

    def checksum(self, stream, modulus=2 ** 32):
        """A rolling checksum over all rank lists (matches the chip accumulator).

        The accumulator mixes every produced rank with a multiplicative hash;
        the same computation is implemented on the "silicon" side by
        :class:`repro.chip.accumulator.ChecksumAccumulator`, which is how the
        paper validates the random-mode runs against the behavioural model.
        """
        digest = 0
        for ranks in self.encode(stream):
            for rank in ranks:
                digest = (digest * 31 + rank) % modulus
        return digest

    def __repr__(self):
        return "OpeReference(window_size={})".format(self.window_size)


def paper_example_table():
    """The worked example of Section III-A as a list of table rows.

    Stream ``(3, 1, 4, 1, 5, 9, 2, 6)`` with window size 6.
    """
    stream = [3, 1, 4, 1, 5, 9, 2, 6]
    reference = OpeReference(6)
    rows = []
    for index, window in reference.windows(stream):
        rows.append({
            "index": index,
            "window": tuple(window),
            "rank_list": tuple(ordinal_ranks(window)),
        })
    return rows
