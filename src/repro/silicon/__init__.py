"""Silicon-level modelling: voltage-dependent timing, energy and measurements.

The paper validates the DFS methodology with a chip fabricated in a 90 nm
low-power CMOS process and measures it over a 0.3-1.6 V supply range.  We do
not have silicon, so this package provides the closest simulated equivalent:

* :mod:`repro.silicon.voltage` -- an alpha-power-law delay model, quadratic
  switching-energy scaling and a voltage-dependent leakage model, with the
  near-threshold freeze behaviour observed on the chip (operation stops below
  about 0.34 V and resumes when the supply recovers);
* :mod:`repro.silicon.energy` -- an energy account separating switching and
  leakage contributions;
* :mod:`repro.silicon.environment` -- supply-voltage waveforms (constant,
  steps, ramps) used for the unstable-supply experiment of Fig. 9b;
* :mod:`repro.silicon.chip` -- an analytic timing/energy model of a pipelined
  accelerator assembled from the component library figures and calibrated to
  the paper's reference point (static 18-stage OPE at 1.2 V: 1.22 s and
  2.74 mJ for 16 M items);
* :mod:`repro.silicon.measurement` -- the measurement harness: computation
  time, consumed energy, power traces and voltage sweeps.
"""

from repro.silicon.voltage import VoltageModel
from repro.silicon.energy import EnergyAccount, EnergyBreakdown
from repro.silicon.environment import SupplyWaveform, constant_supply, ramp_supply, step_supply
from repro.silicon.chip import PipelineSiliconModel, SyncStructure
from repro.silicon.measurement import Measurement, MeasurementHarness, PowerTrace

__all__ = [
    "EnergyAccount",
    "EnergyBreakdown",
    "Measurement",
    "MeasurementHarness",
    "PipelineSiliconModel",
    "PowerTrace",
    "SupplyWaveform",
    "SyncStructure",
    "VoltageModel",
    "constant_supply",
    "ramp_supply",
    "step_supply",
]
