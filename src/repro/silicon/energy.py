"""Energy accounting: switching versus leakage contributions."""


class EnergyBreakdown:
    """An immutable switching/leakage energy pair (in joules)."""

    __slots__ = ("switching", "leakage")

    def __init__(self, switching=0.0, leakage=0.0):
        self.switching = float(switching)
        self.leakage = float(leakage)

    @property
    def total(self):
        return self.switching + self.leakage

    def __add__(self, other):
        return EnergyBreakdown(self.switching + other.switching,
                               self.leakage + other.leakage)

    def scaled(self, factor):
        return EnergyBreakdown(self.switching * factor, self.leakage * factor)

    def __repr__(self):
        return "EnergyBreakdown(switching={:.4g}J, leakage={:.4g}J)".format(
            self.switching, self.leakage)


class EnergyAccount:
    """A mutable accumulator of energy contributions."""

    def __init__(self):
        self._switching = 0.0
        self._leakage = 0.0
        self._entries = []

    def add_switching(self, joules, label=None):
        """Add switching (dynamic) energy."""
        self._switching += float(joules)
        self._entries.append(("switching", label, float(joules)))

    def add_leakage(self, joules, label=None):
        """Add leakage (static) energy."""
        self._leakage += float(joules)
        self._entries.append(("leakage", label, float(joules)))

    def add_leakage_power(self, watts, seconds, label=None):
        """Integrate a leakage power over a duration."""
        self.add_leakage(float(watts) * float(seconds), label=label)

    @property
    def switching(self):
        return self._switching

    @property
    def leakage(self):
        return self._leakage

    @property
    def total(self):
        return self._switching + self._leakage

    def breakdown(self):
        """Return the current totals as an :class:`EnergyBreakdown`."""
        return EnergyBreakdown(self._switching, self._leakage)

    def by_label(self):
        """Return ``{label: total energy}`` over all recorded entries."""
        totals = {}
        for _, label, joules in self._entries:
            totals[label] = totals.get(label, 0.0) + joules
        return totals

    def __repr__(self):
        return "EnergyAccount(total={:.4g}J, switching={:.4g}J, leakage={:.4g}J)".format(
            self.total, self._switching, self._leakage)
