"""Supply-voltage waveforms for the unstable-supply experiments.

Fig. 9b of the paper shows the chip running a single computation while the
supply is gradually lowered from 0.5 V to 0.34 V (where operation freezes)
and then raised back (operation resumes and completes correctly).  The
:class:`SupplyWaveform` class describes such experiments as a piecewise-linear
voltage-versus-time profile.
"""

from repro.exceptions import MeasurementError


class SupplyWaveform:
    """A piecewise-linear supply-voltage profile.

    The waveform is defined by ``(time, voltage)`` breakpoints; the voltage is
    linearly interpolated between breakpoints and held constant after the last
    one.
    """

    def __init__(self, points):
        points = [(float(t), float(v)) for t, v in points]
        if not points:
            raise MeasurementError("a supply waveform needs at least one point")
        times = [t for t, _ in points]
        if times != sorted(times):
            raise MeasurementError("supply waveform breakpoints must be time-ordered")
        if times[0] != 0.0:
            points.insert(0, (0.0, points[0][1]))
        self.points = points

    def voltage_at(self, time):
        """Supply voltage at a given time (seconds)."""
        time = float(time)
        if time <= self.points[0][0]:
            return self.points[0][1]
        for (t0, v0), (t1, v1) in zip(self.points, self.points[1:]):
            if t0 <= time <= t1:
                if t1 == t0:
                    return v1
                fraction = (time - t0) / (t1 - t0)
                return v0 + fraction * (v1 - v0)
        return self.points[-1][1]

    @property
    def duration(self):
        """Time of the last breakpoint."""
        return self.points[-1][0]

    def sample(self, step):
        """Sample the waveform every *step* seconds up to its duration."""
        if step <= 0:
            raise MeasurementError("the sampling step must be positive")
        samples = []
        time = 0.0
        while time <= self.duration + 1e-12:
            samples.append((time, self.voltage_at(time)))
            time += step
        return samples

    def __repr__(self):
        return "SupplyWaveform({} points, duration={:.4g}s)".format(
            len(self.points), self.duration)


def constant_supply(voltage, duration=float("inf")):
    """A constant supply voltage."""
    if duration == float("inf"):
        return SupplyWaveform([(0.0, voltage)])
    return SupplyWaveform([(0.0, voltage), (duration, voltage)])


def step_supply(steps):
    """A staircase profile from ``(start_time, voltage)`` steps."""
    points = []
    previous_voltage = None
    for start_time, voltage in steps:
        if previous_voltage is not None:
            points.append((start_time, previous_voltage))
        points.append((start_time, voltage))
        previous_voltage = voltage
    return SupplyWaveform(points)


def ramp_supply(start_voltage, end_voltage, duration, start_time=0.0):
    """A linear ramp between two voltages."""
    return SupplyWaveform([
        (start_time, start_voltage),
        (start_time + duration, end_voltage),
    ])


def dip_and_recover(high_voltage=0.5, low_voltage=0.34, start_time=2.0,
                    fall_duration=4.0, hold_duration=4.0, rise_duration=2.0):
    """The Fig. 9b profile: ramp down to near-threshold, hold, ramp back up."""
    return SupplyWaveform([
        (0.0, high_voltage),
        (start_time, high_voltage),
        (start_time + fall_duration, low_voltage),
        (start_time + fall_duration + hold_duration, low_voltage),
        (start_time + fall_duration + hold_duration + rise_duration, high_voltage),
    ])
