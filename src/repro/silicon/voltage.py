"""Voltage-dependent delay, switching-energy and leakage scaling.

The delay of a CMOS gate follows the alpha-power law::

    delay(V)  proportional to  V / (V - Vth) ** alpha

so delays explode as the supply approaches the threshold voltage -- which is
exactly the behaviour the chip exhibits: below about 0.34 V its operation
freezes (no progress, only leakage) and it resumes when the supply recovers
(Fig. 9b).  Switching energy scales as ``V**2``; leakage power is modelled as
a power law of the supply.  All scale factors are relative to the nominal
supply of the process (1.2 V for the 90 nm low-power process used here), so a
scale of 1.0 means "as characterised in the component library".
"""

from repro.exceptions import MeasurementError


class VoltageModel:
    """Relative delay / energy / leakage scaling versus supply voltage."""

    def __init__(self, nominal_voltage=1.2, threshold_voltage=0.33, alpha=2.4,
                 freeze_voltage=0.34, leakage_exponent=3.0,
                 min_voltage=0.0, max_voltage=2.0):
        if threshold_voltage >= nominal_voltage:
            raise MeasurementError("threshold voltage must be below the nominal voltage")
        if freeze_voltage <= threshold_voltage:
            raise MeasurementError("freeze voltage must be above the threshold voltage")
        self.nominal_voltage = float(nominal_voltage)
        self.threshold_voltage = float(threshold_voltage)
        self.alpha = float(alpha)
        self.freeze_voltage = float(freeze_voltage)
        self.leakage_exponent = float(leakage_exponent)
        self.min_voltage = float(min_voltage)
        self.max_voltage = float(max_voltage)
        self._nominal_drive = self._raw_delay(self.nominal_voltage)

    def _check(self, voltage):
        if not (self.min_voltage <= voltage <= self.max_voltage):
            raise MeasurementError(
                "supply voltage {:.3g} V is outside the modelled range "
                "[{:.3g}, {:.3g}] V".format(voltage, self.min_voltage, self.max_voltage))
        return float(voltage)

    def _raw_delay(self, voltage):
        overdrive = voltage - self.threshold_voltage
        return voltage / (overdrive ** self.alpha)

    # -- scaling factors -----------------------------------------------------------

    def is_operational(self, voltage):
        """True when the circuit makes forward progress at this supply voltage.

        At (or below) the freeze voltage the chip stops making progress, as
        observed on silicon at 0.34 V; it resumes when the supply recovers.
        """
        voltage = self._check(voltage)
        return voltage > self.freeze_voltage

    def delay_scale(self, voltage):
        """Delay multiplier relative to the nominal voltage (``inf`` when frozen)."""
        voltage = self._check(voltage)
        if not self.is_operational(voltage):
            return float("inf")
        return self._raw_delay(voltage) / self._nominal_drive

    def speed_scale(self, voltage):
        """Progress rate multiplier: the inverse of :meth:`delay_scale` (0 when frozen)."""
        scale = self.delay_scale(voltage)
        if scale == float("inf"):
            return 0.0
        return 1.0 / scale

    def energy_scale(self, voltage):
        """Switching-energy multiplier (``(V / Vnom) ** 2``)."""
        voltage = self._check(voltage)
        return (voltage / self.nominal_voltage) ** 2

    def leakage_scale(self, voltage):
        """Leakage-power multiplier (power law of the supply)."""
        voltage = self._check(voltage)
        return (voltage / self.nominal_voltage) ** self.leakage_exponent

    # -- convenience ------------------------------------------------------------------

    def scales(self, voltage):
        """Return the ``(delay, energy, leakage)`` scale triple for a voltage."""
        return (self.delay_scale(voltage), self.energy_scale(voltage),
                self.leakage_scale(voltage))

    def sweep(self, voltages):
        """Return a list of per-voltage scale dictionaries."""
        rows = []
        for voltage in voltages:
            rows.append({
                "voltage": float(voltage),
                "operational": self.is_operational(voltage),
                "delay_scale": self.delay_scale(voltage),
                "energy_scale": self.energy_scale(voltage),
                "leakage_scale": self.leakage_scale(voltage),
            })
        return rows

    def __repr__(self):
        return ("VoltageModel(Vnom={}V, Vth={}V, alpha={}, freeze={}V)").format(
            self.nominal_voltage, self.threshold_voltage, self.alpha, self.freeze_voltage)
