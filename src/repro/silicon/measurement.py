"""The measurement harness: time, energy, power traces and voltage sweeps.

This stands in for the paper's lab setup (Xilinx Virtex-7 test board driving
the packaged chip, Keithley 2612B source meter monitoring the power): it runs
a :class:`~repro.silicon.chip.PipelineSiliconModel` over a workload, either at
a constant supply voltage or following a :class:`~repro.silicon.environment.SupplyWaveform`,
and records what the instruments would have measured.
"""

from repro.exceptions import MeasurementError
from repro.silicon.energy import EnergyAccount
from repro.silicon.environment import SupplyWaveform, constant_supply


class PowerTrace:
    """A sampled power-versus-time trace (what the source meter records)."""

    def __init__(self, samples=None):
        # Each sample is (time_s, voltage_v, power_w, items_done).
        self.samples = list(samples or [])

    def append(self, time_s, voltage_v, power_w, items_done):
        self.samples.append((float(time_s), float(voltage_v), float(power_w), int(items_done)))

    @property
    def times(self):
        return [s[0] for s in self.samples]

    @property
    def voltages(self):
        return [s[1] for s in self.samples]

    @property
    def powers(self):
        return [s[2] for s in self.samples]

    @property
    def items(self):
        return [s[3] for s in self.samples]

    def peak_power(self):
        return max(self.powers) if self.samples else 0.0

    def rows(self):
        """Return the trace as a list of dictionaries (for table rendering)."""
        return [
            {"time_s": t, "voltage_v": v, "power_uw": p * 1e6, "items_done": n}
            for t, v, p, n in self.samples
        ]

    def __repr__(self):
        return "PowerTrace(samples={}, peak={:.4g}W)".format(
            len(self.samples), self.peak_power())


class Measurement:
    """Result of one measured run."""

    def __init__(self, items, computation_time_s, energy, trace=None, completed=True,
                 checksum=None):
        self.items = int(items)
        self.computation_time_s = float(computation_time_s)
        self.energy = energy  # EnergyBreakdown
        self.trace = trace
        self.completed = completed
        self.checksum = checksum

    @property
    def consumed_energy_j(self):
        return self.energy.total

    @property
    def average_power_w(self):
        if self.computation_time_s <= 0:
            return 0.0
        return self.consumed_energy_j / self.computation_time_s

    def normalised_to(self, reference):
        """Return ``(time ratio, energy ratio)`` against a reference measurement."""
        return (self.computation_time_s / reference.computation_time_s,
                self.consumed_energy_j / reference.consumed_energy_j)

    def __repr__(self):
        return "Measurement(items={}, time={:.4g}s, energy={:.4g}J, completed={})".format(
            self.items, self.computation_time_s, self.consumed_energy_j, self.completed)


class MeasurementHarness:
    """Runs a silicon model over workloads and voltage conditions."""

    def __init__(self, model):
        self.model = model

    # -- constant-voltage runs ----------------------------------------------------

    def run(self, items, voltage):
        """Run *items* data items at a constant supply voltage."""
        if not self.model.voltage_model.is_operational(voltage):
            raise MeasurementError(
                "the circuit does not operate at {:.3g} V (freeze voltage is {:.3g} V)".format(
                    voltage, self.model.voltage_model.freeze_voltage))
        account = EnergyAccount()
        time_s = self.model.computation_time_s(items, voltage)
        account.add_switching(items * self.model.energy_per_item_pj(voltage) * 1e-12,
                              label="datapath")
        account.add_leakage_power(self.model.leakage_power_w(voltage), time_s,
                                  label="leakage")
        return Measurement(items, time_s, account.breakdown())

    def voltage_sweep(self, items, voltages):
        """Run the same workload at several supply voltages."""
        results = {}
        for voltage in voltages:
            results[float(voltage)] = self.run(items, voltage)
        return results

    # -- waveform-driven runs -------------------------------------------------------

    def run_with_waveform(self, items, waveform, time_step=0.1, max_time=None,
                          sample_trace=True):
        """Run a workload while the supply follows a waveform (Fig. 9b experiment).

        The run is integrated in *time_step* increments: in each step the
        current voltage determines the item rate (zero when frozen) and the
        power drawn.  The run ends when all items are processed or *max_time*
        elapses; ``completed`` records which happened.
        """
        if isinstance(waveform, (int, float)):
            waveform = constant_supply(float(waveform))
        if not isinstance(waveform, SupplyWaveform):
            raise MeasurementError("expected a SupplyWaveform or a constant voltage")
        if time_step <= 0:
            raise MeasurementError("the integration time step must be positive")
        limit = max_time if max_time is not None else max(waveform.duration * 4.0, 1.0)

        account = EnergyAccount()
        trace = PowerTrace() if sample_trace else None
        time_s = 0.0
        done = 0.0
        while done < items and time_s < limit:
            voltage = waveform.voltage_at(time_s)
            operational = self.model.voltage_model.is_operational(voltage)
            leakage_power = self.model.leakage_power_w(voltage)
            if operational:
                rate = self.model.item_rate(voltage)
                processed = min(rate * time_step, items - done)
                switching = processed * self.model.energy_per_item_pj(voltage) * 1e-12
            else:
                processed = 0.0
                switching = 0.0
            account.add_switching(switching, label="datapath")
            account.add_leakage_power(leakage_power, time_step, label="leakage")
            if trace is not None:
                power = switching / time_step + leakage_power
                trace.append(time_s, voltage, power, int(done))
            done += processed
            time_s += time_step
        completed = done >= items
        return Measurement(items, time_s, account.breakdown(), trace=trace,
                           completed=completed)

    # -- reporting ---------------------------------------------------------------------

    @staticmethod
    def normalise_sweep(sweep, reference):
        """Normalise a voltage sweep to a reference measurement (Fig. 9a style)."""
        rows = []
        for voltage in sorted(sweep):
            measurement = sweep[voltage]
            time_ratio, energy_ratio = measurement.normalised_to(reference)
            rows.append({
                "voltage": voltage,
                "time_s": measurement.computation_time_s,
                "energy_j": measurement.consumed_energy_j,
                "normalised_time": time_ratio,
                "normalised_energy": energy_ratio,
            })
        return rows
