"""Analytic timing/energy model of a pipelined asynchronous accelerator.

The evaluation chip processes a stream of data items through an N-stage
asynchronous pipeline.  Its per-item cycle time and per-item energy are
modelled as::

    cycle_time(N) = t_data + t_ctrl + sync_depth(N) * t_c          [ns]
    energy(N)     = e_base + N * (e_stage + e_ctrl_stage)          [pJ]

where ``sync_depth`` is the depth of the C-element structure joining the
per-stage acknowledgements -- ``N - 1`` for the daisy chain used by the
fabricated reconfigurable pipeline and ``ceil(log2 N)`` for the tree used by
the static pipeline -- and the ``*_ctrl*`` terms are only present for the
reconfigurable implementation (the extra configuration logic).  Both terms
scale with the supply voltage through a :class:`~repro.silicon.voltage.VoltageModel`.

The default constants are calibrated so that the static 18-stage pipeline at
the nominal 1.2 V processes 16 M items in 1.22 s consuming 2.74 mJ (the
reference measurements of Fig. 9a), and so that the fabricated daisy-chain
reconfigurable pipeline shows about a 36 % computation-time overhead and a
5 % energy overhead at the same depth, improving to below 10 % with the
tree-style synchronisation the paper proposes as future work.
"""

import math
from enum import Enum

from repro.exceptions import ConfigurationError
from repro.silicon.voltage import VoltageModel


class SyncStructure(Enum):
    """How per-stage acknowledgements are merged."""

    DAISY_CHAIN = "daisy_chain"
    TREE = "tree"

    def depth(self, stages):
        """Depth of the merging structure in 2-input C-elements."""
        if stages <= 1:
            return 0
        if self is SyncStructure.DAISY_CHAIN:
            return stages - 1
        return int(math.ceil(math.log2(stages)))


class PipelineSiliconModel:
    """Per-item timing and energy of an N-stage asynchronous pipeline.

    Parameters
    ----------
    stages:
        Number of active pipeline stages (the OPE window size).
    reconfigurable:
        Whether the pipeline carries the reconfiguration control logic.
    sync_structure:
        Acknowledgement-merging structure (daisy chain or tree).
    voltage_model:
        The supply-voltage scaling model.
    calibration:
        Optional overrides of the timing/energy constants (a dict with any of
        ``t_data_ns``, ``t_ctrl_ns``, ``t_c_ns``, ``e_base_pj``,
        ``e_stage_pj``, ``e_ctrl_stage_pj``, ``leakage_nom_w``).
    """

    #: Calibration constants (nominal voltage).  ``t_data_ns`` and ``t_c_ns``
    #: reproduce the 76.25 ns/item cycle of the static 18-stage pipeline
    #: (1.22 s / 16 M items); the energy constants reproduce 171 pJ/item
    #: (2.74 mJ / 16 M items).
    DEFAULTS = {
        "t_data_ns": 67.21,        # datapath + register cycle, depth-independent
        "t_ctrl_ns": 5.75,         # extra control logic of the reconfigurable pipeline
        "t_c_ns": 1.808,           # one 2-input C-element link in the ack structure
        "e_base_pj": 15.0,         # LFSR, accumulator, I/O per item
        "e_stage_pj": 8.667,       # one pipeline stage per item
        "e_ctrl_stage_pj": 0.475,  # configuration logic of one reconfigurable stage
        "leakage_nom_w": 2.0e-6,   # whole-chip leakage power at 1.2 V
    }

    def __init__(self, stages, reconfigurable=False,
                 sync_structure=SyncStructure.TREE, voltage_model=None,
                 calibration=None):
        if stages < 1:
            raise ConfigurationError("a pipeline needs at least one stage")
        self.stages = int(stages)
        self.reconfigurable = bool(reconfigurable)
        self.sync_structure = sync_structure
        self.voltage_model = voltage_model or VoltageModel()
        constants = dict(self.DEFAULTS)
        if calibration:
            unknown = set(calibration) - set(constants)
            if unknown:
                raise ConfigurationError(
                    "unknown calibration constant(s): {}".format(", ".join(sorted(unknown))))
            constants.update(calibration)
        self.constants = constants

    # -- factory helpers matching the fabricated chip ------------------------------

    @classmethod
    def static_ope(cls, stages=18, voltage_model=None, calibration=None):
        """The static OPE pipeline (tree synchronisation, no control logic)."""
        return cls(stages, reconfigurable=False, sync_structure=SyncStructure.TREE,
                   voltage_model=voltage_model, calibration=calibration)

    @classmethod
    def reconfigurable_ope(cls, stages=18, voltage_model=None, calibration=None,
                           sync_structure=SyncStructure.DAISY_CHAIN):
        """The reconfigurable OPE pipeline as fabricated (daisy-chain sync)."""
        return cls(stages, reconfigurable=True, sync_structure=sync_structure,
                   voltage_model=voltage_model, calibration=calibration)

    # -- nominal-voltage figures ---------------------------------------------------

    def cycle_time_ns(self, voltage=None):
        """Per-item cycle time in nanoseconds at the given supply voltage."""
        constants = self.constants
        nominal = constants["t_data_ns"]
        if self.reconfigurable:
            nominal += constants["t_ctrl_ns"]
        nominal += self.sync_structure.depth(self.stages) * constants["t_c_ns"]
        if voltage is None:
            return nominal
        scale = self.voltage_model.delay_scale(voltage)
        return nominal * scale

    def energy_per_item_pj(self, voltage=None, include_leakage=False):
        """Per-item switching energy in picojoules (optionally plus leakage)."""
        constants = self.constants
        nominal = constants["e_base_pj"] + self.stages * constants["e_stage_pj"]
        if self.reconfigurable:
            nominal += self.stages * constants["e_ctrl_stage_pj"]
        if voltage is None:
            energy = nominal
        else:
            energy = nominal * self.voltage_model.energy_scale(voltage)
        if include_leakage and voltage is not None:
            leakage_power = self.leakage_power_w(voltage)
            cycle_s = self.cycle_time_ns(voltage) * 1e-9
            if cycle_s != float("inf"):
                energy += leakage_power * cycle_s * 1e12
        return energy

    def leakage_power_w(self, voltage):
        """Whole-chip leakage power in watts at the given supply voltage."""
        return self.constants["leakage_nom_w"] * self.voltage_model.leakage_scale(voltage)

    # -- whole-run figures -------------------------------------------------------------

    def computation_time_s(self, items, voltage):
        """Time to process *items* data items at a constant supply voltage."""
        if items < 0:
            raise ConfigurationError("the number of items cannot be negative")
        cycle_ns = self.cycle_time_ns(voltage)
        if cycle_ns == float("inf"):
            return float("inf")
        return items * cycle_ns * 1e-9

    def consumed_energy_j(self, items, voltage):
        """Energy to process *items* data items at a constant supply voltage.

        Includes the leakage integrated over the computation time.
        """
        time_s = self.computation_time_s(items, voltage)
        if time_s == float("inf"):
            return float("inf")
        switching = items * self.energy_per_item_pj(voltage) * 1e-12
        leakage = self.leakage_power_w(voltage) * time_s
        return switching + leakage

    def average_power_w(self, voltage):
        """Average power while continuously processing items at *voltage*."""
        cycle_s = self.cycle_time_ns(voltage) * 1e-9
        if cycle_s == float("inf"):
            return self.leakage_power_w(voltage)
        switching = self.energy_per_item_pj(voltage) * 1e-12 / cycle_s
        return switching + self.leakage_power_w(voltage)

    def item_rate(self, voltage):
        """Items processed per second at a constant supply voltage."""
        cycle_s = self.cycle_time_ns(voltage) * 1e-9
        if cycle_s == float("inf"):
            return 0.0
        return 1.0 / cycle_s

    def describe(self):
        """Return the model parameters as a dictionary (for reports)."""
        return {
            "stages": self.stages,
            "reconfigurable": self.reconfigurable,
            "sync_structure": self.sync_structure.value,
            "sync_depth": self.sync_structure.depth(self.stages),
            "cycle_time_ns_nominal": self.cycle_time_ns(),
            "energy_per_item_pj_nominal": self.energy_per_item_pj(),
            "constants": dict(self.constants),
        }

    def __repr__(self):
        return ("PipelineSiliconModel(stages={}, reconfigurable={}, sync={}, "
                "cycle={:.4g}ns)").format(self.stages, self.reconfigurable,
                                          self.sync_structure.value, self.cycle_time_ns())
