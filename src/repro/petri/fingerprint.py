"""Canonical fingerprints of Petri nets (and of verdict-relevant options).

The fingerprint is the identity every disk cache in the repo keys on: the
campaign verdict cache and the semiflow cache both answer "have I seen this
net before?" by hashing the net's structure, not its name.  It lives in the
``petri`` package (rather than ``campaign``) because the structural caches
below the campaign layer -- invariants, and whatever future analyses want
memoising -- must be able to fingerprint a net without importing the
campaign machinery.
"""

from repro.utils.diskcache import digest


def net_fingerprint(net):
    """Return a stable hex fingerprint of a :class:`~repro.petri.net.PetriNet`.

    The fingerprint covers structure and initial marking -- places (name,
    initial tokens, capacity), transition names, and arcs (place, transition,
    kind, weight) -- but not the net's display name or annotations, so two
    structurally identical translations share cached results.
    """
    places = sorted(
        (name, place.tokens, place.capacity) for name, place in net.places.items()
    )
    arcs = sorted(
        (arc.place, arc.transition, arc.kind.value, arc.weight) for arc in net.arcs
    )
    return digest({
        "places": [list(entry) for entry in places],
        "transitions": sorted(net.transitions),
        "arcs": [list(entry) for entry in arcs],
    })


def options_digest(options):
    """Digest a JSON-able mapping of result-relevant options."""
    return digest(options)
