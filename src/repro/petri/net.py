"""Petri nets with weighted arcs and read arcs.

The nets built by the DFS translation are 1-safe and use read arcs heavily
(conditions of the DFS enabling equations become read arcs on the places
encoding other nodes' states), so read arcs are first-class citizens here
rather than being expanded into self-loops.  Keeping them explicit matters
for the persistence (hazard) check: two transitions that merely *read* a
common place are not in structural conflict.
"""

from enum import Enum

from repro.exceptions import ModelError
from repro.petri.marking import Marking
from repro.utils.naming import NameRegistry


class ArcKind(Enum):
    """The three kinds of arcs supported by :class:`PetriNet`."""

    CONSUME = "consume"  # place -> transition
    PRODUCE = "produce"  # transition -> place
    READ = "read"        # place -- transition (token tested, not consumed)


class Place:
    """A Petri-net place."""

    __slots__ = ("name", "tokens", "capacity", "annotation")

    def __init__(self, name, tokens=0, capacity=None, annotation=None):
        self.name = name
        self.tokens = int(tokens)
        self.capacity = capacity
        self.annotation = annotation or {}

    def __repr__(self):
        return "Place({!r}, tokens={})".format(self.name, self.tokens)


class Transition:
    """A Petri-net transition."""

    __slots__ = ("name", "annotation")

    def __init__(self, name, annotation=None):
        self.name = name
        self.annotation = annotation or {}

    def __repr__(self):
        return "Transition({!r})".format(self.name)


class Arc:
    """A weighted arc between a place and a transition (or a read arc)."""

    __slots__ = ("place", "transition", "kind", "weight")

    def __init__(self, place, transition, kind, weight=1):
        self.place = place
        self.transition = transition
        self.kind = kind
        self.weight = int(weight)

    def __repr__(self):
        return "Arc({!r}, {!r}, {}, weight={})".format(
            self.place, self.transition, self.kind.value, self.weight
        )


class PetriNet:
    """A Petri net with read arcs and an initial marking.

    Elements are addressed by name.  The net keeps, per transition, the
    multiset of consumed places, produced places and the set of read places,
    which makes enabledness checks and firing O(degree of the transition).
    """

    def __init__(self, name="petri_net", annotation=None):
        self.name = name
        self.annotation = annotation or {}
        self._names = NameRegistry()
        self._places = {}
        self._transitions = {}
        self._arcs = []
        # transition name -> {place name: weight}
        self._consumes = {}
        self._produces = {}
        # transition name -> set of place names
        self._reads = {}

    # -- construction -------------------------------------------------------

    def add_place(self, name, tokens=0, capacity=None, annotation=None):
        """Add a place and return it."""
        self._names.register(name)
        place = Place(name, tokens=tokens, capacity=capacity, annotation=annotation)
        self._places[name] = place
        return place

    def add_transition(self, name, annotation=None):
        """Add a transition and return it."""
        self._names.register(name)
        transition = Transition(name, annotation=annotation)
        self._transitions[name] = transition
        self._consumes[name] = {}
        self._produces[name] = {}
        self._reads[name] = set()
        return transition

    def _check_pair(self, place, transition):
        if place not in self._places:
            raise ModelError("unknown place: {!r}".format(place))
        if transition not in self._transitions:
            raise ModelError("unknown transition: {!r}".format(transition))

    def add_arc(self, source, target, weight=1):
        """Add a consuming (place->transition) or producing (transition->place) arc."""
        if source in self._places and target in self._transitions:
            self._check_pair(source, target)
            self._consumes[target][source] = self._consumes[target].get(source, 0) + weight
            arc = Arc(source, target, ArcKind.CONSUME, weight)
        elif source in self._transitions and target in self._places:
            self._check_pair(target, source)
            self._produces[source][target] = self._produces[source].get(target, 0) + weight
            arc = Arc(target, source, ArcKind.PRODUCE, weight)
        else:
            raise ModelError(
                "an arc must connect a place and a transition: {!r} -> {!r}".format(
                    source, target
                )
            )
        self._arcs.append(arc)
        return arc

    def add_read_arc(self, place, transition):
        """Add a read arc: *transition* requires a token in *place* but does not consume it."""
        self._check_pair(place, transition)
        self._reads[transition].add(place)
        arc = Arc(place, transition, ArcKind.READ, 1)
        self._arcs.append(arc)
        return arc

    # -- element access -----------------------------------------------------

    @property
    def places(self):
        """Mapping of place name to :class:`Place`."""
        return dict(self._places)

    @property
    def transitions(self):
        """Mapping of transition name to :class:`Transition`."""
        return dict(self._transitions)

    @property
    def arcs(self):
        """List of all arcs in insertion order."""
        return list(self._arcs)

    def place(self, name):
        try:
            return self._places[name]
        except KeyError:
            raise ModelError("unknown place: {!r}".format(name))

    def transition(self, name):
        try:
            return self._transitions[name]
        except KeyError:
            raise ModelError("unknown transition: {!r}".format(name))

    def has_place(self, name):
        return name in self._places

    def has_transition(self, name):
        return name in self._transitions

    def consumed_places(self, transition):
        """Return ``{place: weight}`` consumed by *transition*."""
        return dict(self._consumes[transition])

    def produced_places(self, transition):
        """Return ``{place: weight}`` produced by *transition*."""
        return dict(self._produces[transition])

    def read_places(self, transition):
        """Return the set of places read (tested) by *transition*."""
        return set(self._reads[transition])

    def preset(self, transition):
        """Places consumed or read by *transition*."""
        return set(self._consumes[transition]) | self._reads[transition]

    def postset(self, transition):
        """Places produced by *transition*."""
        return set(self._produces[transition])

    def place_preset(self, place):
        """Transitions producing into *place*."""
        return {t for t, produced in self._produces.items() if place in produced}

    def place_postset(self, place):
        """Transitions consuming from *place*."""
        return {t for t, consumed in self._consumes.items() if place in consumed}

    def place_readers(self, place):
        """Transitions reading *place*."""
        return {t for t, reads in self._reads.items() if place in reads}

    # -- markings -----------------------------------------------------------

    def initial_marking(self):
        """Return the initial marking (from per-place token counts)."""
        return Marking({name: place.tokens for name, place in self._places.items()})

    def set_initial_marking(self, marking):
        """Set the initial marking from a :class:`Marking` or dict."""
        marking = marking if isinstance(marking, Marking) else Marking(marking)
        for name, place in self._places.items():
            place.tokens = marking[name]

    # -- semantics ----------------------------------------------------------

    def is_enabled(self, transition, marking):
        """Return ``True`` when *transition* is enabled at *marking*."""
        if transition not in self._transitions:
            raise ModelError("unknown transition: {!r}".format(transition))
        for place, weight in self._consumes[transition].items():
            if marking[place] < weight:
                return False
        for place in self._reads[transition]:
            if marking[place] < 1:
                return False
        return True

    def enabled_transitions(self, marking):
        """Return the sorted list of transitions enabled at *marking*."""
        return sorted(
            name for name in self._transitions if self.is_enabled(name, marking)
        )

    def fire(self, transition, marking):
        """Fire *transition* at *marking* and return the successor marking."""
        if not self.is_enabled(transition, marking):
            raise ModelError(
                "transition {!r} is not enabled at {!r}".format(transition, marking)
            )
        successor = marking.fire(
            self._consumes[transition], self._produces[transition]
        )
        self._check_capacities(successor, transition)
        return successor

    def _check_capacities(self, marking, transition):
        for place, count in marking.items():
            capacity = self._places[place].capacity
            if capacity is not None and count > capacity:
                raise ModelError(
                    "firing {!r} exceeds capacity {} of place {!r}".format(
                        transition, capacity, place
                    )
                )

    # -- structural checks ----------------------------------------------------

    def validate(self):
        """Run structural sanity checks; raise :class:`ModelError` on problems."""
        for transition in self._transitions:
            if not self._consumes[transition] and not self._produces[transition]:
                raise ModelError(
                    "transition {!r} is disconnected (no consume or produce arcs)".format(
                        transition
                    )
                )
        return True

    def __repr__(self):
        return "PetriNet({!r}, places={}, transitions={}, arcs={})".format(
            self.name, len(self._places), len(self._transitions), len(self._arcs)
        )
