"""Interactive and random simulation of Petri nets.

The simulator mirrors the token-game simulation available in Workcraft: it
keeps the current marking, a full firing history with undo, and can run
random walks for smoke-testing models before exhaustive verification.
"""

import random

from repro.exceptions import SimulationError
from repro.petri.marking import Marking


class PetriSimulator:
    """A stateful token-game simulator for a :class:`~repro.petri.net.PetriNet`."""

    def __init__(self, net, marking=None):
        self.net = net
        self._initial = (
            marking if isinstance(marking, Marking)
            else Marking(marking) if marking is not None
            else net.initial_marking()
        )
        self._marking = self._initial
        self._history = []

    # -- state ---------------------------------------------------------------

    @property
    def marking(self):
        """The current marking."""
        return self._marking

    @property
    def trace(self):
        """The list of transitions fired so far."""
        return [name for name, _ in self._history]

    def reset(self):
        """Return to the initial marking and clear the history."""
        self._marking = self._initial
        self._history = []

    # -- stepping ------------------------------------------------------------

    def enabled(self):
        """Return the sorted list of currently enabled transitions."""
        return self.net.enabled_transitions(self._marking)

    def can_fire(self, transition):
        return self.net.is_enabled(transition, self._marking)

    def fire(self, transition):
        """Fire one transition and return the new marking."""
        if not self.can_fire(transition):
            raise SimulationError(
                "transition {!r} is not enabled at the current marking".format(transition)
            )
        previous = self._marking
        self._marking = self.net.fire(transition, previous)
        self._history.append((transition, previous))
        return self._marking

    def fire_sequence(self, transitions):
        """Fire a sequence of transitions, failing fast on the first disabled one."""
        for transition in transitions:
            self.fire(transition)
        return self._marking

    def undo(self):
        """Undo the last firing; raise :class:`SimulationError` if there is none."""
        if not self._history:
            raise SimulationError("nothing to undo")
        transition, previous = self._history.pop()
        self._marking = previous
        return transition

    def is_deadlocked(self):
        """Return ``True`` when no transition is enabled."""
        return not self.enabled()

    def run_random(self, steps, seed=None, stop_on_deadlock=True):
        """Perform up to *steps* random firings; return the list of fired transitions."""
        rng = random.Random(seed)
        fired = []
        for _ in range(steps):
            enabled = self.enabled()
            if not enabled:
                if stop_on_deadlock:
                    break
                raise SimulationError("deadlock reached during random simulation")
            choice = rng.choice(enabled)
            self.fire(choice)
            fired.append(choice)
        return fired


def random_trace(net, steps, seed=None, marking=None):
    """Convenience wrapper: run a random walk and return ``(trace, final_marking)``."""
    simulator = PetriSimulator(net, marking=marking)
    trace = simulator.run_random(steps, seed=seed)
    return trace, simulator.marking
