"""Petri nets with read arcs.

This package is the verification substrate of the library.  DFS models are
translated into 1-safe Petri nets with read arcs (see
:mod:`repro.dfs.translation`), which are then analysed by explicit-state
reachability.  In the paper this role is played by the MPSAT unfolding tool;
here the state spaces involved are small enough for an explicit traversal.
"""

from repro.petri.marking import Marking
from repro.petri.net import Arc, ArcKind, PetriNet, Place, Transition
from repro.petri.reachability import (
    ReachabilityGraph,
    build_reachability_graph,
    explore,
)
from repro.petri.compiled import (
    CompiledNet,
    CompiledReachabilityGraph,
    explore_compiled,
)
from repro.petri.simulation import PetriSimulator, random_trace
from repro.petri.properties import (
    check_boundedness,
    check_deadlock,
    check_mutual_exclusion,
    check_persistence,
    PropertyReport,
)
from repro.petri.analysis import incidence_matrix, place_invariants, transition_invariants
from repro.petri.export import to_dot, to_g_format

__all__ = [
    "Arc",
    "ArcKind",
    "CompiledNet",
    "CompiledReachabilityGraph",
    "Marking",
    "PetriNet",
    "PetriSimulator",
    "Place",
    "PropertyReport",
    "ReachabilityGraph",
    "Transition",
    "build_reachability_graph",
    "check_boundedness",
    "check_deadlock",
    "check_mutual_exclusion",
    "check_persistence",
    "explore",
    "explore_compiled",
    "incidence_matrix",
    "place_invariants",
    "random_trace",
    "to_dot",
    "to_g_format",
    "transition_invariants",
]
