"""Explicit-state reachability analysis.

In the paper the computationally heavy verification is delegated to the
MPSAT unfolding tool.  The DFS models considered here translate into Petri
nets whose reachable state spaces are modest (the OPE pipeline stages are
analysed per-stage or with a bounded number of stages), so an explicit
breadth-first exploration with hashed markings is sufficient and keeps the
library self-contained.
"""

from collections import deque

from repro.exceptions import VerificationError


class ReachabilityGraph:
    """The reachability graph (state graph) of a Petri net.

    States are :class:`~repro.petri.marking.Marking` objects; edges are
    labelled by transition names.
    """

    def __init__(self, net, initial_marking):
        self.net = net
        self.initial_marking = initial_marking
        self._states = {}           # marking -> state index
        self._successors = {}       # marking -> list of (transition, marking)
        self._predecessors = {}     # marking -> list of (transition, marking)
        self._frontier = set()      # markings whose successor lists are incomplete
        self.truncated = False

    # -- construction (used by explore) ---------------------------------------

    def _add_state(self, marking):
        if marking not in self._states:
            self._states[marking] = len(self._states)
            self._successors[marking] = []
            self._predecessors[marking] = []
        return self._states[marking]

    def _add_edge(self, source, transition, target):
        self._successors[source].append((transition, target))
        self._predecessors[target].append((transition, source))

    # -- queries ---------------------------------------------------------------

    def __len__(self):
        return len(self._states)

    def __contains__(self, marking):
        return marking in self._states

    @property
    def states(self):
        """All reachable markings, in discovery order."""
        return sorted(self._states, key=self._states.get)

    def successors(self, marking):
        """List of ``(transition, marking)`` successors of *marking*."""
        return list(self._successors[marking])

    def predecessors(self, marking):
        """List of ``(transition, marking)`` predecessors of *marking*."""
        return list(self._predecessors[marking])

    def enabled(self, marking):
        """Transitions enabled at *marking* (from the stored edges).

        For a frontier state of a truncated graph the stored edges are
        incomplete; use :meth:`is_expanded` to tell the two cases apart.
        """
        return sorted({transition for transition, _ in self._successors[marking]})

    @property
    def frontier(self):
        """Markings whose successor lists are incomplete (truncation only).

        When exploration hits its state bound, states whose enabled
        transitions could not all be recorded form the frontier.  Property
        checks must not draw conclusions from the (partial) edges of these
        states.  Empty whenever ``truncated`` is false.
        """
        return set(self._frontier)

    def is_expanded(self, marking):
        """``True`` when every enabled transition of *marking* was recorded."""
        return marking not in self._frontier

    def deadlocks(self):
        """Return the list of reachable deadlocked markings.

        Frontier states of a truncated graph are excluded: they have
        unrecorded enabled transitions, so an empty successor list there says
        nothing about deadlock.
        """
        return [
            m for m in self.states
            if not self._successors[m] and m not in self._frontier
        ]

    def edge_count(self):
        return sum(len(edges) for edges in self._successors.values())

    def find(self, predicate):
        """Return the first reachable marking satisfying *predicate*, or ``None``."""
        for marking in self.states:
            if predicate(marking):
                return marking
        return None

    def filter(self, predicate):
        """Return all reachable markings satisfying *predicate*."""
        return [marking for marking in self.states if predicate(marking)]

    def trace_to(self, target):
        """Return a firing sequence from the initial marking to *target*.

        Uses a breadth-first search over the stored predecessor edges, so the
        returned trace is one of the shortest.  Raises
        :class:`~repro.exceptions.VerificationError` if *target* is not a
        reachable state of this graph.
        """
        if target not in self._states:
            raise VerificationError("marking is not reachable: {!r}".format(target))
        if target == self.initial_marking:
            return []
        # BFS backwards from target to the initial marking.
        queue = deque([target])
        parent = {target: None}
        while queue:
            current = queue.popleft()
            if current == self.initial_marking:
                break
            for transition, predecessor in self._predecessors[current]:
                if predecessor not in parent:
                    parent[predecessor] = (transition, current)
                    queue.append(predecessor)
        if self.initial_marking not in parent:
            raise VerificationError(
                "no path from the initial marking to {!r}".format(target)
            )
        trace = []
        cursor = self.initial_marking
        while cursor != target:
            transition, successor = parent[cursor]
            trace.append(transition)
            cursor = successor
        return trace


def explore(net, marking=None, max_states=200000):
    """Build the reachability graph of *net* starting from *marking*.

    Parameters
    ----------
    net:
        The :class:`~repro.petri.net.PetriNet` to explore.
    marking:
        Starting marking; defaults to the net's initial marking.
    max_states:
        Safety bound on the number of stored states.  When the bound is hit
        the returned graph has ``truncated`` set to ``True``; property checks
        treat a truncated graph as inconclusive.
    """
    initial = marking if marking is not None else net.initial_marking()
    graph = ReachabilityGraph(net, initial)
    graph._add_state(initial)
    queue = deque([initial])
    while queue:
        current = queue.popleft()
        complete = True
        for transition in net.enabled_transitions(current):
            successor = net.fire(transition, current)
            if successor not in graph:
                if len(graph) >= max_states:
                    # Cannot store the new state, but keep scanning: edges to
                    # already-discovered successors must still be recorded so
                    # the truncated graph is exact on the states it holds.
                    graph.truncated = True
                    complete = False
                    continue
                graph._add_state(successor)
                queue.append(successor)
            graph._add_edge(current, transition, successor)
        if not complete:
            graph._frontier.add(current)
    return graph


def build_reachability_graph(net, marking=None, max_states=200000, engine="auto",
                             workers=0, spill_dir=None, spill_bytes=None,
                             resume=None):
    """Build the reachability graph of *net* with the best available engine.

    Parameters
    ----------
    net, marking, max_states:
        As for :func:`explore`.
    engine:
        ``"auto"`` (default) compiles 1-safe nets to a bitmask engine --
        the array-native batch explorer of :mod:`repro.petri.batch` when
        the optional NumPy extra is importable, the pure-int engine of
        :mod:`repro.petri.compiled` otherwise -- and falls back to the
        explicit explorer for nets it cannot represent (arc weights above
        one, multi-token markings, non-safe behaviour discovered
        mid-exploration).  ``"batch"`` forces the NumPy whole-frontier
        engine (raising :class:`~repro.exceptions.CompilationError` when
        NumPy is missing), ``"compiled"`` forces the pure-int bitmask
        engine; both raise when the net does not fit the 1-safe
        representation.  ``"explicit"`` forces the hash-dict explorer.
    workers:
        ``> 1`` explores the compiled relation with the sharded parallel
        explorer of :mod:`repro.parallel.sharded` (whose workers expand
        vectorised whenever NumPy is importable), with a graph
        bit-identical to the single-process one.  Ignored on the explicit
        path, and inside daemonic workers (which cannot spawn children --
        campaign jobs fall back to the sequential engine transparently).
    spill_dir, spill_bytes:
        Out-of-core knobs for the columnar engines (see
        :mod:`repro.petri.storage`): once the graph's arrays exceed
        *spill_bytes* of RAM they move onto ``np.memmap`` files under
        *spill_dir*.  ``None`` consults ``REPRO_SPILL_DIR`` /
        ``REPRO_SPILL_BYTES``; both unset disables spilling.  Like
        *workers*, spilling never changes the graph -- only where it
        lives -- and is ignored by the pure-int and explicit engines.
    resume:
        A checkpoint directory making the columnar exploration
        **crash-safe**: the engine keeps its arrays at named paths under
        the directory and atomically records a manifest after every
        completed BFS level (see :class:`~repro.petri.storage.Checkpoint`).
        When the directory already holds a valid manifest -- the leftover
        of a killed run -- exploration restarts from the last complete
        level instead of from scratch, and the resumed graph is
        bit-identical to an uninterrupted run.  A sharded run (*workers*
        > 1) writes the same manifests; its leftover checkpoint is resumed
        by the single-process batch engine (same layout, same graph).  A
        run that completes removes the directory's files.  Requires the
        NumPy columnar engines; ignored by the pure-int and explicit
        fallbacks.

    All engines explore states in the same order and implement the same
    truncation semantics, so the resulting graphs are interchangeable --
    bit-identical on states, packed edges, parents, frontier and
    truncation across the compiled family.
    """
    if engine == "explicit":
        return explore(net, marking, max_states=max_states)
    if engine not in ("auto", "compiled", "batch"):
        raise ValueError("unknown reachability engine: {!r}".format(engine))
    # Imported lazily: compiled.py subclasses ReachabilityGraph.
    from repro.exceptions import CompilationError
    from repro.petri.batch import explore_batch, numpy_available
    from repro.petri.compiled import CompiledNet, explore_compiled
    from repro.petri.storage import SpillConfig

    spill = SpillConfig.resolve(spill_dir, spill_bytes)
    try:
        if engine == "batch" and not numpy_available():
            raise CompilationError(
                "engine=\"batch\" requires the optional NumPy extra "
                "(pip install numpy, and REPRO_NO_NUMPY unset)")
        compiled = CompiledNet.compile(net)
        use_batch = engine == "batch" or (engine == "auto" and numpy_available())
        checkpoint = str(resume) if resume and numpy_available() else None
        if checkpoint is not None and use_batch:
            # A leftover manifest (from a killed batch *or* sharded run --
            # their level-boundary layouts are identical) is resumed by
            # the single-process batch engine.
            from repro.petri.storage import Checkpoint

            if Checkpoint.load(checkpoint) is not None:
                return explore_batch(compiled, marking,
                                     max_states=max_states, spill=spill,
                                     checkpoint=checkpoint)
        if workers and int(workers) > 1:
            from repro.parallel.context import in_daemon_worker
            from repro.parallel.sharded import explore_sharded

            if not in_daemon_worker():
                # The engine choice binds the worker backend too: "compiled"
                # forces pure-int workers, "batch" vectorised ones, "auto"
                # lets each worker pick by NumPy availability.
                return explore_sharded(compiled, marking,
                                       max_states=max_states, workers=workers,
                                       batch=None if engine == "auto"
                                       else use_batch, spill=spill,
                                       checkpoint=(checkpoint if use_batch
                                                   else None))
        if use_batch:
            return explore_batch(compiled, marking, max_states=max_states,
                                 spill=spill, checkpoint=checkpoint)
        return explore_compiled(compiled, marking, max_states=max_states)
    except CompilationError:
        if engine == "compiled" or engine == "batch":
            raise
        return explore(net, marking, max_states=max_states)
