"""Structural analysis of Petri nets: incidence matrix and invariants.

Place invariants are used as an additional sanity check on the DFS
translation: every Boolean state variable of a DFS node is encoded as a pair
of complementary places (``x_0``/``x_1``) whose token count is preserved by
every transition, so each such pair must appear as a place invariant.
"""

from fractions import Fraction

import numpy as np


def incidence_matrix(net):
    """Return ``(matrix, place_names, transition_names)``.

    ``matrix[i][j]`` is the net token change of place ``i`` when transition
    ``j`` fires (produced minus consumed).  Read arcs do not contribute.
    """
    place_names = sorted(net.places)
    transition_names = sorted(net.transitions)
    place_index = {name: i for i, name in enumerate(place_names)}
    matrix = np.zeros((len(place_names), len(transition_names)), dtype=np.int64)
    for j, transition in enumerate(transition_names):
        for place, weight in net.consumed_places(transition).items():
            matrix[place_index[place], j] -= weight
        for place, weight in net.produced_places(transition).items():
            matrix[place_index[place], j] += weight
    return matrix, place_names, transition_names


def _rational_nullspace(matrix):
    """Return a basis of the (right) nullspace of an integer matrix.

    Gaussian elimination over exact rationals (``fractions.Fraction``) keeps
    the result integral after clearing denominators, which is what invariant
    vectors need.
    """
    rows, cols = matrix.shape
    work = [[Fraction(int(matrix[r, c])) for c in range(cols)] for r in range(rows)]
    pivot_cols = []
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if work[row][col] != 0:
                pivot = row
                break
        if pivot is None:
            continue
        work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
        factor = work[pivot_row][col]
        work[pivot_row] = [value / factor for value in work[pivot_row]]
        for row in range(rows):
            if row != pivot_row and work[row][col] != 0:
                scale = work[row][col]
                work[row] = [
                    value - scale * pivot_value
                    for value, pivot_value in zip(work[row], work[pivot_row])
                ]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    free_cols = [c for c in range(cols) if c not in pivot_cols]
    basis = []
    for free in free_cols:
        vector = [Fraction(0)] * cols
        vector[free] = Fraction(1)
        for row_index, col in enumerate(pivot_cols):
            vector[col] = -work[row_index][free]
        # Clear denominators and normalise sign.
        denominators = [value.denominator for value in vector]
        lcm = 1
        for denominator in denominators:
            lcm = lcm * denominator // _gcd(lcm, denominator)
        integral = [int(value * lcm) for value in vector]
        gcd = 0
        for value in integral:
            gcd = _gcd(gcd, abs(value))
        if gcd > 1:
            integral = [value // gcd for value in integral]
        if any(value < 0 for value in integral) and not any(value > 0 for value in integral):
            integral = [-value for value in integral]
        basis.append(integral)
    return basis


def _gcd(a, b):
    while b:
        a, b = b, a % b
    return a


def place_invariants(net):
    """Return a list of place invariants, each a ``{place: weight}`` dict.

    A place invariant is an integer weighting of places whose weighted token
    sum is constant under every transition firing (a left nullspace vector of
    the incidence matrix).  Zero entries are omitted from the dictionaries.
    """
    matrix, place_names, _ = incidence_matrix(net)
    basis = _rational_nullspace(matrix.T)
    invariants = []
    for vector in basis:
        invariant = {
            place_names[i]: weight for i, weight in enumerate(vector) if weight != 0
        }
        if invariant:
            invariants.append(invariant)
    return invariants


def transition_invariants(net):
    """Return a list of transition invariants, each a ``{transition: count}`` dict.

    A transition invariant is a firing-count vector that returns the net to
    the same marking (a right nullspace vector of the incidence matrix).
    """
    matrix, _, transition_names = incidence_matrix(net)
    basis = _rational_nullspace(matrix)
    invariants = []
    for vector in basis:
        invariant = {
            transition_names[i]: count for i, count in enumerate(vector) if count != 0
        }
        if invariant:
            invariants.append(invariant)
    return invariants


def invariant_value(invariant, marking):
    """Evaluate the weighted token sum of *invariant* at *marking*."""
    return sum(weight * marking[place] for place, weight in invariant.items())
