"""Place invariants (semiflows) of Petri nets.

A **semiflow** is a non-negative integer weighting ``y`` of the places such
that every transition firing leaves the weighted token sum unchanged:
``y . M = y . M0`` for every reachable marking ``M``.  Semiflows are the
classic structural source of *inductive* facts about a net -- they hold in
every reachable marking without exploring any of them -- and they are what
lets :class:`repro.verification.checkers.InductiveChecker` prove safety
properties on state spaces far beyond any exploration bound.

The DFS translations of :mod:`repro.dfs.translation` are rich in small
semiflows: every complementary place pair ``x_0 + x_1 = 1`` is one, and each
dynamic register additionally satisfies ``Mt_1 + Mf_1 + M_0 = 1``, which is
exactly the fact needed to prove token-value mutual exclusion inductively.

The generator is the Farkas-style elimination algorithm: start from the
identity weightings and eliminate transitions one by one, combining rows
with opposite effects.  Minimal-support pruning keeps the basis small; the
worst case is still exponential, so the computation carries a row budget and
raises :class:`InvariantBudgetExceeded` instead of hanging on adversarial
nets (callers then fall back to weaker reasoning or report inconclusive).

Because semiflows depend only on net *structure*, they are ideal cache
material: campaign grids re-verify pipeline families whose members are
structurally stable across runs, and every inductive sweep used to re-derive
the same basis per scenario.  :class:`SemiflowCache` memoises
:func:`compute_semiflows` on disk keyed by the canonical net fingerprint
(the same scheme as the campaign verdict cache) -- warm hits are
bit-identical to a cold derivation, and budget blow-ups are remembered too,
so a hopeless net does not burn its row budget on every run.
"""

from math import gcd

from repro.exceptions import VerificationError
from repro.petri.fingerprint import net_fingerprint, options_digest
from repro.utils.diskcache import JsonDiskCache


class InvariantBudgetExceeded(VerificationError):
    """Raised when the semiflow computation exceeds its row budget."""


class Semiflow:
    """One non-negative place invariant: ``sum(weights[p] * M[p]) == value``.

    ``weights`` maps place names to positive integers (places outside the
    mapping have weight zero); ``value`` is the weighted sum at the initial
    marking, which every reachable marking must reproduce.
    """

    __slots__ = ("weights", "value")

    def __init__(self, weights, value):
        self.weights = dict(weights)
        self.value = int(value)

    @property
    def support(self):
        return frozenset(self.weights)

    def upper_bound(self, place):
        """Structural bound on the tokens *place* can hold, or ``None``."""
        weight = self.weights.get(place)
        if not weight:
            return None
        return self.value // weight

    def holds_at(self, marking):
        """Evaluate the invariant on a marking (sanity checks and tests)."""
        return sum(w * marking[p] for p, w in self.weights.items()) == self.value

    def to_payload(self):
        """A JSON-able description that round-trips bit-identically."""
        return {"weights": dict(self.weights), "value": self.value}

    @classmethod
    def from_payload(cls, payload):
        return cls(payload["weights"], payload["value"])

    def __eq__(self, other):
        return (isinstance(other, Semiflow)
                and self.weights == other.weights
                and self.value == other.value)

    def __hash__(self):
        return hash((frozenset(self.weights.items()), self.value))

    def __repr__(self):
        terms = " + ".join(
            "{}{}".format("" if w == 1 else "{}*".format(w), p)
            for p, w in sorted(self.weights.items()))
        return "Semiflow({} == {})".format(terms, self.value)


def _normalise(vector):
    divisor = 0
    for value in vector:
        divisor = gcd(divisor, value)
    if divisor > 1:
        return [value // divisor for value in vector]
    return vector


def compute_semiflows(net, max_rows=20000):
    """Return a minimal-support generating set of semiflows of *net*.

    Farkas elimination over the incidence matrix: rows start as the identity
    weightings (one per place) and every transition column is eliminated by
    combining rows of opposite effect, so all surviving rows are
    non-negative by construction.  Rows whose support strictly contains
    another row's support are pruned each round, which keeps the basis at
    the minimal semiflows.

    Raises :class:`InvariantBudgetExceeded` when an elimination round would
    hold more than *max_rows* rows.
    """
    places = sorted(net.places)
    index = {place: i for i, place in enumerate(places)}
    rows = []
    for i in range(len(places)):
        row = [0] * len(places)
        row[i] = 1
        rows.append(row)

    def transition_effect(row, transition):
        effect = 0
        for place, weight in net.produced_places(transition).items():
            effect += row[index[place]] * weight
        for place, weight in net.consumed_places(transition).items():
            effect -= row[index[place]] * weight
        return effect

    for transition in sorted(net.transitions):
        positive, negative, kept = [], [], []
        for row in rows:
            effect = transition_effect(row, transition)
            if effect > 0:
                positive.append((row, effect))
            elif effect < 0:
                negative.append((row, -effect))
            else:
                kept.append(row)
        if len(kept) + len(positive) * len(negative) > max_rows:
            raise InvariantBudgetExceeded(
                "semiflow computation of {!r} exceeds the {}-row budget at "
                "transition {!r}".format(net.name, max_rows, transition))
        for row_a, effect_a in positive:
            for row_b, effect_b in negative:
                combined = _normalise([
                    effect_b * a + effect_a * b for a, b in zip(row_a, row_b)
                ])
                kept.append(combined)
        supports = [frozenset(i for i, v in enumerate(row) if v) for row in kept]
        pruned, seen = [], set()
        for i, row in enumerate(kept):
            if any(j != i and supports[j] < supports[i]
                   for j in range(len(kept))):
                continue
            key = tuple(row)
            if key in seen:
                continue
            seen.add(key)
            pruned.append(row)
        rows = pruned

    initial = net.initial_marking()
    semiflows = []
    for row in rows:
        weights = {places[i]: value for i, value in enumerate(row) if value}
        if not weights:
            continue
        value = sum(weight * initial[place] for place, weight in weights.items())
        semiflows.append(Semiflow(weights, value))
    return semiflows


def place_bounds(semiflows):
    """Map every covered place to its tightest structural token bound."""
    bounds = {}
    for semiflow in semiflows:
        for place in semiflow.weights:
            bound = semiflow.upper_bound(place)
            current = bounds.get(place)
            if current is None or bound < current:
                bounds[place] = bound
    return bounds


def proves_bound(semiflows, places, bound=1):
    """``True`` when the semiflows bound every listed place by *bound*."""
    bounds = place_bounds(semiflows)
    return all(bounds.get(place, bound + 1) <= bound for place in places)


# -- siphons and traps --------------------------------------------------------
#
# The structural no-solver route to unbounded deadlock-freedom proofs,
# generalised to the read arcs of the DFS translations:
#
# * a **siphon** is a place set S such that every transition producing into
#   S also consumes or reads from S -- once S is empty it stays empty
#   forever (any refilling transition is disabled by the empty S);
# * a **trap** is a place set Q such that every transition consuming from Q
#   either produces into Q or reads a place of Q it does not consume --
#   once Q is marked it stays marked forever.
#
# Commoner's argument then goes: at a dead marking of an *ordinary* net
# (all consume weights 1; read arcs always test for a single token), the
# empty places form a siphon, because every transition is disabled and so
# needs a token from some empty place.  An initially marked trap inside a
# siphon can therefore never empty, so if **every minimal siphon** contains
# an initially marked trap (or a semiflow with positive value supported
# inside the siphon -- an equally permanent token reserve), no dead marking
# exists: the net is **deadlock-free, with no state bound at all**.  This
# is one-sided -- a siphon without such a reserve proves nothing.


def _needs(net, transition):
    """Places *transition* needs tokens in to fire (consume + read)."""
    needs = set(net.consumed_places(transition))
    needs.update(net.read_places(transition))
    return needs


def is_siphon(net, places):
    """Is *places* a (generalised) siphon of *net*?"""
    places = set(places)
    for transition in net.transitions:
        if places.intersection(net.produced_places(transition)):
            if not places.intersection(_needs(net, transition)):
                return False
    return True


def is_trap(net, places):
    """Is *places* a (generalised) trap of *net*?"""
    places = set(places)
    for transition in net.transitions:
        consumed = places.intersection(net.consumed_places(transition))
        if not consumed:
            continue
        if places.intersection(net.produced_places(transition)):
            continue
        surviving = (places.intersection(net.read_places(transition))
                     - set(net.consumed_places(transition)))
        if not surviving:
            return False
    return True


def maximal_trap_within(net, places):
    """The unique maximal trap contained in *places* (possibly empty).

    Traps are closed under union, so the maximal one is well-defined; it is
    computed by removing forced places to a fixpoint: a transition that
    consumes from the candidate without producing into it (or reading a
    surviving place of it) can unmark the candidate, so everything it
    consumes must go.
    """
    candidate = set(places)
    changed = True
    while changed and candidate:
        changed = False
        for transition in net.transitions:
            consumed_places = net.consumed_places(transition)
            consumed = candidate.intersection(consumed_places)
            if not consumed:
                continue
            if candidate.intersection(net.produced_places(transition)):
                continue
            surviving = (candidate.intersection(net.read_places(transition))
                         - set(consumed_places))
            if surviving:
                continue
            candidate -= consumed
            changed = True
    return candidate


class SiphonBudgetExceeded(VerificationError):
    """Raised when the minimal-siphon enumeration exceeds its node budget."""


#: In-process memo of :func:`minimal_siphons`, keyed by canonical net
#: fingerprint and node budget.  Budget blow-ups are remembered too: on a
#: hard net the enumeration burns its whole *max_nodes* budget before
#: declining, and the portfolio re-asks the structural checker on every
#: battery -- without the memo each repeat pays the full decline again.
#: Mirrors :class:`SemiflowCache` in spirit, but in-process: the result is
#: pure structure, so the same fingerprint and budget always reproduce it.
_SIPHON_MEMO = {}
_SIPHON_MEMO_LIMIT = 64


def minimal_siphons(net, max_nodes=100000):
    """Enumerate **all** minimal (non-empty) siphons of *net*.

    Branch-and-bound: grow a candidate from each seed place, and whenever
    some transition produces into the candidate without needing from it,
    branch over that transition's needed places (a correct siphon must
    contain one of them).  Every minimal siphon survives this branching
    from each of its seed places, so the enumeration is complete -- which
    is what makes a "deadlock-free" verdict built on it sound.  The search
    tree is cut off after *max_nodes* nodes with
    :class:`SiphonBudgetExceeded` (enumeration is exponential in general).

    Place sets are int bitmasks internally (one bit per place in sorted
    order, the compiled engine's representation), so the dominating
    covered/violated scans are single-word subset tests instead of
    frozenset comparisons -- the traversal, the node count at which a
    budget blow-up fires, and the returned siphons are all identical to
    the set-based formulation, only (much) faster.

    Memoised per process on ``(net fingerprint, max_nodes)``, including
    the :class:`SiphonBudgetExceeded` outcome, so repeated structural
    queries against the same net (portfolio batteries, campaign re-runs)
    pay the enumeration -- or its budget-exhausting decline -- only once.
    """
    key = (net_fingerprint(net), max_nodes)
    hit = _SIPHON_MEMO.get(key)
    if hit is None:
        try:
            hit = ("ok", tuple(_enumerate_minimal_siphons(net, max_nodes)))
        except SiphonBudgetExceeded as error:
            hit = ("budget", str(error))
        while len(_SIPHON_MEMO) >= _SIPHON_MEMO_LIMIT:
            del _SIPHON_MEMO[next(iter(_SIPHON_MEMO))]
        _SIPHON_MEMO[key] = hit
    status, payload = hit
    if status == "budget":
        raise SiphonBudgetExceeded(payload)
    return list(payload)


def _enumerate_minimal_siphons(net, max_nodes):
    transitions = sorted(net.transitions)
    places = sorted(net.places)
    bit_of = {place: 1 << index for index, place in enumerate(places)}

    def mask(names):
        result = 0
        for name in names:
            result |= bit_of[name]
        return result

    produces = [mask(net.produced_places(t)) for t in transitions]
    needs = [mask(_needs(net, t)) for t in transitions]
    # Branch targets, pre-sorted by place name (== ascending bit index).
    need_bits = [[bit_of[place] for place in sorted(_needs(net, t))]
                 for t in transitions]
    transition_range = range(len(transitions))
    siphons = []
    nodes = 0

    def grow(candidate):
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise SiphonBudgetExceeded(
                "minimal-siphon enumeration of {!r} exceeds the {}-node "
                "budget".format(net.name, max_nodes))
        for found in siphons:
            if found & candidate == found:  # covered: a subset was found
                return
        for index in transition_range:
            if produces[index] & candidate and not needs[index] & candidate:
                for bit in need_bits[index]:  # branch on the violation
                    grow(candidate | bit)
                return
        siphons[:] = [found for found in siphons
                      if candidate & found != candidate]
        siphons.append(candidate)

    for seed in places:
        grow(bit_of[seed])
    # The per-branch pruning keeps supersets out, but a smaller siphon
    # found later can still shadow an earlier one -- filter once more.
    named = [
        frozenset(place for place in places if found & bit_of[place])
        for found in siphons
        if not any(other != found and other & found == other
                   for other in siphons)
    ]
    return sorted(named, key=sorted)


def siphon_trap_certificate(net, semiflows=(), max_nodes=100000):
    """Prove deadlock-freedom structurally, or explain why not.

    Returns ``{"proved": bool, "reason": str, ...}``.  A proved
    certificate lists, per minimal siphon, the permanent token reserve
    that keeps it marked: an initially marked trap or a positive-value
    semiflow supported inside the siphon.  One-sided: ``proved=False``
    means *inconclusive*, never "a deadlock exists".
    """
    transitions = sorted(net.transitions)
    if not transitions:
        return {"proved": False,
                "reason": "the net has no transitions, so every marking "
                          "is dead"}
    initial = net.initial_marking()
    for transition in transitions:
        if not _needs(net, transition):
            return {"proved": True, "siphons": 0, "witnesses": [],
                    "reason": "transition {!r} needs no tokens and is "
                              "enabled at every marking".format(transition)}
    for transition in transitions:
        if any(weight > 1
               for weight in net.consumed_places(transition).values()):
            return {"proved": False,
                    "reason": "siphon/trap reasoning needs an ordinary net "
                              "(transition {!r} has a consume weight > "
                              "1)".format(transition)}
    try:
        siphons = minimal_siphons(net, max_nodes=max_nodes)
    except SiphonBudgetExceeded as error:
        return {"proved": False, "reason": str(error)}
    witnesses = []
    for siphon in siphons:
        trap = maximal_trap_within(net, siphon)
        if trap and any(initial[place] > 0 for place in trap):
            witnesses.append({"siphon": sorted(siphon),
                              "trap": sorted(trap)})
            continue
        reserve = next(
            (semiflow for semiflow in semiflows
             if semiflow.value > 0 and semiflow.support <= siphon), None)
        if reserve is not None:
            witnesses.append({"siphon": sorted(siphon),
                              "semiflow": sorted(reserve.weights)})
            continue
        return {"proved": False,
                "reason": "the minimal siphon {} contains no initially "
                          "marked trap and no positive semiflow "
                          "support".format(sorted(siphon))}
    return {"proved": True, "siphons": len(siphons), "witnesses": witnesses,
            "reason": "every minimal siphon ({}) holds a permanent token "
                      "reserve, so no reachable marking is dead (holds, "
                      "unbounded)".format(len(siphons))}


class SemiflowCache(JsonDiskCache):
    """Disk memo of :func:`compute_semiflows`, keyed by net fingerprint.

    The cache key combines the canonical net fingerprint with the ``max_rows``
    budget (a bigger budget can genuinely produce a different outcome on a
    net that blows up), so distinct budgets never shadow each other.  Two
    kinds of entry are stored: a successful basis, and a remembered
    :class:`InvariantBudgetExceeded` -- replayed as the exception on warm
    hits, so cached behaviour is indistinguishable from cold behaviour.
    """

    def entry_key(self, net, max_rows):
        return self.key(net_fingerprint(net),
                        options_digest({"max_rows": int(max_rows)}))

    def load(self, net, max_rows):
        """Return ``(hit, semiflows)``; raises on a cached budget blow-up."""
        payload = self.get(self.entry_key(net, max_rows))
        if payload is None:
            return False, None
        if payload.get("budget_exceeded"):
            raise InvariantBudgetExceeded(payload.get(
                "detail", "semiflow computation exceeded its cached budget"))
        return True, [Semiflow.from_payload(entry)
                      for entry in payload["semiflows"]]

    def store(self, net, max_rows, semiflows):
        self.put(self.entry_key(net, max_rows),
                 {"semiflows": [semiflow.to_payload() for semiflow in semiflows]})

    def store_budget_exceeded(self, net, max_rows, error):
        self.put(self.entry_key(net, max_rows),
                 {"budget_exceeded": True, "detail": str(error)})


def compute_semiflows_cached(net, max_rows=20000, cache=None):
    """:func:`compute_semiflows` through an optional :class:`SemiflowCache`.

    *cache* is a :class:`SemiflowCache`, a cache directory path, or ``None``
    to compute directly.  Warm hits return a basis equal element-for-element
    to the cold derivation (same order, same weights, same values), and a
    cold :class:`InvariantBudgetExceeded` is re-raised on warm hits too.
    """
    if cache is None:
        return compute_semiflows(net, max_rows=max_rows)
    if not isinstance(cache, SemiflowCache):
        cache = SemiflowCache(cache)
    hit, semiflows = cache.load(net, max_rows)
    if hit:
        return semiflows
    try:
        semiflows = compute_semiflows(net, max_rows=max_rows)
    except InvariantBudgetExceeded as error:
        cache.store_budget_exceeded(net, max_rows, error)
        raise
    cache.store(net, max_rows, semiflows)
    return semiflows
