"""Spillable array storage: RAM-budgeted, memmap-backed columnar arrays.

The batch and sharded exploration engines build
:class:`~repro.petri.batch.ColumnarReachabilityGraph` objects out of a
handful of growable arrays (state words, CSR edges, packed parents, the
sorted hash index).  This module provides the storage layer underneath
them:

* :class:`ArrayStore` -- a growable 1-D/2-D NumPy array with geometric
  (power-of-two) resizing.  In RAM it grows by allocating a fresh
  uninitialised buffer and copying only the *used* rows (unlike
  ``np.concatenate([buf, np.zeros_like(buf)])``, which both zeroes and
  copies the full capacity).  Once its pool spills, the backing becomes an
  ``np.memmap`` and growth is an ``ftruncate`` + remap -- no copy at all.
* :class:`SpillPool` -- the shared accountant for one graph's stores.  It
  tracks the RAM bytes held by all registered stores and, the first time a
  growth request would push the total past the configured budget, converts
  *every* store to disk at once (so the RAM working set drops to the
  frontier-sized temporaries of the exploration loop).
* :class:`SpillConfig` -- where the knobs live: ``spill_bytes=`` /
  ``spill_dir=`` keyword arguments, or the ``REPRO_SPILL_BYTES`` /
  ``REPRO_SPILL_DIR`` environment variables.

Spill files are **unlinked immediately after creation** (open ->
``os.unlink`` -> ``ftruncate`` -> ``mmap``): the kernel keeps the inode
alive while the file descriptor / mapping exists and reclaims the space
the moment the process lets go -- on success, on an exception, and even
when a supervised worker is SIGKILLed mid-exploration.  On filesystems
that refuse unlinked mappings the store falls back to named files removed
by :meth:`SpillPool.close` and an interpreter-exit finalizer.

The exception to the unlink rule is **checkpoint mode** (``named_dir=``):
a pool given a named directory keeps every spill file at a deterministic
path (``<dir>/<store>.bin``) and spills from the first row, so that an
exploration killed mid-level leaves its arrays on disk next to a
:class:`Checkpoint` manifest recording, per completed BFS level, the row
counts and chained CRC32 of every store.  Resuming re-opens those files
(:meth:`ArrayStore.restore`), verifies the CRCs, and continues from the
last complete level; a run that finishes discards the named files (the
live mappings survive the unlink, as above).
"""

import json
import mmap
import os
import tempfile
import weakref
import zlib

from repro.exceptions import ConfigurationError
from repro.utils import faults as _faults

try:  # NumPy is an optional dependency (see repro.petri.batch)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by REPRO_NO_NUMPY CI
    _np = None
if os.environ.get("REPRO_NO_NUMPY"):
    _np = None

#: Environment knobs (read by :meth:`SpillConfig.resolve`).
SPILL_DIR_ENV = "REPRO_SPILL_DIR"
SPILL_BYTES_ENV = "REPRO_SPILL_BYTES"


def _require_numpy():
    if _np is None:
        raise ConfigurationError(
            "spillable array storage requires NumPy (unset REPRO_NO_NUMPY "
            "or install the numpy extra)")


class SpillConfig:
    """Where and when a graph's arrays spill to disk.

    *budget_bytes* is the RAM ceiling for the graph's store backings: the
    first growth that would exceed it moves every store onto disk.  A
    budget of ``0`` spills immediately (every array is disk-backed from
    the first row) -- the mode the ``tests-spill`` CI job runs the whole
    differential suite under.
    """

    def __init__(self, directory=None, budget_bytes=0):
        self.directory = directory if directory is not None else tempfile.gettempdir()
        self.budget_bytes = max(0, int(budget_bytes))

    @classmethod
    def resolve(cls, spill_dir=None, spill_bytes=None):
        """Build a config from explicit settings, falling back to the env.

        Returns ``None`` when spilling is disabled (no directory, no
        budget, and neither ``REPRO_SPILL_DIR`` nor ``REPRO_SPILL_BYTES``
        set).  A directory alone means "spill from the start" (budget 0);
        a budget alone spills into the system temp directory.
        """
        if spill_dir is None:
            spill_dir = os.environ.get(SPILL_DIR_ENV) or None
        if spill_bytes is None:
            raw = os.environ.get(SPILL_BYTES_ENV)
            if raw:
                try:
                    spill_bytes = int(raw)
                except ValueError:
                    raise ConfigurationError(
                        "{}={!r} is not a byte count".format(SPILL_BYTES_ENV, raw))
        if spill_dir is None and spill_bytes is None:
            return None
        return cls(directory=spill_dir, budget_bytes=spill_bytes or 0)

    def to_dict(self):
        return {"directory": self.directory, "budget_bytes": self.budget_bytes}

    def __repr__(self):
        return "SpillConfig(directory={!r}, budget_bytes={})".format(
            self.directory, self.budget_bytes)


def _remove_paths(paths):
    """Interpreter-exit fallback for named (non-unlinkable) spill files."""
    for path in paths:
        try:
            os.remove(path)
        except OSError:
            pass


class SpillPool:
    """Shared RAM accountant and spill-file factory for one graph's stores.

    The pool exists even when spilling is disabled (*config* ``None``):
    the stores always route growth decisions through it, so the in-RAM
    and spilled code paths are the same code path, and
    :meth:`stats` is always available for ``graph.exploration_stats``.
    """

    def __init__(self, config=None, label="graph", named_dir=None):
        self.config = config
        self.label = label
        self.named_dir = str(named_dir) if named_dir is not None else None
        self.spilled = False
        self.write_bytes = 0
        self.read_bytes = 0
        self.file_count = 0
        self.closed = False
        self._stores = []
        self._ram_bytes = 0
        self._serial = 0
        self._named_paths = []
        self._checkpoint_paths = []
        self._finalizer = weakref.finalize(self, _remove_paths, self._named_paths)
        if self.named_dir is not None:
            # Checkpoint mode: every store lives at a stable on-disk path
            # from its first row, so a killed run leaves resumable files.
            os.makedirs(self.named_dir, exist_ok=True)
            if self.config is None:
                self.config = SpillConfig(directory=self.named_dir,
                                          budget_bytes=0)
            self.spilled = True

    # -- accounting ----------------------------------------------------------

    def _register(self, store):
        self._stores.append(store)
        if self.spilled:
            store._to_disk()
        else:
            self._ram_bytes += store._backing_nbytes()
            self._check_budget()

    def _unregister(self, store):
        try:
            self._stores.remove(store)
        except ValueError:
            return
        if store._handle is None:
            self._ram_bytes -= store._backing_nbytes()

    def _approve_growth(self, extra_ram_bytes):
        """Account a RAM growth of *extra_ram_bytes*; maybe spill first.

        Returns ``True`` when the caller should grow in RAM, ``False``
        when the pool spilled (the caller's store is now disk-backed and
        must grow on disk instead).
        """
        if self.spilled:
            return False
        if (self.config is not None
                and self._ram_bytes + extra_ram_bytes > self.config.budget_bytes):
            self._spill_all()
            return False
        self._ram_bytes += extra_ram_bytes
        return True

    def _check_budget(self):
        if (not self.spilled and self.config is not None
                and self._ram_bytes > self.config.budget_bytes):
            self._spill_all()

    def _spill_all(self):
        self.spilled = True
        for store in self._stores:
            store._to_disk()
        self._ram_bytes = 0

    def drop_resident(self):
        """Stream completed work out of memory: drop spilled stores' pages.

        ``madvise(MADV_DONTNEED)`` on a shared file mapping releases the
        process's resident pages without touching the data (dirty pages
        stay in the page cache and are written back normally; later reads
        refault them on demand).  The exploration loops call this at each
        BFS level boundary, so the resident set tracks the current level's
        working set instead of the whole graph.  A no-op until the pool
        has spilled, and on platforms without ``madvise``.
        """
        if not self.spilled:
            return
        for store in self._stores:
            store.drop_resident()

    def note_read(self, nbytes):
        """Attribute *nbytes* of gather traffic to spill reads (if spilled)."""
        if self.spilled:
            self.read_bytes += int(nbytes)

    def note_write(self, nbytes):
        if self.spilled:
            self.write_bytes += int(nbytes)

    # -- spill files ---------------------------------------------------------

    def open_spill_file(self, name):
        """Create (and immediately unlink) a spill file; return its handle.

        In checkpoint mode the file instead lives at the stable path
        ``<named_dir>/<name>.bin``, is re-opened (not truncated) when it
        already exists, and is **not** unlinked: surviving the process is
        the point.  :meth:`discard_checkpoint_files` removes them once an
        exploration completes.
        """
        if self.named_dir is not None:
            path = os.path.join(self.named_dir, "{}.bin".format(name))
            handle = open(path, "r+b" if os.path.exists(path) else "w+b")
            if path not in self._checkpoint_paths:
                self._checkpoint_paths.append(path)
            self.file_count += 1
            return handle
        if self.config is None:
            raise ConfigurationError(
                "BUG: pool {!r} spilled without a spill configuration".format(
                    self.label))
        directory = self.config.directory
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "repro-spill-{}-{}-{}.bin".format(
            os.getpid(), self._serial, name))
        self._serial += 1
        handle = open(path, "w+b")
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - non-POSIX fallback
            self._named_paths.append(path)
        self.file_count += 1
        return handle

    # -- lifecycle -----------------------------------------------------------

    def stats(self):
        """JSON-able spill counters for ``graph.exploration_stats``."""
        return {
            "enabled": self.config is not None,
            "spilled": self.spilled,
            "budget_bytes": (self.config.budget_bytes
                             if self.config is not None else None),
            "directory": (self.config.directory
                          if self.config is not None else None),
            "write_bytes": self.write_bytes,
            "read_bytes": self.read_bytes,
            "files": self.file_count,
            "checkpoint": self.named_dir,
        }

    def discard_checkpoint_files(self):
        """Unlink the named checkpoint files (live mappings stay valid).

        Called when a checkpointed exploration completes: the graph keeps
        its memmap views (the kernel holds the inodes), but nothing is
        left on disk to resume from -- or to leak.
        """
        if self._checkpoint_paths:
            _remove_paths(list(self._checkpoint_paths))
            del self._checkpoint_paths[:]

    def close(self):
        """Release every store's backing and remove named fallback files.

        Safe to call at any time: unlinked mappings survive their file
        descriptor, so arrays still referencing the data stay valid while
        the disk space is reclaimed as soon as they are garbage collected.
        """
        if self.closed:
            return
        self.closed = True
        for store in list(self._stores):
            store.release()
        self._stores = []
        self._ram_bytes = 0
        if self._named_paths:
            _remove_paths(list(self._named_paths))
            del self._named_paths[:]
        self._finalizer.detach()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # Keep the pool alive on success (the graph owns the memmaps);
        # tear it down when the exploration died mid-flight.
        if exc_type is not None:
            self.close()
        return False


class ArrayStore:
    """A growable 1-D or 2-D array, RAM-backed until its pool spills.

    *columns* ``0`` makes a 1-D store of dtype *dtype*; otherwise rows are
    ``(columns,)`` vectors.  :attr:`data` is always a view of exactly the
    rows written so far; :meth:`append` grows geometrically through the
    pool's budget accounting.
    """

    def __init__(self, pool, name, dtype, columns=0, capacity=256):
        _require_numpy()
        self.pool = pool
        self.name = name
        self.dtype = _np.dtype(dtype)
        self.columns = int(columns)
        self._row_nbytes = self.dtype.itemsize * max(1, self.columns)
        self._length = 0
        self._handle = None
        capacity = max(1, int(capacity))
        self._backing = _np.empty(self._shape(capacity), dtype=self.dtype)
        pool._register(self)

    @classmethod
    def restore(cls, pool, name, dtype, columns, rows):
        """Re-open a checkpointed store's named file exposing *rows* rows.

        The pool must be in checkpoint mode.  The file is truncated down
        to the geometric capacity for *rows* (dropping any slack -- and
        any bytes appended after the manifest was written), never read
        into RAM: restoring a 100M-row store maps it, nothing more.
        """
        _require_numpy()
        if pool.named_dir is None:
            raise ConfigurationError(
                "ArrayStore.restore needs a checkpoint-mode pool")
        store = cls.__new__(cls)
        store.pool = pool
        store.name = name
        store.dtype = _np.dtype(dtype)
        store.columns = int(columns)
        store._row_nbytes = store.dtype.itemsize * max(1, store.columns)
        handle = pool.open_spill_file(name)
        rows = int(rows)
        needed = rows * store._row_nbytes
        size = os.fstat(handle.fileno()).st_size
        if size < needed:
            handle.close()
            raise ConfigurationError(
                "checkpoint store {!r} holds {} bytes, manifest claims {}"
                .format(name, size, needed))
        capacity = 1
        while capacity < rows:
            capacity *= 2
        os.ftruncate(handle.fileno(), capacity * store._row_nbytes)
        store._backing = _np.memmap(handle, dtype=store.dtype, mode="r+",
                                    shape=store._shape(capacity))
        store._handle = handle
        store._length = rows
        pool._stores.append(store)
        return store

    # -- geometry ------------------------------------------------------------

    def _shape(self, rows):
        if self.columns:
            return (rows, self.columns)
        return (rows,)

    def _backing_nbytes(self):
        return len(self._backing) * self._row_nbytes

    @property
    def spilled(self):
        return self._handle is not None

    def __len__(self):
        return self._length

    @property
    def data(self):
        """View of the rows written so far (a memmap view once spilled)."""
        return self._backing[:self._length]

    # -- growth --------------------------------------------------------------

    def reserve(self, rows):
        """Ensure capacity for *rows* total rows (geometric growth)."""
        capacity = len(self._backing)
        if rows <= capacity:
            return
        new_capacity = max(capacity, 1)
        while new_capacity < rows:
            new_capacity *= 2
        if self._handle is not None:
            self._grow_disk(new_capacity)
            return
        extra = (new_capacity - capacity) * self._row_nbytes
        if self.pool._approve_growth(extra):
            fresh = _np.empty(self._shape(new_capacity), dtype=self.dtype)
            fresh[:self._length] = self._backing[:self._length]
            self._backing = fresh
        else:
            # The pool spilled (converting this store at its old capacity);
            # finish the growth on disk.
            self._grow_disk(new_capacity)

    def _to_disk(self):
        """Move the backing onto an (unlinked) memmap at current capacity."""
        if self._handle is not None:
            return
        handle = self.pool.open_spill_file(self.name)
        capacity = max(1, len(self._backing))
        os.ftruncate(handle.fileno(), capacity * self._row_nbytes)
        mapped = _np.memmap(handle, dtype=self.dtype, mode="r+",
                            shape=self._shape(capacity))
        if self._length:
            mapped[:self._length] = self._backing[:self._length]
        self._backing = mapped
        self._handle = handle
        self.pool.write_bytes += self._length * self._row_nbytes

    def _grow_disk(self, new_capacity):
        os.ftruncate(self._handle.fileno(), new_capacity * self._row_nbytes)
        # Remapping the same descriptor sees the pages the old mapping
        # wrote (MAP_SHARED); no copy happens on disk growth.
        self._backing = _np.memmap(self._handle, dtype=self.dtype, mode="r+",
                                   shape=self._shape(new_capacity))

    # -- writes --------------------------------------------------------------

    def append(self, values):
        """Append *values* (rows of this store's shape); return nothing."""
        values = _np.asarray(values, dtype=self.dtype)
        count = len(values)
        if not count:
            return
        if _faults.trigger("io_error", "write"):
            raise _faults.FaultError(
                "injected io_error on write to store {!r}".format(self.name))
        self.reserve(self._length + count)
        self._backing[self._length:self._length + count] = values
        self._length += count
        self.pool.note_write(count * self._row_nbytes)

    def set_length(self, rows):
        """Reserve and expose *rows* rows; new rows are uninitialised."""
        self.reserve(rows)
        if rows > self._length:
            self.pool.note_write((rows - self._length) * self._row_nbytes)
        self._length = int(rows)

    # -- finalisation --------------------------------------------------------

    def trim(self):
        """The final exact-length array.

        In RAM this copies down to the exact size (releasing the geometric
        slack); on disk it narrows the view -- the file is never truncated
        downward, so stale larger mappings can never fault.
        """
        if self._handle is None:
            if len(self._backing) != self._length:
                exact = _np.empty(self._shape(self._length), dtype=self.dtype)
                exact[:] = self._backing[:self._length]
                slack = (len(self._backing) - self._length) * self._row_nbytes
                self._backing = exact
                self.pool._ram_bytes -= slack
            return self._backing
        return self._backing[:self._length]

    def drop_resident(self):
        """Release this store's resident pages (see ``SpillPool.drop_resident``)."""
        if self._handle is None:
            return
        mapping = getattr(self._backing, "_mmap", None)
        advice = getattr(mmap, "MADV_DONTNEED", None)
        if mapping is None or advice is None or not hasattr(mapping, "madvise"):
            return  # pragma: no cover - pre-3.8 or exotic mmap backend
        try:
            mapping.madvise(advice)
        except (OSError, ValueError):  # pragma: no cover - platform quirk
            pass

    def release(self):
        """Drop the backing and close the spill handle (if any)."""
        self.pool._unregister(self)
        self._backing = _np.empty(self._shape(0), dtype=self.dtype)
        self._length = 0
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None

    def __repr__(self):
        return "ArrayStore({!r}, rows={}, {})".format(
            self.name, self._length, "disk" if self.spilled else "ram")


class SortedIndexStore:
    """The graph's sorted hash index as a pair of double-buffered stores.

    Keeps ``(keys, idx)`` sorted by key.  :meth:`merge` re-implements
    :func:`repro.petri.batch.merge_sorted_index`'s fused placement, but
    writes the merged output into the *spare* buffer pair and swaps --
    so the merge is an append-bandwidth operation on disk instead of a
    fresh RAM allocation per BFS level.
    """

    def __init__(self, pool, name, key_dtype, idx_dtype):
        self._keys = (ArrayStore(pool, name + "-keys-a", key_dtype),
                      ArrayStore(pool, name + "-keys-b", key_dtype))
        self._idx = (ArrayStore(pool, name + "-idx-a", idx_dtype),
                     ArrayStore(pool, name + "-idx-b", idx_dtype))
        self._front = 0

    @property
    def keys(self):
        return self._keys[self._front].data

    @property
    def idx(self):
        return self._idx[self._front].data

    def merge(self, new_keys, new_idx):
        """Merge sorted-by-key *new* entries into the index (stable placement)."""
        order = _np.argsort(new_keys)
        new_keys = new_keys[order]
        new_idx = new_idx[order]
        front, back = self._front, 1 - self._front
        keys = self._keys[front].data
        idx = self._idx[front].data
        merged_size = len(keys) + len(new_keys)
        key_store, idx_store = self._keys[back], self._idx[back]
        key_store.set_length(merged_size)
        idx_store.set_length(merged_size)
        merged_keys = key_store.data
        merged_idx = idx_store.data
        positions = _np.searchsorted(keys, new_keys, side="left")
        new_slots = positions + _np.arange(len(new_keys), dtype=positions.dtype)
        old_slots = _np.ones(merged_size, dtype=bool)
        old_slots[new_slots] = False
        merged_keys[new_slots] = new_keys
        merged_idx[new_slots] = new_idx
        merged_keys[old_slots] = keys
        merged_idx[old_slots] = idx
        self._front = back

    def finalize(self):
        """Return ``(keys, idx)`` exact arrays and release the spare pair."""
        front, back = self._front, 1 - self._front
        keys = self._keys[front].trim()
        idx = self._idx[front].trim()
        self._keys[back].release()
        self._idx[back].release()
        return keys, idx


#: File name of the per-level checkpoint manifest inside a checkpoint dir.
MANIFEST_NAME = "checkpoint.json"
MANIFEST_VERSION = 1


def store_crc(store, rows=None, base=0):
    """Chunked CRC32 of the first *rows* rows of *store* (chained on *base*)."""
    rows = len(store) if rows is None else int(rows)
    data = store._backing[:rows]
    crc = base
    chunk = max(1, (1 << 24) // store._row_nbytes)
    for start in range(0, rows, chunk):
        part = _np.ascontiguousarray(data[start:start + chunk])
        crc = zlib.crc32(part.tobytes(), crc) & 0xFFFFFFFF
    return crc


class Checkpoint:
    """The per-level manifest of a checkpointed exploration.

    Tracks a fixed set of append-only stores; :meth:`record_level` flushes
    their dirty pages, extends each store's *chained* CRC32 by exactly the
    rows appended since the previous level (so checkpoint cost is
    proportional to the level, not the graph), and atomically replaces the
    manifest JSON.  After a crash, :meth:`load` + :meth:`resume` re-attach
    to the named files and verify the full chained CRC once; any mismatch
    raises :class:`~repro.exceptions.ConfigurationError`, which callers
    treat like a cache miss -- recompute from scratch.
    """

    def __init__(self, directory, stores, identity):
        self.directory = str(directory)
        self.path = os.path.join(self.directory, MANIFEST_NAME)
        self._stores = dict(stores)
        self.identity = identity
        self._rows = {name: 0 for name in self._stores}
        self._crcs = {name: 0 for name in self._stores}

    @staticmethod
    def load(directory):
        """The manifest payload under *directory*, or ``None``.

        Missing, unreadable, corrupt, or wrong-version manifests all
        return ``None``: a damaged checkpoint degrades to a fresh run.
        """
        try:
            with open(os.path.join(str(directory), MANIFEST_NAME), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != MANIFEST_VERSION:
            return None
        if not isinstance(payload.get("stores"), dict):
            return None
        return payload

    @classmethod
    def resume(cls, directory, pool, specs, identity, manifest):
        """Re-open the manifest's stores and verify their chained CRCs.

        *specs* maps store name to ``(dtype, columns)``.  Returns
        ``(checkpoint, stores)`` with every store restored to the manifest
        row counts; raises :class:`ConfigurationError` when the identity
        does not match this exploration or any store fails verification.
        """
        if manifest.get("identity") != identity:
            raise ConfigurationError(
                "checkpoint in {!r} belongs to a different exploration"
                .format(str(directory)))
        stores = {}
        try:
            for name, (dtype, columns) in specs.items():
                entry = manifest["stores"].get(name)
                if not isinstance(entry, dict):
                    raise ConfigurationError(
                        "checkpoint manifest misses store {!r}".format(name))
                store = ArrayStore.restore(pool, name, dtype, columns,
                                           entry["rows"])
                stores[name] = store
                if store_crc(store, entry["rows"]) != entry["crc"]:
                    raise ConfigurationError(
                        "checkpoint store {!r} failed CRC verification"
                        .format(name))
        except ConfigurationError:
            for store in stores.values():
                store.release()
            raise
        checkpoint = cls(directory, stores, identity)
        for name, entry in manifest["stores"].items():
            if name in checkpoint._rows:
                checkpoint._rows[name] = int(entry["rows"])
                checkpoint._crcs[name] = int(entry["crc"])
        return checkpoint, stores

    def record_level(self, progress):
        """Durably record one completed BFS level (*progress* is JSON-able).

        Ordering is the WAL rule in miniature: store pages are flushed
        *before* the manifest names their new lengths, so a manifest that
        survives a crash only ever describes bytes that also survived.
        """
        entries = {}
        for name, store in self._stores.items():
            rows = len(store)
            previous = self._rows[name]
            if rows < previous:
                raise ConfigurationError(
                    "BUG: checkpointed store {!r} shrank ({} -> {})"
                    .format(name, previous, rows))
            if rows > previous:
                self._crcs[name] = _chain_crc(store, previous, rows,
                                              self._crcs[name])
                _flush_rows(store, previous, rows)
            self._rows[name] = rows
            entries[name] = {"rows": rows, "crc": self._crcs[name]}
        payload = {
            "version": MANIFEST_VERSION,
            "identity": self.identity,
            "stores": entries,
            "progress": dict(progress),
        }
        temp_path = self.path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        _fsync_directory(self.directory)

    def discard(self):
        """Remove the manifest (the run completed or was superseded)."""
        for path in (self.path, self.path + ".tmp"):
            try:
                os.remove(path)
            except OSError:
                pass


def _flush_rows(store, start, end):
    """Sync the pages holding rows ``[start, end)`` of *store* to disk.

    The tracked stores are append-only between level boundaries (the full
    prefix CRC is re-verified on resume, so a mutated earlier row would be
    caught), which makes the appended range exactly the dirty range -- a
    whole-mapping ``msync`` would re-walk the entire file's pages every
    level, turning per-level cost into per-graph cost.
    """
    mapping = getattr(store._backing, "_mmap", None)
    if mapping is None:
        return  # RAM-backed: nothing on disk to sync yet
    page = mmap.ALLOCATIONGRANULARITY
    first = (start * store._row_nbytes) // page * page
    last = min(len(mapping),
               -(-(end * store._row_nbytes) // page) * page)
    if last > first:
        mapping.flush(first, last - first)


def _chain_crc(store, start, end, base):
    """Extend *base* by the CRC32 of rows ``[start, end)`` of *store*."""
    part = _np.ascontiguousarray(store._backing[start:end])
    # crc32 reads the buffer directly; .tobytes() would copy every level.
    return zlib.crc32(part.data, base) & 0xFFFFFFFF


def _fsync_directory(directory):
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(descriptor)
