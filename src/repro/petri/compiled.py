"""Compiled bitmask reachability engine for 1-safe Petri nets.

The DFS translations of :mod:`repro.dfs.translation` are 1-safe by
construction (every state variable is a complementary place pair), so an
entire marking fits into a single Python ``int`` with one bit per place.
This module compiles a :class:`~repro.petri.net.PetriNet` into
integer-indexed tables:

* per-transition **consume**, **produce** and **need** (consume | read)
  bitmasks -- enabledness is one mask compare, firing is two bit operations;
* per-transition **affected** masks derived from place->transition watch
  lists -- after firing ``t`` only the transitions whose preset intersects
  the places ``t`` touches need re-checking, so the enabled set is
  maintained incrementally along the BFS instead of being recomputed per
  state.

The result of exploration is a :class:`CompiledReachabilityGraph`, a thin
adapter with the full :class:`~repro.petri.reachability.ReachabilityGraph`
API (markings are decoded on demand) plus mask-level fast paths used by
:mod:`repro.petri.properties` and :mod:`repro.reach.evaluator`.  Both
engines visit states in the same order (transitions are indexed in sorted
name order, matching ``PetriNet.enabled_transitions``) and implement the
same truncation semantics, so their graphs are bit-identical on states,
edges, frontier and property verdicts.

Nets the bitmask representation cannot express -- arc weights above one, or
markings with more than one token in a place -- raise
:class:`~repro.exceptions.CompilationError`; a firing that would produce a
second token raises :class:`~repro.exceptions.SafenessOverflowError`.
Callers (see ``build_reachability_graph``) catch both and fall back to the
explicit explorer, which keeps exact multiset semantics.
"""

from collections import deque

from repro.exceptions import (
    CompilationError,
    SafenessOverflowError,
    VerificationError,
)
from repro.petri.marking import Marking
from repro.petri.reachability import ReachabilityGraph


def iter_bits(mask):
    """Yield the indices of the set bits of *mask*, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def scan_enabled_mask(need, state):
    """Enabled-transition mask of *state* by full scan of the *need* table.

    Shared by :meth:`CompiledNet.enabled_mask` and the sharded explorer's
    workers (which carry the tables without a :class:`CompiledNet`).
    """
    mask = 0
    bit = 1
    for transition_need in need:
        if (state & transition_need) == transition_need:
            mask |= bit
        bit <<= 1
    return mask


def transition_watch_lists(affected):
    """Per transition: the tuple of transition indices to re-check after it.

    This is the single source of the watch-list structure shared by every
    engine: the sequential explorer and the pure-int shard workers consume
    it through :func:`expand_watch_pairs`, and the batch (NumPy) engines
    through :class:`repro.petri.batch.WordTables` -- so the incremental
    enabled-set update logic cannot diverge between them.
    """
    return [tuple(iter_bits(mask)) for mask in affected]


def expand_watch_pairs(need, affected):
    """Per transition: ``(((bit, need), ...), touched_mask)`` watch pairs.

    The incremental enabled-set update after firing ``t`` re-checks only
    the transitions in ``affected[t]``; pre-expanding that mask into
    ``(single-bit, need)`` pairs takes the bit-scan (``& -``, ``^``,
    ``bit_length``) out of the exploration inner loops.  Shared by the
    sequential and sharded explorers so the update logic cannot diverge.
    """
    return [
        (tuple((1 << i, need[i]) for i in watched), mask)
        for watched, mask in zip(transition_watch_lists(affected), affected)
    ]


class CompiledNet:
    """A Petri net compiled to integer-indexed tables and bitmasks."""

    __slots__ = (
        "net",
        "place_names",      # index -> place name (sorted)
        "place_bit",        # place name -> single-bit mask
        "transition_names", # index -> transition name (sorted)
        "transition_index", # transition name -> index
        "consume",          # per transition: mask of consumed places
        "produce",          # per transition: mask of produced places
        "read",             # per transition: mask of read places
        "need",             # per transition: consume | read
        "affected",         # per transition: mask over *transitions* to re-check
        "_affected_pairs",  # lazily built: per transition, ((bit, need), ...)
    )

    def __init__(self, net):
        weighted = [
            (t, p, w)
            for t in net.transitions
            for side in (net.consumed_places(t), net.produced_places(t))
            for p, w in side.items()
            if w != 1
        ]
        if weighted:
            t, p, w = weighted[0]
            raise CompilationError(
                "cannot compile net {!r}: arc between {!r} and {!r} has "
                "weight {}".format(net.name, p, t, w)
            )
        # Edges and BFS parents are packed as ``transition`` in the low 16
        # bits; 0xFFFF itself is the sharded explorer's full-scan sentinel.
        # Nets beyond that fall back to the explicit explorer, loudly.
        if len(net.transitions) >= 0xFFFF:
            raise CompilationError(
                "cannot compile net {!r}: {} transitions exceed the packed "
                "16-bit transition index".format(net.name, len(net.transitions))
            )
        self.net = net
        self.place_names = sorted(net.places)
        self.place_bit = {name: 1 << i for i, name in enumerate(self.place_names)}
        self.transition_names = sorted(net.transitions)
        self.transition_index = {name: i for i, name in enumerate(self.transition_names)}
        self.consume = []
        self.produce = []
        self.read = []
        self.need = []
        for name in self.transition_names:
            consume = self._mask(net.consumed_places(name))
            produce = self._mask(net.produced_places(name))
            read = self._mask(net.read_places(name))
            self.consume.append(consume)
            self.produce.append(produce)
            self.read.append(read)
            self.need.append(consume | read)
        # Watch lists: place index -> mask of transitions needing that place.
        watch = {}
        for index, need in enumerate(self.need):
            for place in iter_bits(need):
                watch[place] = watch.get(place, 0) | (1 << index)
        self.affected = []
        for index in range(len(self.transition_names)):
            touched = self.consume[index] | self.produce[index]
            mask = 0
            for place in iter_bits(touched):
                mask |= watch.get(place, 0)
            self.affected.append(mask)
        self._affected_pairs = None

    @classmethod
    def compile(cls, net):
        """Compile *net*; raise :class:`CompilationError` when impossible."""
        return cls(net)

    @classmethod
    def try_compile(cls, net):
        """Compile *net*, or return ``None`` when it does not fit the engine."""
        try:
            return cls(net)
        except CompilationError:
            return None

    def _mask(self, places):
        mask = 0
        for place in places:
            mask |= self.place_bit[place]
        return mask

    # -- marking conversion -------------------------------------------------

    def encode(self, marking):
        """Pack a :class:`Marking` into an ``int``; raise when it does not fit."""
        state = 0
        for place, count in marking.items():
            if count > 1:
                raise CompilationError(
                    "marking holds {} tokens in place {!r}; the compiled "
                    "engine represents 1-safe markings only".format(count, place)
                )
            bit = self.place_bit.get(place)
            if bit is None:
                raise CompilationError("unknown place in marking: {!r}".format(place))
            state |= bit
        return state

    def decode(self, state):
        """Unpack an ``int`` state back into a :class:`Marking`."""
        return Marking({self.place_names[i]: 1 for i in iter_bits(state)})

    def mask_of(self, place):
        """Single-bit mask of *place* (``0`` for unknown places)."""
        return self.place_bit.get(place, 0)

    # -- semantics ----------------------------------------------------------

    def is_enabled(self, transition_index, state):
        need = self.need[transition_index]
        return (state & need) == need

    def enabled_mask(self, state):
        """Mask over transitions enabled at *state* (full scan)."""
        return scan_enabled_mask(self.need, state)

    def fire(self, transition_index, state):
        """Fire an enabled transition; detect loss of 1-safeness."""
        remainder = state & ~self.consume[transition_index]
        produced = self.produce[transition_index]
        overflow = remainder & produced
        if overflow:
            place = self.place_names[next(iter_bits(overflow))]
            raise SafenessOverflowError(self.transition_names[transition_index], place)
        return remainder | produced

    def affected_pairs(self):
        """The :func:`expand_watch_pairs` of this net, built on first use."""
        if self._affected_pairs is None:
            self._affected_pairs = expand_watch_pairs(self.need, self.affected)
        return self._affected_pairs

    def __repr__(self):
        return "CompiledNet({!r}, places={}, transitions={})".format(
            self.net.name, len(self.place_names), len(self.transition_names)
        )


class CompiledReachabilityGraph(ReachabilityGraph):
    """Reachability graph backed by integer states.

    Exposes the full :class:`ReachabilityGraph` API -- markings are decoded
    lazily, and the dict-based successor/predecessor structures are
    materialised only when asked for -- plus mask-level fast paths
    (:meth:`scan_masks`, :meth:`persistence_scan`, :attr:`one_safe`) that the
    property checks and the Reach evaluator use to stay in integer land.
    """

    #: Compiled graphs exist only while every marking stayed 1-safe.
    one_safe = True

    #: Edges are stored packed -- ``transition | target_index << 16`` -- one
    #: small int per edge instead of a tuple.  Packing keeps multi-million
    #: -edge graphs ~3x smaller and (ints being invisible to the cyclic GC)
    #: far cheaper to hold, and it is the exact wire format of the sharded
    #: explorer, whose merge loop appends worker-produced values verbatim.
    #: (``CompiledNet`` refuses nets whose transition count overflows the
    #: 16-bit field.)

    def __init__(self, compiled, initial_state):
        super().__init__(compiled.net, compiled.decode(initial_state))
        self.compiled = compiled
        self._mask_states = []      # int states in discovery order
        self._mask_index = None     # int state -> index (built lazily)
        self._mask_edges = []       # per state: list of packed edges
        self._parents = []          # per state: parent idx << 16 | transition
                                    # (None for the initial state)
        self._frontier_indices = set()
        self._decoded = {}          # state index -> Marking (memoised)
        self._all_decoded = None    # list of all markings, discovery order
        self._materialized = False

    # -- construction (used by explore_compiled) -----------------------------

    def _add_mask_state(self, state, parent=None):
        index = len(self._mask_states)
        self._mask_states.append(state)
        if self._mask_index is None:
            self._mask_index = {}
        self._mask_index[state] = index
        self._mask_edges.append([])
        self._parents.append(parent)
        return index

    # -- decoding ------------------------------------------------------------

    def _state_index(self):
        """The ``int state -> index`` map, built on first use.

        The sequential explorer fills it as its dedup structure; the sharded
        explorer dedups inside its shard workers, so coordinator-side the map
        only exists if a caller actually asks a marking-level question.
        """
        if self._mask_index is None:
            self._mask_index = {
                state: index for index, state in enumerate(self._mask_states)
            }
        return self._mask_index

    def _marking_at(self, index):
        marking = self._decoded.get(index)
        if marking is None:
            marking = self.compiled.decode(self._mask_states[index])
            self._decoded[index] = marking
        return marking

    def _index_of(self, marking):
        """Index of a marking-level state, or ``None`` when unreachable."""
        try:
            state = self.compiled.encode(marking)
        except CompilationError:
            return None
        return self._state_index().get(state)

    def _ensure_materialized(self):
        """Populate the dict-based structures of the parent class."""
        if self._materialized:
            return
        names = self.compiled.transition_names
        for index in range(len(self._mask_states)):
            self._add_state(self._marking_at(index))
        for index, edges in enumerate(self._mask_edges):
            source = self._marking_at(index)
            for packed in edges:
                self._add_edge(source, names[packed & 0xFFFF],
                               self._marking_at(packed >> 16))
        self._frontier = {self._marking_at(i) for i in self._frontier_indices}
        self._materialized = True

    # -- ReachabilityGraph API -----------------------------------------------

    def __len__(self):
        return len(self._mask_states)

    def __contains__(self, marking):
        return self._index_of(marking) is not None

    @property
    def states(self):
        if self._all_decoded is None:
            self._all_decoded = [
                self._marking_at(i) for i in range(len(self._mask_states))
            ]
        return list(self._all_decoded)

    def successors(self, marking):
        self._ensure_materialized()
        return super().successors(marking)

    def predecessors(self, marking):
        self._ensure_materialized()
        return super().predecessors(marking)

    def enabled(self, marking):
        index = self._index_of(marking)
        if index is None:
            raise KeyError(marking)
        names = self.compiled.transition_names
        return sorted({names[packed & 0xFFFF]
                       for packed in self._mask_edges[index]})

    @property
    def frontier(self):
        return {self._marking_at(i) for i in self._frontier_indices}

    def is_expanded(self, marking):
        index = self._index_of(marking)
        return index is not None and index not in self._frontier_indices

    def deadlocks(self):
        return [
            self._marking_at(i)
            for i, edges in enumerate(self._mask_edges)
            if not edges and i not in self._frontier_indices
        ]

    def edge_count(self):
        return sum(len(edges) for edges in self._mask_edges)

    def trace_to(self, target):
        index = self._index_of(target)
        if index is None:
            raise VerificationError("marking is not reachable: {!r}".format(target))
        # The BFS discovery tree stores a shortest path from the initial
        # marking to every state; walk it backwards.
        trace = []
        names = self.compiled.transition_names
        while self._parents[index] is not None:
            packed = self._parents[index]
            trace.append(names[packed & 0xFFFF])
            index = packed >> 16
        trace.reverse()
        return trace

    # -- mask-level fast paths -----------------------------------------------

    def mask_of(self, place):
        """Single-bit mask of *place* (``0`` for unknown places)."""
        return self.compiled.mask_of(place)

    def scan_masks(self, predicate, limit=None):
        """Yield markings whose bitmask satisfies *predicate*, discovery order.

        *predicate* receives the raw ``int`` state; only matching states are
        decoded.  Stops after *limit* matches when given.
        """
        found = 0
        for index, state in enumerate(self._mask_states):
            if predicate(state):
                yield self._marking_at(index)
                found += 1
                if limit is not None and found >= limit:
                    return

    def count_and_collect(self, predicate, max_witnesses):
        """Return ``(count, markings)`` of states satisfying *predicate*.

        Counts every match but decodes at most *max_witnesses* of them.
        """
        count = 0
        witnesses = []
        for index, state in enumerate(self._mask_states):
            if predicate(state):
                count += 1
                if len(witnesses) < max_witnesses:
                    witnesses.append(self._marking_at(index))
        return count, witnesses

    def persistence_scan(self, allow_conflicts=True, max_witnesses=5):
        """Scan for persistence violations entirely on bitmasks.

        Returns ``(violations, witnesses)`` where each witness is a dict with
        ``marking``/``fired``/``disabled`` keys (no traces -- the caller adds
        them).  Frontier states are skipped: their edge lists are incomplete.
        """
        compiled = self.compiled
        consume = compiled.consume
        need = compiled.need
        names = compiled.transition_names
        states = self._mask_states
        violations = 0
        witnesses = []
        for index, edges in enumerate(self._mask_edges):
            if index in self._frontier_indices or len(edges) < 2:
                continue
            for packed in edges:
                t1 = packed & 0xFFFF
                after = states[packed >> 16]
                for other in edges:
                    t2 = other & 0xFFFF
                    if t1 == t2:
                        continue
                    if allow_conflicts and consume[t1] & consume[t2]:
                        continue
                    if (after & need[t2]) != need[t2]:
                        violations += 1
                        if len(witnesses) < max_witnesses:
                            witnesses.append({
                                "marking": self._marking_at(index),
                                "fired": names[t1],
                                "disabled": names[t2],
                            })
        return violations, witnesses


def explore_compiled(compiled, marking=None, max_states=200000):
    """Breadth-first exploration of a compiled net.

    Mirrors :func:`repro.petri.reachability.explore` exactly -- same
    discovery order, same truncation semantics (edges between known states
    are still recorded after the bound is hit; partially-expanded states form
    the frontier) -- but runs on integer states with incrementally maintained
    enabled masks.

    The loop body is deliberately flat: firing is inlined (a call per edge
    costs more than the firing itself), every table and bound method is
    hoisted into a local, and the incremental enabled-set update walks the
    pre-expanded ``affected_pairs`` watch lists instead of bit-scanning the
    affected mask per new state.
    """
    if not isinstance(compiled, CompiledNet):
        compiled = CompiledNet.compile(compiled)
    initial = marking if marking is not None else compiled.net.initial_marking()
    state = compiled.encode(initial)
    graph = CompiledReachabilityGraph(compiled, state)
    graph._add_mask_state(state)
    enabled = [compiled.enabled_mask(state)]
    consume = compiled.consume
    produce = compiled.produce
    affected_pairs = compiled.affected_pairs()
    index_get = graph._mask_index.get
    mask_index = graph._mask_index
    states = graph._mask_states
    states_append = states.append
    edges = graph._mask_edges
    edges_append = edges.append
    parents_append = graph._parents.append
    enabled_append = enabled.append
    frontier_add = graph._frontier_indices.add
    queue = deque((0,))
    queue_append = queue.append
    queue_popleft = queue.popleft
    while queue:
        current = queue_popleft()
        source = states[current]
        complete = True
        current_edges_append = edges[current].append
        current_enabled = enabled[current]
        remaining = current_enabled
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            transition = low.bit_length() - 1
            remainder = source & ~consume[transition]
            produced = produce[transition]
            overflow = remainder & produced
            if overflow:
                raise SafenessOverflowError(
                    compiled.transition_names[transition],
                    compiled.place_names[next(iter_bits(overflow))])
            successor = remainder | produced
            target = index_get(successor)
            if target is None:
                if len(states) >= max_states:
                    graph.truncated = True
                    complete = False
                    continue
                # Incremental enabled-set update: only transitions watching a
                # place touched by `transition` can change status.
                pairs, touched = affected_pairs[transition]
                mask = current_enabled & ~touched
                for bit, other_need in pairs:
                    if (successor & other_need) == other_need:
                        mask |= bit
                target = len(states)
                states_append(successor)
                mask_index[successor] = target
                edges_append([])
                parents_append(current << 16 | transition)
                enabled_append(mask)
                queue_append(target)
            current_edges_append(transition | (target << 16))
        if not complete:
            frontier_add(current)
    return graph
