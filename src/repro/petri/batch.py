"""Array-native exploration core: whole-frontier batch expansion on NumPy.

The compiled engine of :mod:`repro.petri.compiled` already reduced firing to
integer bit operations, but its loop still fires one transition of one state
per Python bytecode iteration.  This module escapes the interpreter the way
bulk engines do: the *entire BFS frontier* is expanded per step.

* Markings are rows of a ``uint64`` matrix -- nets wider than 64 places span
  multiple words (place ``i`` lives in word ``i // 64``, bit ``i % 64``).
* The per-transition ``need`` / ``consume`` / ``produce`` bitmasks of the
  compiled net are precompiled into ``(transitions, words)`` arrays.
* One level of BFS is: a broadcast compare for enabledness, a bulk
  mask-and-or firing, a lexicographic sort for intra-level dedup, and a
  ``searchsorted`` probe against the sorted table of known states.
* New states are admitted in **provenance order** (``parent << 16 |
  transition``, minimised over all discoverers) up to ``max_states`` --
  exactly the order the sequential BFS first reaches each state, which makes
  the resulting graph **bit-identical** to :func:`explore_compiled`: same
  states in the same discovery order, same packed ``t | target << 16`` edge
  lists, same parents (hence traces), same frontier and truncation.

The result is a :class:`ColumnarReachabilityGraph`: the state table, packed
edges (CSR layout), parents and frontier all stay NumPy arrays, so the
mask-level scans of :mod:`repro.petri.properties` and
:mod:`repro.reach.evaluator` become vectorised compares over the state table
instead of per-state Python loops.  Marking-level APIs decode on demand,
like the compiled graph.

NumPy is an **optional extra** (``pip install repro-dfs[fast]``): when it is
missing, :func:`numpy_available` is false, ``build_reachability_graph``
silently keeps using the pure-int engine, and this module stays importable.
The pure-int engine remains the single source of truth for semantics; this
engine must match it bit for bit (see ``tests/test_petri_batch.py``).
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    _np = None

from repro.exceptions import (
    CompilationError,
    ConfigurationError,
    SafenessOverflowError,
)
from repro.petri.compiled import (
    CompiledNet,
    CompiledReachabilityGraph,
    iter_bits,
    transition_watch_lists,
)
from repro.petri.reachability import ReachabilityGraph
from repro.utils import faults as _faults

#: Cap on the transient pair matrix of the vectorised persistence scan.
_PAIR_BLOCK = 1 << 20

_WORD_MASK = (1 << 64) - 1

#: Odd 64-bit mixing constants of the row hash (splitmix64 / murmur3
#: finalisation family).  The hash only pre-filters the exact row compare,
#: so its quality affects speed, never correctness.
_HASH_MULTIPLIERS = (
    0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9,
    0xFF51AFD7ED558CCD, 0xC4CEB9FE1A85EC53, 0xD6E8FEB86659FD93,
)


def numpy_available():
    """``True`` when the optional NumPy extra is importable.

    Setting ``REPRO_NO_NUMPY`` in the environment reports NumPy as absent
    even when it is installed, so the pure-Python fallback path can be
    exercised (by the differential tests and the no-NumPy CI job) without
    uninstalling the extra.
    """
    import os
    return _np is not None and not os.environ.get("REPRO_NO_NUMPY")


def _require_numpy():
    if not numpy_available():
        raise CompilationError(
            "the batch exploration engine requires the optional NumPy "
            "extra (pip install numpy, and REPRO_NO_NUMPY unset); the "
            "pure-int engines remain available")


def int_to_words(value, words):
    """Split an int bitmask into *words* little-endian 64-bit words."""
    return [(value >> (64 * w)) & _WORD_MASK for w in range(words)]


def words_to_int(row):
    """Inverse of :func:`int_to_words` for one row of word values."""
    state = 0
    for w, word in enumerate(row):
        state |= int(word) << (64 * w)
    return state


class WordTables:
    """Per-transition bitmask tables of a compiled net as uint64 matrices."""

    __slots__ = ("compiled", "words", "mask_width",
                 "need", "consume", "keep", "produce", "fire_tab",
                 "watch_entries")

    def __init__(self, compiled):
        _require_numpy()
        self.compiled = compiled
        self._build(compiled.need, compiled.consume, compiled.produce,
                    compiled.affected, len(compiled.place_names))

    @classmethod
    def from_raw(cls, need, consume, produce, affected, place_count):
        """Build tables from raw mask lists (no :class:`CompiledNet`).

        Used by the sharded batch workers, which carry only the picklable
        table slice of the compiled net.  ``word_bit_of`` is unavailable on
        tables built this way (``compiled`` is ``None``).
        """
        _require_numpy()
        self = cls.__new__(cls)
        self.compiled = None
        self._build(need, consume, produce, affected, place_count)
        return self

    def _build(self, need_masks, consume_masks, produce_masks, affected,
               place_count):
        self.words = max(1, (place_count + 63) // 64)
        transition_count = len(need_masks)
        #: Bytes of a packed enabled mask (the sharded wire format).
        self.mask_width = (transition_count + 7) // 8
        shape = (transition_count, self.words)
        self.need = _np.zeros(shape, dtype=_np.uint64)
        self.consume = _np.zeros(shape, dtype=_np.uint64)
        self.produce = _np.zeros(shape, dtype=_np.uint64)
        for index in range(transition_count):
            self.need[index] = int_to_words(need_masks[index], self.words)
            self.consume[index] = int_to_words(consume_masks[index],
                                               self.words)
            self.produce[index] = int_to_words(produce_masks[index],
                                               self.words)
        self.keep = ~self.consume
        # keep and produce side by side, so the firing loop pays one fancy
        # gather per edge batch instead of two.
        self.fire_tab = _np.concatenate([self.keep, self.produce], axis=1)
        # The shared watch lists of the compiled net (the same
        # transition_watch_lists the pure-int engines consume through
        # expand_watch_pairs), expanded per watched transition to its
        # nonzero need words: after firing ``t`` only ``watch_entries[t]``
        # needs re-checking, and each check touches only the ~couple of
        # words the watched transition's preset actually lives in.
        self.watch_entries = []
        for watched_list in transition_watch_lists(affected):
            entries = []
            for watched in watched_list:
                needed = tuple(
                    (w, self.need[watched, w])
                    for w in range(self.words) if int(self.need[watched, w]))
                entries.append((watched, needed))
            self.watch_entries.append(tuple(entries))

    def encode_rows(self, states):
        """Pack an iterable of int states into a ``(n, words)`` matrix."""
        rows = _np.empty((len(states), self.words), dtype=_np.uint64)
        for position, state in enumerate(states):
            rows[position] = int_to_words(state, self.words)
        return rows

    def hash_rows(self, rows):
        """A 64-bit mix of every state row; a pre-filter, not an identity.

        Single-word states are their own (collision-free) key.  Wider rows
        xor per-word products by distinct odd constants -- collisions are
        handled exactly by the callers (run scans, adjacent-row compares),
        so hash quality only affects speed.
        """
        if self.words == 1:
            return rows[:, 0]
        mixed = rows[:, 0] * _np.uint64(_HASH_MULTIPLIERS[0])
        for w in range(1, self.words):
            multiplier = _HASH_MULTIPLIERS[w % len(_HASH_MULTIPLIERS)]
            mixed = mixed ^ rows[:, w] * _np.uint64(multiplier)
        return mixed

    def enabled_matrix(self, rows):
        """Full-scan enabledness of *rows*: a ``(n, transitions)`` matrix."""
        enabled = _np.ones((len(rows), len(self.need)), dtype=bool)
        for w in range(self.words):
            need_w = self.need[:, w]
            enabled &= (rows[:, w:w + 1] & need_w) == need_w
        return enabled

    def word_bit_of(self, place):
        """``(word index, single-bit uint64)`` of *place*, or ``None``."""
        mask = self.compiled.mask_of(place)
        if not mask:
            return None
        bit = mask.bit_length() - 1
        return bit // 64, _np.uint64(1 << (bit % 64))


def _group_arange(counts):
    """``concatenate([arange(c) for c in counts])`` without the Python loop."""
    total = int(counts.sum())
    starts = _np.cumsum(counts) - counts
    return _np.arange(total, dtype=_np.int64) - _np.repeat(starts, counts)


def fire_enabled_flags(tables, rows, flat):
    """Fire every enabled (state, transition) pair; report overflows.

    The non-raising core of :func:`fire_enabled`: returns ``(source_local,
    transition, successor, overflowed)`` where *overflowed* is a bool
    vector marking the pairs whose firing would put a second token into a
    place (their *successor* rows hold the over-merged words and must not
    be used as states).  The walk swarm consumes the flags directly -- an
    overflow retires one walk, or answers the safeness query, instead of
    aborting the whole batch.
    """
    word_count = tables.words
    transition_count = len(tables.need)
    source_local = flat // transition_count
    transition = flat - source_local * transition_count
    gathered = tables.fire_tab[transition]
    remainder = rows[source_local] & gathered[:, :word_count]
    produced = gathered[:, word_count:]
    overflowed = remainder[:, 0] & produced[:, 0]
    for w in range(1, word_count):
        overflowed = overflowed | (remainder[:, w] & produced[:, w])
    return source_local, transition, remainder | produced, overflowed != 0


def overflow_place(tables, rows, source_local, transition, position):
    """The place index spilled by overflowing pair *position* (re-derived)."""
    gathered = tables.fire_tab[int(transition[position])]
    remainder = rows[int(source_local[position])] & gathered[:tables.words]
    produced = gathered[tables.words:]
    return next(iter_bits(words_to_int(remainder & produced)))


def fire_enabled(tables, rows, flat):
    """Fire every enabled (state, transition) pair of a frontier slice.

    *flat* is the flat index vector of the slice's enabled matrix (as from
    ``np.flatnonzero``).  Returns ``(source_local, transition, successor)``.
    A 1-safeness violation raises
    :class:`~repro.exceptions.SafenessOverflowError` carrying the first
    offender *in expansion order* as **integer indices** (transition index,
    place index); callers holding name tables re-raise with names.  Shared
    by :func:`explore_batch` and the sharded batch workers so the firing
    and overflow semantics cannot diverge.
    """
    source_local, transition, successor, overflowed = fire_enabled_flags(
        tables, rows, flat)
    if overflowed.any():
        position = int(_np.argmax(overflowed))
        raise SafenessOverflowError(
            int(transition[position]),
            overflow_place(tables, rows, source_local, transition, position))
    return source_local, transition, successor


def refresh_enabled(tables, enabled, rows, fired):
    """Recompute the watched entries of *enabled* after *fired* discoveries.

    *enabled* is the ``(n, transitions)`` bool matrix inherited from the
    parents of the *n* state *rows*, each discovered by firing ``fired[i]``;
    only the transitions in the firing's watch list can have changed, so
    the rows are grouped by fired transition and each watched transition is
    re-checked with one compare per nonzero need word over the group.
    Updates *enabled* in place (the vectorised analogue of the sequential
    engine's :func:`~repro.petri.compiled.expand_watch_pairs` update).
    """
    order = _np.argsort(fired, kind="stable")
    sorted_fired = fired[order]
    bounds = _np.searchsorted(
        sorted_fired, _np.arange(len(tables.need) + 1, dtype=_np.int64))
    watch_entries = tables.watch_entries
    for t in _np.unique(sorted_fired).tolist():
        members = order[bounds[t]:bounds[t + 1]]
        block = rows[members]
        for watched, needed in watch_entries[t]:
            if needed:
                ok = None
                for w, need_w in needed:
                    hit = (block[:, w] & need_w) == need_w
                    ok = hit if ok is None else ok & hit
            else:
                # A transition with an empty preset is always enabled.
                ok = _np.ones(len(members), dtype=bool)
            enabled[members, watched] = ok


def _group_sorted(successor, hashes, word_count, order, collision_order):
    """Adjacency grouping under *order*; the one copy of the collision path.

    Given an *order* that makes equal rows adjacent whenever their hashes
    are collision-free, return ``(order, head)`` where ``head`` marks the
    first occurrence of each distinct row in sorted position.  When two
    distinct multi-word rows collided in the 64-bit hash (practically
    never), *collision_order* is called for an exact re-sort on the full
    words and the grouping is redone on it.
    """
    ordered_hashes = hashes[order]
    same_hash = _np.zeros(len(order), dtype=bool)
    same_hash[1:] = ordered_hashes[1:] == ordered_hashes[:-1]
    if word_count == 1:
        # Single-word rows are their own hash: equal key *is* equal row.
        head = ~same_hash
        head[0] = True
        return order, head
    # Verify row equality only where the hashes matched: gathering two
    # rows per duplicate beats gathering the whole sorted matrix.
    duplicate_positions = _np.where(same_hash)[0]
    collided = (successor[order[duplicate_positions - 1]]
                != successor[order[duplicate_positions]]).any(axis=1)
    if collided.any():
        order = collision_order()
        ordered_rows = successor[order]
        head = _np.ones(len(order), dtype=bool)
        head[1:] = (ordered_rows[1:] != ordered_rows[:-1]).any(axis=1)
    else:
        head = ~same_hash
        head[0] = True
    return order, head


def dedup_rows(successor, hashes, provenance, word_count):
    """Group duplicate successor rows, keeping each group's min provenance.

    Returns ``(order, group_of_sorted, group_rows, group_hashes,
    group_provenance)`` where *order* sorts the inputs so that equal rows
    are adjacent, ``group_of_sorted[i]`` is the dedup-group of the sorted
    position ``i``, and the ``group_*`` arrays hold one entry per distinct
    row -- its provenance being the minimum over the group, i.e. the edge
    over which the sequential BFS first discovers that state.
    """
    order, head = _group_sorted(
        successor, hashes, word_count,
        _np.argsort(hashes),  # non-stable: reduceat takes the group min
        lambda: _np.lexsort(tuple(successor[:, w]
                                  for w in range(word_count))))
    head_positions = _np.where(head)[0]
    group_rows = successor[order[head_positions]]
    group_of_sorted = _np.cumsum(head) - 1
    group_provenance = _np.minimum.reduceat(provenance[order],
                                            head_positions)
    group_hashes = hashes[order[head_positions]]
    return order, group_of_sorted, group_rows, group_hashes, group_provenance


def dedup_rows_argmin(successor, hashes, provenance, word_count):
    """Like :func:`dedup_rows`, but each group's head *is* an occurrence.

    Returns ``(order, group_of_sorted, head_occurrences)`` where
    ``head_occurrences`` indexes the original arrays at each group's
    minimum-provenance occurrence.  The sharded batch workers use this
    where the representative's side data (the shipped parent mask) must
    pair with the representative's provenance, not just its row.
    """
    order, head = _group_sorted(
        successor, hashes, word_count,
        # Provenance as the minor key puts each group's minimum first...
        _np.lexsort((provenance, hashes)),
        # ...including under the exact-words collision re-sort.
        lambda: _np.lexsort(
            (provenance,) + tuple(successor[:, w]
                                  for w in range(word_count))))
    head_positions = _np.where(head)[0]
    group_of_sorted = _np.cumsum(head) - 1
    return order, group_of_sorted, order[head_positions]


def merge_sorted_index(keys, idx, new_keys, new_idx):
    """Merge (unsorted) new entries into a sorted ``(keys, idx)`` pair.

    One fused placement pass instead of two ``np.insert`` copies; returns
    the merged ``(keys, idx)`` arrays.
    """
    order = _np.argsort(new_keys)
    new_keys = new_keys[order]
    insert_at = _np.searchsorted(keys, new_keys)
    merged_size = len(keys) + len(new_keys)
    new_slots = insert_at + _np.arange(len(new_keys))
    old_slots = _np.ones(merged_size, dtype=bool)
    old_slots[new_slots] = False
    merged_keys = _np.empty(merged_size, dtype=keys.dtype)
    merged_idx = _np.empty(merged_size, dtype=idx.dtype)
    merged_keys[new_slots] = new_keys
    merged_idx[new_slots] = new_idx[order]
    merged_keys[old_slots] = keys
    merged_idx[old_slots] = idx
    return merged_keys, merged_idx


#: ``2**61 - 1``, the Mersenne prime CPython reduces int hashes by.
_HASH_MODULUS = (1 << 61) - 1


def _mod_hash_prime(values):
    """``values % (2**61 - 1)`` for a uint64 vector, in uint64 arithmetic."""
    prime = _np.uint64(_HASH_MODULUS)
    shift = _np.uint64(61)
    values = (values & prime) + (values >> shift)
    values = (values & prime) + (values >> shift)
    return _np.where(values == prime, _np.uint64(0), values)


def shard_rows(rows, workers):
    """Vectorised :func:`repro.parallel.sharded.shard_of` over state rows.

    Python's int hash is the value modulo ``2**61 - 1``; with little-endian
    64-bit words that is a Horner evaluation in base ``2**64 === 8`` (mod
    the prime), so the whole partition reduces to shifts and masked adds --
    exactly matching ``hash(state) % workers`` bit for bit.
    """
    word_count = rows.shape[1]
    acc = _mod_hash_prime(rows[:, word_count - 1])
    for w in range(word_count - 2, -1, -1):
        acc = _mod_hash_prime(
            _mod_hash_prime(acc << _np.uint64(3)) + _mod_hash_prime(rows[:, w]))
    return (acc % _np.uint64(workers)).astype(_np.int64)


def pack_mask_rows(enabled):
    """Pack a ``(n, transitions)`` bool matrix into little-endian mask bytes.

    Row ``i`` packs to ``ceil(transitions / 8)`` bytes equal to the
    sequential engine's ``mask.to_bytes(mask_width, "little")``.
    """
    return _np.packbits(enabled, axis=1, bitorder="little")


def unpack_mask_rows(mask_bytes, transition_count):
    """Inverse of :func:`pack_mask_rows` (*mask_bytes* is a uint8 matrix)."""
    return _np.unpackbits(
        mask_bytes, axis=1, bitorder="little")[:, :transition_count]


class ColumnarReachabilityGraph(CompiledReachabilityGraph):
    """Reachability graph stored columnar: NumPy arrays, not Python lists.

    * ``_words`` -- the ``(states, words)`` uint64 state table;
    * ``_edge_data`` / ``_edge_offsets`` -- packed ``t | target << 16`` edges
      in one flat int64 array with CSR-style per-state offsets;
    * ``_parents_arr`` -- packed ``parent << 16 | transition`` BFS parents
      (``-1`` for the initial state);
    * ``_frontier_arr`` -- sorted indices of partially-expanded states;
    * ``_sorted_keys`` / ``_sorted_idx`` -- the byte-key index used for
      O(log n) marking lookup without materialising Python ints.

    The full marking-level :class:`~repro.petri.reachability.ReachabilityGraph`
    API is preserved -- markings decode on demand, and the list-based mirrors
    (``_mask_states`` and friends) materialise lazily so differential tests
    and mixed-engine callers can still compare graphs field by field.
    """

    one_safe = True

    #: Cap (in entries) on the lazily materialised Python list mirrors.
    #: The mirrors exist for differential tests and mixed-engine callers;
    #: past the cap they would clone a multi-million-row (possibly
    #: disk-backed) columnar table into Python objects, so crossing it
    #: raises an actionable error instead.  Set to ``None`` to opt in.
    mirror_limit = 1 << 22

    def __init__(self, compiled, tables, initial_state):
        ReachabilityGraph.__init__(self, compiled.net,
                                   compiled.decode(initial_state))
        self.compiled = compiled
        self.tables = tables
        self._decoded = {}
        self._all_decoded = None
        self._materialized = False
        # Columnar storage (filled by explore_batch).
        self._words = None
        self._edge_data = None
        self._edge_offsets = None
        self._parents_arr = None
        self._frontier_arr = None
        self._hash_keys = None      # sorted row hashes of every state
        self._hash_idx = None       # state index per sorted hash
        #: The spill pool backing the arrays (``None`` for plain RAM
        #: arrays); kept alive so unlinked memmap files outlive the graph.
        self._spill_pool = None
        #: Structured per-phase counters of the exploration that built this
        #: graph (see :func:`explore_batch` / ``explore_sharded``).
        self.exploration_stats = None
        # Lazy list-based mirrors of the arrays.
        self._list_states = None
        self._list_edges = None
        self._list_parents = None
        self._frontier_set = None

    def close(self):
        """Release spill-file handles early (safe at any time).

        Spill files are unlinked at creation, so this only drops file
        descriptors -- arrays already mapped stay valid, and the disk
        space is reclaimed once they are garbage collected.
        """
        if self._spill_pool is not None:
            self._spill_pool.close()

    # -- list-based mirrors (lazy; differential tests, explicit fallbacks) ----

    def _check_mirror(self, kind, entries):
        if self.mirror_limit is not None and entries > self.mirror_limit:
            raise ConfigurationError(
                "materialising the {} list mirror would create {:,} Python "
                "objects from the columnar graph{}; use the vectorised "
                "array API (graph._words / _edge_data / matching_rows) or "
                "set graph.mirror_limit = None to opt in (current cap: "
                "{:,} entries)".format(
                    kind, entries,
                    " (disk-backed)" if self._spill_pool is not None
                    and self._spill_pool.spilled else "",
                    self.mirror_limit))

    @property
    def _mask_states(self):
        if self._list_states is None:
            self._check_mirror("state", len(self))
            ints = _np.zeros(len(self), dtype=object)
            for w in range(self.tables.words):
                ints |= self._words[:, w].astype(object) << (64 * w)
            self._list_states = ints.tolist()
        return self._list_states

    @property
    def _mask_edges(self):
        if self._list_edges is None:
            self._check_mirror("edge", int(len(self._edge_data)))
            data = self._edge_data.tolist()
            offsets = self._edge_offsets.tolist()
            self._list_edges = [data[offsets[i]:offsets[i + 1]]
                                for i in range(len(self))]
        return self._list_edges

    @property
    def _parents(self):
        if self._list_parents is None:
            self._check_mirror("parent", len(self))
            self._list_parents = [None if parent < 0 else parent
                                  for parent in self._parents_arr.tolist()]
        return self._list_parents

    @property
    def _frontier_indices(self):
        if self._frontier_set is None:
            self._frontier_set = set(self._frontier_arr.tolist())
        return self._frontier_set

    # -- decoding -------------------------------------------------------------

    def _state_int(self, index):
        return words_to_int(self._words[index])

    def _marking_at(self, index):
        marking = self._decoded.get(index)
        if marking is None:
            marking = self.compiled.decode(self._state_int(index))
            self._decoded[index] = marking
        return marking

    def _index_of(self, marking):
        try:
            state = self.compiled.encode(marking)
        except CompilationError:
            return None
        row = self.tables.encode_rows([state])
        key = self.tables.hash_rows(row)[0]
        keys = self._hash_keys
        position = int(_np.searchsorted(keys, key))
        # Hashes only pre-filter: scan the (almost always length-one) run of
        # equal hashes and compare the actual rows.
        while position < len(keys) and keys[position] == key:
            index = int(self._hash_idx[position])
            if bool((self._words[index] == row[0]).all()):
                return index
            position += 1
        return None

    # -- ReachabilityGraph API ------------------------------------------------

    def __len__(self):
        return int(self._words.shape[0])

    @property
    def states(self):
        if self._all_decoded is None:
            self._all_decoded = [self._marking_at(i) for i in range(len(self))]
        return list(self._all_decoded)

    def enabled(self, marking):
        index = self._index_of(marking)
        if index is None:
            raise KeyError(marking)
        names = self.compiled.transition_names
        low = int(self._edge_offsets[index])
        high = int(self._edge_offsets[index + 1])
        return sorted({names[int(packed) & 0xFFFF]
                       for packed in self._edge_data[low:high]})

    @property
    def frontier(self):
        return {self._marking_at(int(i)) for i in self._frontier_arr}

    def is_expanded(self, marking):
        index = self._index_of(marking)
        if index is None:
            return False
        position = int(_np.searchsorted(self._frontier_arr, index))
        return not (position < len(self._frontier_arr)
                    and int(self._frontier_arr[position]) == index)

    def deadlocks(self):
        degrees = _np.diff(self._edge_offsets)
        dead = _np.where(degrees == 0)[0]
        if len(self._frontier_arr):
            dead = dead[~_np.isin(dead, self._frontier_arr)]
        return [self._marking_at(int(i)) for i in dead]

    def edge_count(self):
        return int(len(self._edge_data))

    def trace_to(self, target):
        index = self._index_of(target)
        if index is None:
            from repro.exceptions import VerificationError
            raise VerificationError(
                "marking is not reachable: {!r}".format(target))
        trace = []
        names = self.compiled.transition_names
        parents = self._parents_arr
        while parents[index] >= 0:
            packed = int(parents[index])
            trace.append(names[packed & 0xFFFF])
            index = packed >> 16
        trace.reverse()
        return trace

    # -- vectorised fast paths ------------------------------------------------

    def word_bit_of(self, place):
        """``(word, bit)`` of *place* in the state table (``None`` unknown)."""
        return self.tables.word_bit_of(place)

    def matching_rows(self, row_predicate):
        """Indices of states whose rows satisfy a vectorised predicate.

        *row_predicate* receives the whole ``(states, words)`` uint64 table
        and returns a boolean vector; this is the bulk counterpart of
        :meth:`scan_masks` used by the Reach evaluator.
        """
        flags = row_predicate(self._words)
        return _np.where(flags)[0]

    def scan_rows(self, row_predicate, limit=None):
        """Yield markings matched by a vectorised predicate, discovery order."""
        matches = self.matching_rows(row_predicate)
        if limit is not None:
            matches = matches[:limit]
        for index in matches:
            yield self._marking_at(int(index))

    def count_and_collect_rows(self, row_predicate, max_witnesses):
        """Vectorised ``(count, markings)`` over the whole state table."""
        matches = self.matching_rows(row_predicate)
        return len(matches), [self._marking_at(int(i))
                              for i in matches[:max_witnesses]]

    def count_and_collect_required(self, required_mask, max_witnesses):
        """States containing every place of an int *required_mask*.

        The all-places-marked scan (mutual exclusion and friends) as one
        compare per word over the state table.
        """
        required = self.tables.encode_rows([required_mask])[0]

        def matches(words):
            flags = _np.ones(len(words), dtype=bool)
            for w in range(self.tables.words):
                flags &= (words[:, w] & required[w]) == required[w]
            return flags

        return self.count_and_collect_rows(matches, max_witnesses)

    def persistence_scan(self, allow_conflicts=True, max_witnesses=5):
        """The persistence scan of the compiled graph, vectorised.

        Identical contract and witness order: states in discovery order, the
        fired/disabled pair loops in edge order, frontier states skipped.
        Pair matrices are built in bounded blocks so a dense level cannot
        blow the transient memory up.
        """
        tables = self.tables
        words = self._words
        data = self._edge_data
        offsets = self._edge_offsets
        degrees = _np.diff(offsets)
        eligible = degrees >= 2
        if len(self._frontier_arr):
            eligible[self._frontier_arr] = False
        candidates = _np.where(eligible)[0]
        if not len(candidates):
            return 0, []
        violations = 0
        witnesses = []
        names = self.compiled.transition_names
        pair_counts = (degrees[candidates] * degrees[candidates]).astype(
            _np.int64)
        boundaries = _np.cumsum(pair_counts)
        start = 0
        while start < len(candidates):
            base = int(boundaries[start - 1]) if start else 0
            stop = start + 1
            while (stop < len(candidates)
                   and int(boundaries[stop]) - base <= _PAIR_BLOCK):
                stop += 1
            block = candidates[start:stop]
            degree = degrees[block]
            counts = (degree * degree).astype(_np.int64)
            state_rep = _np.repeat(block, counts)
            start_rep = _np.repeat(offsets[block], counts)
            degree_rep = _np.repeat(degree, counts)
            pair = _group_arange(counts)
            first = pair // degree_rep
            second = pair % degree_rep
            edge_one = data[start_rep + first]
            edge_two = data[start_rep + second]
            fired = (edge_one & 0xFFFF).astype(_np.int64)
            other = (edge_two & 0xFFFF).astype(_np.int64)
            keep = fired != other
            if allow_conflicts:
                conflict = _np.zeros(len(keep), dtype=bool)
                for w in range(tables.words):
                    conflict |= (tables.consume[fired, w]
                                 & tables.consume[other, w]) != 0
                keep &= ~conflict
            after = (edge_one >> 16)[keep]
            other_kept = other[keep]
            disabled = _np.zeros(len(other_kept), dtype=bool)
            for w in range(tables.words):
                need_w = tables.need[other_kept, w]
                disabled |= (words[after, w] & need_w) != need_w
            violations += int(disabled.sum())
            if len(witnesses) < max_witnesses:
                hits = _np.where(disabled)[0]
                kept_positions = _np.where(keep)[0]
                for hit in hits[:max_witnesses - len(witnesses)]:
                    position = int(kept_positions[hit])
                    witnesses.append({
                        "marking": self._marking_at(int(state_rep[position])),
                        "fired": names[int(fired[position])],
                        "disabled": names[int(other[position])],
                    })
            start = stop
        return violations, witnesses


def compile_row_predicate(expression, word_bit_of):
    """Compile a Reach AST into a vectorised predicate over state tables.

    The columnar counterpart of
    :func:`repro.reach.evaluator.compile_mask_predicate`: the returned
    callable receives the whole ``(states, words)`` uint64 table and
    returns a boolean vector.  *word_bit_of* maps a place name to its
    ``(word, single-bit)`` pair or ``None`` for unknown places (which hold
    zero tokens, matching marking semantics on 1-safe states).  Returns
    ``None`` for AST node kinds this compiler does not know, in which case
    callers fall back to the mask- or marking-level evaluators.
    """
    from repro.reach import ast as _ast

    if isinstance(expression, _ast.Constant):
        value = bool(expression.value)
        return lambda words: _np.full(len(words), value, dtype=bool)
    if isinstance(expression, _ast.Marked):
        position = word_bit_of(expression.place)
        if position is None:
            return lambda words: _np.zeros(len(words), dtype=bool)
        word, bit = position
        return lambda words: (words[:, word] & bit) != 0
    if isinstance(expression, _ast.Compare):
        position = word_bit_of(expression.place)
        operator = _ast.Compare._OPERATORS[expression.operator]
        value = expression.value
        if position is None:
            outcome = bool(operator(0, value))
            return lambda words: _np.full(len(words), outcome, dtype=bool)
        word, bit = position
        def compare(words):
            tokens = ((words[:, word] & bit) != 0).astype(_np.int64)
            return operator(tokens, value)
        return compare
    if isinstance(expression, _ast.Not):
        operand = compile_row_predicate(expression.operand, word_bit_of)
        if operand is None:
            return None
        return lambda words: ~operand(words)
    if isinstance(expression, (_ast.And, _ast.Or, _ast.Implies)):
        left = compile_row_predicate(expression.left, word_bit_of)
        right = compile_row_predicate(expression.right, word_bit_of)
        if left is None or right is None:
            return None
        if isinstance(expression, _ast.And):
            return lambda words: left(words) & right(words)
        if isinstance(expression, _ast.Or):
            return lambda words: left(words) | right(words)
        return lambda words: ~left(words) | right(words)
    return None


def _probe_rows(hash_keys, hash_idx, words_buffer, rows, hashes, word_count):
    """Resolve candidate *rows* against the sorted hash index.

    Returns an int64 vector of global state indices (``-1`` for unknown
    rows).  The hash is only a pre-filter: every hit is verified by an exact
    row compare, and runs of colliding hashes are scanned to the end, so the
    result is exact whatever the hash quality.
    """
    targets = _np.full(len(rows), -1, dtype=_np.int64)
    table_size = len(hash_keys)
    position = _np.searchsorted(hash_keys, hashes)
    open_rows = _np.arange(len(rows), dtype=_np.int64)
    while len(open_rows):
        in_range = position < table_size
        open_rows = open_rows[in_range]
        if not len(open_rows):
            break
        position = position[in_range]
        candidate = hash_keys[position] == hashes[open_rows]
        open_rows = open_rows[candidate]
        if not len(open_rows):
            break
        position = position[candidate]
        indices = hash_idx[position]
        matches = _np.ones(len(open_rows), dtype=bool)
        for w in range(word_count):
            matches &= words_buffer[indices, w] == rows[open_rows, w]
        targets[open_rows[matches]] = indices[matches]
        # A hash hit with a different row is a collision: step down the run.
        open_rows = open_rows[~matches]
        position = position[~matches] + 1
    return targets


def checkpoint_identity(compiled, initial_state, max_states):
    """The identity digest a checkpoint must match to be resumable.

    Shared by the batch engine and the sharded coordinator (their on-disk
    layouts are bit-identical at every level boundary, so either's
    checkpoint resumes under the batch engine).
    """
    from repro.utils.diskcache import digest

    return digest({
        "places": list(compiled.place_names),
        "transitions": list(compiled.transition_names),
        "initial": str(initial_state),
        "max_states": int(max_states),
    })


#: ``(dtype string, columns)`` of every checkpointed store; the manifest
#: and :meth:`Checkpoint.resume` agree on this layout.
def _checkpoint_specs(word_count):
    return {
        "words": ("<u8", word_count),
        "parents": ("<i8", 0),
        "edges": ("<i8", 0),
        "counts": ("<i8", 0),
        "frontier": ("<i8", 0),
    }


def explore_batch(compiled, marking=None, max_states=200000, spill=None,
                  checkpoint=None):
    """Whole-frontier breadth-first exploration on NumPy arrays.

    Returns a :class:`ColumnarReachabilityGraph` bit-identical to
    ``explore_compiled(compiled, marking, max_states)`` -- same discovery
    order, packed edges, parents, frontier and truncation -- built one BFS
    level per step instead of one transition per step.  The enabled matrix
    of a level is propagated incrementally from the parents (only the
    watch-listed transitions of the discovering firing are recomputed, the
    vectorised analogue of the sequential engine's incremental masks).

    Every array is built in a :class:`~repro.petri.storage.ArrayStore`:
    in RAM they grow geometrically (an uninitialised buffer plus a copy of
    the used rows, never a ``np.concatenate`` of zeroed capacity); once
    the *spill* budget (a :class:`~repro.petri.storage.SpillConfig`, or
    ``None`` to consult ``REPRO_SPILL_DIR`` / ``REPRO_SPILL_BYTES``) is
    exceeded, they move onto unlinked ``np.memmap`` files and the RAM
    working set stays frontier-sized.  Raises
    :class:`~repro.exceptions.CompilationError` when NumPy is
    unavailable, so ``engine="auto"`` callers fall through to the pure-int
    engines.

    With *checkpoint* set to a directory the stores live at named paths
    under it and a per-level manifest
    (:class:`~repro.petri.storage.Checkpoint`) is atomically replaced
    after every completed BFS level.  A later call pointing at the same
    directory resumes from the last complete level (verifying the stores'
    chained CRCs first; any damage degrades to a fresh run), and the
    resumed graph is bit-identical to an uninterrupted one.  A run that
    finishes removes the directory's manifest and store files.
    """
    _require_numpy()
    import os

    from repro.petri.storage import (
        ArrayStore,
        Checkpoint,
        SortedIndexStore,
        SpillConfig,
        SpillPool,
    )
    if not isinstance(compiled, CompiledNet):
        compiled = CompiledNet.compile(compiled)
    tables = WordTables(compiled)
    initial = marking if marking is not None else compiled.net.initial_marking()
    initial_state = compiled.encode(initial)
    graph = ColumnarReachabilityGraph(compiled, tables, initial_state)

    word_count = tables.words
    transition_names = compiled.transition_names
    place_names = compiled.place_names

    from time import perf_counter

    #: Per-phase second counters, printed when REPRO_BATCH_TIMING is set:
    #: fire (enabled scan + firing), dedup (sort + grouping), probe (global
    #: lookup), admit (admission + incremental masks + index merge), edges.
    timing = {"fire": 0.0, "dedup": 0.0, "probe": 0.0, "admit": 0.0,
              "edges": 0.0}

    if spill is None:
        spill = SpillConfig.resolve()
    pool = SpillPool(spill, label="batch",
                     named_dir=checkpoint if checkpoint else None)
    level = tables.encode_rows([initial_state])
    level_enabled = tables.enabled_matrix(level)
    total = 1
    truncated = False
    levels = 0
    checkpointer = None
    resumed_from = None
    identity = None
    restored = None
    if checkpoint:
        identity = checkpoint_identity(compiled, initial_state, max_states)
        manifest = Checkpoint.load(checkpoint)
        if manifest is not None:
            try:
                checkpointer, restored = Checkpoint.resume(
                    checkpoint, pool, _checkpoint_specs(word_count),
                    identity, manifest)
            except ConfigurationError:
                # Damaged or foreign checkpoint: degrade to a fresh run
                # (the diskcache rule -- corrupt entries are misses).
                checkpointer, restored = None, None
                from repro.petri.storage import MANIFEST_NAME
                try:
                    os.remove(os.path.join(checkpoint, MANIFEST_NAME))
                except OSError:
                    pass

    if restored is not None:
        words = restored["words"]
        parents = restored["parents"]
        edges = restored["edges"]
        counts = restored["counts"]
        frontier = restored["frontier"]
        progress = manifest["progress"]
        total = int(progress["total"])
        truncated = bool(progress["truncated"])
        levels = int(progress["levels"])
        level_start = int(progress["level_start"])
        resumed_from = levels
        # The level about to expand is the tail of the state table; its
        # enabled matrix and the sorted hash index are derived state,
        # recomputed rather than checkpointed.
        level = _np.ascontiguousarray(words.data[level_start:total])
        level_enabled = tables.enabled_matrix(level)
        index = SortedIndexStore(pool, "hash", _np.uint64, _np.int64)
        index.merge(tables.hash_rows(words.data),
                    _np.arange(total, dtype=_np.int64))
    else:
        # The graph's columnar arrays, behind the spill pool.  The state
        # table doubles as the exact-match side of the hash probe.
        words = ArrayStore(pool, "words", _np.uint64, columns=word_count)
        parents = ArrayStore(pool, "parents", _np.int64)
        edges = ArrayStore(pool, "edges", _np.int64)
        counts = ArrayStore(pool, "counts", _np.int64)
        frontier = ArrayStore(pool, "frontier", _np.int64)
        index = SortedIndexStore(pool, "hash", _np.uint64, _np.int64)

    try:
        if restored is None:
            words.append(level)
            parents.append(_np.full(1, -1, dtype=_np.int64))
            index.merge(tables.hash_rows(level),
                        _np.zeros(1, dtype=_np.int64))
            if checkpoint:
                checkpointer = Checkpoint(
                    checkpoint,
                    {"words": words, "parents": parents, "edges": edges,
                     "counts": counts, "frontier": frontier},
                    identity)

        while len(level):
            levels += 1
            level_start = total - len(level)
            phase_started = perf_counter()
            flat = _np.flatnonzero(level_enabled)
            if not len(flat):
                break
            try:
                source_local, transition, successor = fire_enabled(
                    tables, level, flat)
            except SafenessOverflowError as overflow:
                # Report the first offender in expansion order, exactly as
                # the sequential engine would have -- by name at this level.
                raise SafenessOverflowError(
                    transition_names[overflow.transition],
                    place_names[overflow.place]) from None
            source = source_local + level_start
            hashes = tables.hash_rows(successor)
            provenance = (source << 16) | transition
            timing["fire"] += perf_counter() - phase_started
            phase_started = perf_counter()

            # Intra-level dedup of *all* successors first, so the (more
            # expensive) probe against the global state table only runs once
            # per distinct successor.  A sort on the row hashes makes equal
            # rows adjacent; each group's provenance is the minimum over its
            # members -- the edge over which the sequential BFS first
            # discovers that state.
            (order, group_of_sorted, group_rows, group_hashes,
             group_provenance) = dedup_rows(successor, hashes, provenance,
                                            word_count)
            timing["dedup"] += perf_counter() - phase_started
            phase_started = perf_counter()

            # Resolve the distinct successors against the globally known
            # states (exact, hash-accelerated), then admit the unknown ones
            # in provenance order up to the state budget.
            group_target = _probe_rows(index.keys, index.idx, words.data,
                                       group_rows, group_hashes, word_count)
            pool.note_read(len(group_rows) * word_count * 8)
            fresh_groups = _np.where(group_target < 0)[0]
            timing["probe"] += perf_counter() - phase_started
            phase_started = perf_counter()
            admitted_rows = None
            admitted_enabled = None
            if len(fresh_groups):
                admission = _np.argsort(group_provenance[fresh_groups])
                capacity = max(0, max_states - total)
                admitted = fresh_groups[admission[:capacity]]
                if len(admitted) < len(fresh_groups):
                    truncated = True
                group_target[admitted] = total + _np.arange(len(admitted))
                admitted_provenance = group_provenance[admitted]
                admitted_rows = group_rows[admitted]
                parents.append(admitted_provenance)
                words.append(admitted_rows)
                # Incremental enabledness: inherit the parent's enabled row,
                # recompute only the transitions watching a place the
                # discovering firing touched.
                if len(admitted):
                    parent_local = (admitted_provenance >> 16) - level_start
                    admitted_enabled = level_enabled[parent_local]
                    fired = admitted_provenance & 0xFFFF
                    refresh_enabled(tables, admitted_enabled, admitted_rows,
                                    fired)
                total += len(admitted)
                # Merge the admitted hashes into the sorted hash index (one
                # fused placement pass into the index's spare buffer).
                if len(admitted):
                    index.merge(group_hashes[admitted],
                                group_target[admitted])

            timing["admit"] += perf_counter() - phase_started
            phase_started = perf_counter()
            # Resolve every edge through its dedup group.
            targets = _np.empty(len(order), dtype=_np.int64)
            targets[order] = group_target[group_of_sorted]
            if (group_target >= 0).all():
                # Nothing was rejected: every edge survives (common case).
                edges.append(transition | (targets << 16))
                counts.append(_np.bincount(source_local,
                                           minlength=len(level)))
            else:
                kept = targets >= 0
                edges.append(transition[kept] | (targets[kept] << 16))
                counts.append(_np.bincount(source_local[kept],
                                           minlength=len(level)))
                frontier.append(_np.unique(source[~kept]))
            timing["edges"] += perf_counter() - phase_started
            # Stream the completed level out of memory: spilled stores drop
            # their resident pages, so RSS tracks the frontier, not the graph.
            pool.drop_resident()
            # Fault point of the crash-recovery tier: firing here leaves the
            # level's rows appended but unmanifested, exactly the torn state
            # a mid-level SIGKILL produces.
            if _faults.trigger("kill_worker", "level"):
                import signal
                os.kill(os.getpid(), signal.SIGKILL)
            next_rows = len(admitted_rows) if admitted_rows is not None else 0
            if checkpointer is not None:
                checkpointer.record_level({
                    "levels": levels,
                    "total": total,
                    "truncated": truncated,
                    "level_start": total - next_rows,
                })
            if next_rows:
                level = admitted_rows
                level_enabled = admitted_enabled
            else:
                level = _np.empty((0, word_count), dtype=_np.uint64)

        import os
        if os.environ.get("REPRO_BATCH_TIMING"):
            import sys
            print("batch explorer: fire {fire:.2f}s dedup {dedup:.2f}s "
                  "probe {probe:.2f}s admit {admit:.2f}s edges {edges:.2f}s"
                  .format(**timing), file=sys.stderr)
        graph._words = words.trim()
        graph._parents_arr = parents.trim()
        graph._edge_data = edges.trim()
        # States admitted on the last level expand to nothing enabled;
        # their (empty) count rows are still owed to the CSR offsets.
        counted = len(counts)
        offsets = ArrayStore(pool, "offsets", _np.int64)
        offsets.set_length(total + 1)
        offsets_view = offsets.data
        offsets_view[0] = 0
        if counted:
            _np.cumsum(counts.data, out=offsets_view[1:counted + 1])
        if counted < total:
            offsets_view[counted + 1:] = offsets_view[counted]
        counts.release()
        graph._edge_offsets = offsets.trim()
        graph._frontier_arr = frontier.trim()
        graph._hash_keys, graph._hash_idx = index.finalize()
        if checkpointer is not None:
            # The run completed: nothing is left to resume from.  The live
            # memmap views survive the unlink (the kernel keeps the inodes
            # until the handles close), so the graph stays fully usable.
            checkpointer.discard()
            pool.discard_checkpoint_files()
    except BaseException:
        # Exploration died mid-flight: release every store (and spill-file
        # handle) now instead of waiting for garbage collection.  Named
        # checkpoint files are deliberately left behind -- they are the
        # resumable state.
        pool.close()
        raise
    graph.truncated = truncated
    graph._spill_pool = pool
    graph.exploration_stats = {
        "engine": "batch",
        "levels": levels,
        "states": total,
        "edges": int(len(graph._edge_data)),
        "phases": dict(timing),
        "spill": pool.stats(),
        "checkpoint": {"directory": str(checkpoint) if checkpoint else None,
                       "resumed_from_level": resumed_from},
    }
    return graph
