"""Standard behavioural properties checked on the reachability graph.

The paper verifies DFS models for "standard properties (such as deadlock) and
custom functional properties (such as hazards)".  This module provides the
standard ones:

* **deadlock freedom** -- no reachable marking without enabled transitions;
* **persistence** -- no transition is disabled by the firing of another,
  unless the two are in structural conflict (share a consumed place), which
  models an intended choice; a violation corresponds to a hazard;
* **boundedness / safeness** -- no place ever exceeds a given bound;
* **mutual exclusion** -- two places are never marked together (used e.g. for
  the ``Mt``/``Mf`` places of a control register).
"""


class PropertyReport:
    """Outcome of a property check.

    Attributes
    ----------
    name:
        Name of the checked property.
    holds:
        ``True`` / ``False``, or ``None`` when the check was inconclusive
        (truncated state space).
    witnesses:
        A list of counterexample descriptors.  Each witness is a dictionary
        with at least a ``marking`` key and, when available, a ``trace`` key
        holding a firing sequence from the initial marking.
    details:
        Free-form human-readable summary.
    """

    def __init__(self, name, holds, witnesses=None, details=""):
        self.name = name
        self.holds = holds
        self.witnesses = witnesses or []
        self.details = details

    def __bool__(self):
        return bool(self.holds)

    def __repr__(self):
        status = {True: "holds", False: "violated", None: "inconclusive"}[self.holds]
        return "PropertyReport({!r}, {}, witnesses={})".format(
            self.name, status, len(self.witnesses)
        )


def _inconclusive(name, graph):
    return PropertyReport(
        name,
        None,
        details="state space truncated after {} states; result inconclusive".format(
            len(graph)
        ),
    )


def check_deadlock(graph, max_witnesses=5, with_traces=True):
    """Check deadlock freedom on a reachability graph."""
    name = "deadlock-freedom"
    # Frontier states of a truncated graph are excluded by deadlocks(), so
    # every candidate genuinely has no enabled transition.
    deadlocks = graph.deadlocks()
    if not deadlocks:
        if graph.truncated:
            return _inconclusive(name, graph)
        return PropertyReport(name, True, details="no reachable deadlock")
    witnesses = []
    for marking in deadlocks[:max_witnesses]:
        witness = {"marking": marking}
        if with_traces:
            witness["trace"] = graph.trace_to(marking)
        witnesses.append(witness)
    return PropertyReport(
        name,
        False,
        witnesses=witnesses,
        details="{} reachable deadlock state(s)".format(len(deadlocks)),
    )


def check_persistence(graph, allow_conflicts=True, max_witnesses=5, with_traces=True):
    """Check persistence (absence of hazards).

    A violation is a reachable marking where transitions ``t1`` and ``t2``
    are both enabled, yet after firing ``t1`` the transition ``t2`` is no
    longer enabled.  When *allow_conflicts* is true (the default), pairs that
    share a consumed place are skipped: such pairs model an intended
    non-deterministic choice (e.g. the True/False outcome of a control
    register) rather than a hazard.
    """
    name = "persistence"
    scan = getattr(graph, "persistence_scan", None)
    if scan is not None:
        violations, witnesses = scan(
            allow_conflicts=allow_conflicts, max_witnesses=max_witnesses
        )
        if with_traces:
            for witness in witnesses:
                witness["trace"] = graph.trace_to(witness["marking"])
    else:
        net = graph.net
        witnesses = []
        violations = 0
        for marking in graph.states:
            if not graph.is_expanded(marking):
                # A frontier state's successor dict is incomplete; scanning it
                # would produce spurious or missing violations.
                continue
            successors = dict(graph.successors(marking))
            enabled = sorted(successors)
            for t1 in enabled:
                after = successors[t1]
                for t2 in enabled:
                    if t1 == t2:
                        continue
                    if allow_conflicts:
                        shared = set(net.consumed_places(t1)) & set(net.consumed_places(t2))
                        if shared:
                            continue
                    if not net.is_enabled(t2, after):
                        violations += 1
                        if len(witnesses) < max_witnesses:
                            witness = {
                                "marking": marking,
                                "fired": t1,
                                "disabled": t2,
                            }
                            if with_traces:
                                witness["trace"] = graph.trace_to(marking)
                            witnesses.append(witness)
    if violations:
        return PropertyReport(
            name,
            False,
            witnesses=witnesses,
            details="{} persistence violation(s)".format(violations),
        )
    if graph.truncated:
        return _inconclusive(name, graph)
    return PropertyReport(name, True, details="all transitions persistent")


def check_boundedness(graph, bound=1, max_witnesses=5):
    """Check that no reachable marking puts more than *bound* tokens in a place."""
    name = "{}-boundedness".format(bound)
    if bound >= 1 and getattr(graph, "one_safe", False):
        # A compiled graph only exists while every marking stayed 1-safe, so
        # any bound of one or more holds by construction.
        if graph.truncated:
            return _inconclusive(name, graph)
        return PropertyReport(name, True, details="net is {}-bounded".format(bound))
    witnesses = []
    violations = 0
    for marking in graph.states:
        offending = {p: c for p, c in marking.items() if c > bound}
        if offending:
            violations += 1
            if len(witnesses) < max_witnesses:
                witnesses.append({"marking": marking, "places": offending})
    if violations:
        return PropertyReport(
            name,
            False,
            witnesses=witnesses,
            details="{} marking(s) exceed bound {}".format(violations, bound),
        )
    if graph.truncated:
        return _inconclusive(name, graph)
    return PropertyReport(name, True, details="net is {}-bounded".format(bound))


def check_mutual_exclusion(graph, place_a, place_b, max_witnesses=5, with_traces=True):
    """Check that *place_a* and *place_b* are never marked simultaneously."""
    name = "mutex({}, {})".format(place_a, place_b)
    witnesses = []
    violations = 0
    if getattr(graph, "mask_of", None) is not None:
        both = graph.mask_of(place_a) | graph.mask_of(place_b)
        # An unknown place has mask 0, which can never satisfy the test --
        # matching the explicit path, where marking[unknown] is 0.
        if graph.mask_of(place_a) and graph.mask_of(place_b):
            collect_required = getattr(graph, "count_and_collect_required",
                                       None)
            if collect_required is not None:
                # Columnar graph: one compare per word over the state table.
                violations, markings = collect_required(both, max_witnesses)
            else:
                violations, markings = graph.count_and_collect(
                    lambda state: (state & both) == both, max_witnesses
                )
            for marking in markings:
                witness = {"marking": marking}
                if with_traces:
                    witness["trace"] = graph.trace_to(marking)
                witnesses.append(witness)
    else:
        for marking in graph.states:
            if marking[place_a] > 0 and marking[place_b] > 0:
                violations += 1
                if len(witnesses) < max_witnesses:
                    witness = {"marking": marking}
                    if with_traces:
                        witness["trace"] = graph.trace_to(marking)
                    witnesses.append(witness)
    if violations:
        return PropertyReport(
            name,
            False,
            witnesses=witnesses,
            details="{} marking(s) violate mutual exclusion".format(violations),
        )
    if graph.truncated:
        return _inconclusive(name, graph)
    return PropertyReport(name, True, details="places are mutually exclusive")
