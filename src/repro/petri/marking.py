"""Immutable markings of Petri nets.

A marking maps place names to non-negative token counts.  Markings are
hashable so that they can be used directly as states of a reachability graph.
Places holding zero tokens are not stored, which keeps markings compact and
makes equality independent of which places happen to be mentioned.
"""


class Marking:
    """An immutable multiset of tokens over place names."""

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens=None):
        items = {}
        if tokens:
            for place, count in dict(tokens).items():
                count = int(count)
                if count < 0:
                    raise ValueError(
                        "negative token count for place {!r}: {}".format(place, count)
                    )
                if count > 0:
                    items[place] = count
        self._tokens = items
        self._hash = hash(frozenset(items.items()))

    # -- mapping protocol -------------------------------------------------

    def __getitem__(self, place):
        return self._tokens.get(place, 0)

    def get(self, place, default=0):
        return self._tokens.get(place, default)

    def __contains__(self, place):
        return self._tokens.get(place, 0) > 0

    def __iter__(self):
        return iter(self._tokens)

    def __len__(self):
        return len(self._tokens)

    def items(self):
        return self._tokens.items()

    def total(self):
        """Total number of tokens in the marking."""
        return sum(self._tokens.values())

    def marked_places(self):
        """Return the set of places holding at least one token."""
        return set(self._tokens)

    # -- comparison / hashing ---------------------------------------------

    def __eq__(self, other):
        if isinstance(other, Marking):
            return self._tokens == other._tokens
        if isinstance(other, dict):
            return self == Marking(other)
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        return self._hash

    def covers(self, other):
        """Return ``True`` when every place has at least as many tokens as in *other*."""
        other = other if isinstance(other, Marking) else Marking(other)
        return all(self[place] >= count for place, count in other.items())

    # -- functional updates -------------------------------------------------

    def add(self, place, count=1):
        """Return a new marking with *count* extra tokens in *place*."""
        tokens = dict(self._tokens)
        tokens[place] = tokens.get(place, 0) + count
        return Marking(tokens)

    def remove(self, place, count=1):
        """Return a new marking with *count* tokens removed from *place*."""
        available = self._tokens.get(place, 0)
        if available < count:
            raise ValueError(
                "cannot remove {} token(s) from place {!r} holding {}".format(
                    count, place, available
                )
            )
        tokens = dict(self._tokens)
        tokens[place] = available - count
        return Marking(tokens)

    def fire(self, consumed, produced):
        """Return the marking after consuming and producing the given multisets."""
        tokens = dict(self._tokens)
        for place, count in consumed.items():
            available = tokens.get(place, 0)
            if available < count:
                raise ValueError(
                    "cannot consume {} token(s) from place {!r} holding {}".format(
                        count, place, available
                    )
                )
            tokens[place] = available - count
        for place, count in produced.items():
            tokens[place] = tokens.get(place, 0) + count
        return Marking(tokens)

    def restricted_to(self, places):
        """Return a marking containing only the given places."""
        places = set(places)
        return Marking({p: c for p, c in self._tokens.items() if p in places})

    def as_dict(self):
        """Return a plain dictionary copy (places with zero tokens omitted)."""
        return dict(self._tokens)

    def __repr__(self):
        inside = ", ".join(
            "{}:{}".format(place, count) if count != 1 else place
            for place, count in sorted(self._tokens.items())
        )
        return "Marking({{{}}})".format(inside)
