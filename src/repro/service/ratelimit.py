"""Token-bucket rate limiting for the verification service.

A classic token bucket: capacity *burst* tokens, refilled continuously at
*rate* tokens per second.  Each admitted request spends one token; when the
bucket is empty the limiter answers with the number of seconds until enough
tokens will have accrued -- which the HTTP layer surfaces verbatim as a
``Retry-After`` header on a 429 response, so well-behaved clients back off
by exactly the right amount.

The clock is injectable so tests can drive time deterministically.
"""

import threading
import time


class TokenBucket:
    """A thread-safe token bucket: *burst* capacity, *rate* tokens/second."""

    def __init__(self, rate, burst, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError(
                "a token bucket needs positive rate and burst (got rate={}, "
                "burst={})".format(rate, burst))
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self):
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, tokens=1.0):
        """Spend *tokens* if available; return the seconds to wait otherwise.

        ``0.0`` means the request was admitted.  A positive return value is
        the time until the bucket will hold *tokens* again (the request was
        **not** admitted and nothing was spent).
        """
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def available(self):
        """The current token count (after refill); for stats only."""
        with self._lock:
            self._refill()
            return self._tokens

    def __repr__(self):
        return "TokenBucket(rate={}, burst={}, available={:.2f})".format(
            self.rate, self.burst, self.available)
