"""Service policy: admission control and tenancy over the scheduling core.

:class:`VerificationService` is the transport-agnostic heart of the daemon:
it owns a single-flight :class:`~repro.campaign.scheduler.CampaignScheduler`
and adds the two admission-control policies a shared service needs --

* **backpressure**: submissions are rejected with :class:`ServiceBusy`
  (HTTP 429 + ``Retry-After``) once the pool's queue depth reaches
  *max_depth*, so a burst of cold work degrades into polite retries
  instead of an unbounded queue.  Warm cache hits and coalesced duplicates
  consume no worker slot and are always admitted.
* **per-tenant rate limits**: one :class:`~repro.service.ratelimit.TokenBucket`
  per tenant (created lazily), so a single noisy tenant exhausts its own
  budget, not the service.

The HTTP layer (:mod:`repro.service.http`) only translates between this
object and the wire; tests drive the policy directly.
"""

import threading

from repro.campaign.jobs import VerificationJob
from repro.campaign.scheduler import CampaignScheduler
from repro.exceptions import ReproError
from repro.service.ratelimit import TokenBucket

#: Default bound on in-flight pool work before submissions get 429s.
DEFAULT_MAX_DEPTH = 64


class ServiceBusy(ReproError):
    """The service queue is full; retry after *retry_after* seconds."""

    def __init__(self, message, retry_after=1.0):
        super().__init__(message)
        self.retry_after = retry_after


class RateLimited(ServiceBusy):
    """The tenant exceeded its request budget; retry after *retry_after*."""


class VerificationService:
    """Admission-controlled verification scheduling for many tenants."""

    def __init__(self, parallelism=2, timeout=None, cache_dir=None,
                 max_depth=DEFAULT_MAX_DEPTH, rate=None, burst=None,
                 state_dir=None):
        self.scheduler = CampaignScheduler(
            parallelism=max(1, int(parallelism)), timeout=timeout,
            cache_dir=cache_dir, single_flight=True, state_dir=state_dir)
        self.max_depth = int(max_depth)
        self.rate = rate
        self.burst = burst if burst is not None else (
            max(1.0, float(rate)) if rate is not None else None)
        self._buckets = {}
        self._lock = threading.Lock()
        self._rejected = {"busy": 0, "rate": 0}

    # -- admission -----------------------------------------------------------

    def _bucket_for(self, tenant):
        if self.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
                self._buckets[tenant] = bucket
            return bucket

    def submit(self, payload, tenant=None, priority=0):
        """Admit and schedule a job description; return its ticket.

        *payload* is a :class:`~repro.campaign.jobs.VerificationJob` or its
        :meth:`~repro.campaign.jobs.VerificationJob.to_dict` wire form.
        Raises :class:`RateLimited` / :class:`ServiceBusy` on rejection and
        :class:`~repro.exceptions.ConfigurationError` on a malformed job.
        """
        bucket = self._bucket_for(tenant)
        if bucket is not None:
            wait = bucket.try_acquire()
            if wait > 0:
                with self._lock:
                    self._rejected["rate"] += 1
                raise RateLimited(
                    "tenant {!r} exceeded its rate budget of {:g} "
                    "submissions/s".format(tenant, self.rate),
                    retry_after=wait)
        depth = self.scheduler.depth
        if depth >= self.max_depth:
            with self._lock:
                self._rejected["busy"] += 1
            raise ServiceBusy(
                "service queue is full ({} in-flight jobs, bound {})".format(
                    depth, self.max_depth),
                retry_after=1.0)
        if isinstance(payload, VerificationJob):
            job = payload
        else:
            job = VerificationJob.from_dict(payload)
        return self.scheduler.submit(job, tenant=tenant, priority=priority)

    # -- introspection -------------------------------------------------------

    def ticket(self, ticket_id):
        """The :class:`~repro.campaign.scheduler.JobTicket`, or ``None``."""
        return self.scheduler.get(ticket_id)

    def healthz(self):
        """A liveness snapshot for load balancers.

        ``solver`` reports the SMT solver fingerprint (the z3 version
        line), or ``null`` when no solver is installed -- operators can see
        at a glance whether this daemon can serve solver-backed checkers.
        """
        from repro.smt.solver import solver_fingerprint
        return {
            "status": "ok",
            "depth": self.scheduler.depth,
            "max_depth": self.max_depth,
            "parallelism": self.scheduler.parallelism,
            "solver": solver_fingerprint(),
        }

    def stats(self):
        """Scheduler counters plus admission-control counters."""
        from repro.smt.solver import solver_fingerprint, solver_respawns
        stats = self.scheduler.stats()
        with self._lock:
            stats["rejected"] = dict(self._rejected)
            stats["tenants"] = len(self._buckets)
        stats["max_depth"] = self.max_depth
        stats["solver"] = solver_fingerprint()
        stats["solver_respawns"] = solver_respawns()
        if self.rate is not None:
            stats["rate"] = self.rate
            stats["burst"] = self.burst
        return stats

    def close(self, cancel_pending=True):
        """Shut the scheduler (and its worker pool) down."""
        self.scheduler.shutdown(wait=True, cancel_pending=cancel_pending)
