"""Verification-as-a-service: the long-running front of the library.

The ROADMAP's north star is serving verification at production scale, and
this package is that serving stack -- built entirely on the standard
library so the daemon deploys anywhere the library does:

* :mod:`~repro.service.core` -- :class:`VerificationService`, the
  transport-agnostic policy layer: admission control (queue-depth
  backpressure, per-tenant token-bucket rate limits) over a single-flight
  :class:`~repro.campaign.scheduler.CampaignScheduler`, so N concurrent
  submissions of one net + property grid execute once and warm keys are
  answered synchronously from the per-tenant verdict cache.
* :mod:`~repro.service.http` -- :class:`ServiceDaemon`, the asyncio
  HTTP/JSON API (``POST /jobs``, ``GET /jobs/<id>``, NDJSON
  ``GET /jobs/<id>/events``, ``GET /reports/<id>``, ``/healthz``,
  ``/stats``) and :func:`run_daemon`, the blocking entry behind
  ``repro-dfs serve``.
* :mod:`~repro.service.client` -- :class:`ServiceClient`, the urllib
  client that makes ``repro-dfs campaign --server URL`` one submitter
  among many.
* :mod:`~repro.service.ratelimit` -- the :class:`TokenBucket` primitive.

Typical use::

    # terminal 1
    $ repro-dfs serve --port 8765 --jobs 4

    # terminal 2 (or any HTTP client)
    $ repro-dfs campaign --server http://127.0.0.1:8765 --grid depth=2..4
"""

from repro.service.client import (
    ServiceBusy as ClientBusy,
    ServiceClient,
    ServiceClientError,
    result_from_record,
)
from repro.service.core import (
    DEFAULT_MAX_DEPTH,
    RateLimited,
    ServiceBusy,
    VerificationService,
)
from repro.service.http import ServiceDaemon, run_daemon
from repro.service.ratelimit import TokenBucket

__all__ = [
    "ClientBusy",
    "DEFAULT_MAX_DEPTH",
    "RateLimited",
    "ServiceBusy",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDaemon",
    "TokenBucket",
    "VerificationService",
    "result_from_record",
    "run_daemon",
]
