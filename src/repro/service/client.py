"""A stdlib client for the verification service (and the CLI's remote mode).

:class:`ServiceClient` speaks the daemon's HTTP/JSON protocol with nothing
but :mod:`urllib`: submit a job's wire form, poll its ticket, iterate its
NDJSON event stream, fetch its report.  429 responses surface as
:class:`ServiceBusy` carrying the server's ``Retry-After`` hint;
:meth:`ServiceClient.submit` can retry-with-backoff on them, which is what
makes ``repro-dfs campaign --server`` degrade gracefully when the daemon
sheds load.

:func:`result_from_record` rebuilds a local
:class:`~repro.campaign.scheduler.CampaignResult` from a ticket's wire
form, so the remote CLI path renders the exact same reports (and exit
codes) as a local run.
"""

import json
import time
import urllib.error
import urllib.request
import zlib

from repro.campaign.scheduler import CampaignResult
from repro.exceptions import ReproError


def _connection_error(error):
    """The refused/reset error underlying *error*, or ``None``.

    These are the transport failures of a daemon that is down or
    restarting -- retryable, unlike an HTTP error response (the daemon
    answered) or a DNS failure (the endpoint is misconfigured).
    """
    if isinstance(error, (ConnectionRefusedError, ConnectionResetError)):
        return error
    if isinstance(error, urllib.error.URLError) and isinstance(
            error.reason, (ConnectionRefusedError, ConnectionResetError)):
        return error.reason
    return None


class ServiceClientError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, message, status=None, payload=None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceBusy(ServiceClientError):
    """A 429 (backpressure or rate limit); honour *retry_after* seconds."""

    def __init__(self, message, retry_after=1.0, payload=None):
        super().__init__(message, status=429, payload=payload)
        self.retry_after = retry_after


#: Payload keys of a job run record inside a result's wire form.
_PAYLOAD_KEYS = ("model", "factory", "fingerprint", "expect", "cache",
                 "elapsed", "verdict")


def result_from_record(job, record):
    """Rebuild a :class:`CampaignResult` for *job* from a ticket record."""
    result = (record or {}).get("result") or {}
    payload = {key: result[key] for key in _PAYLOAD_KEYS if key in result}
    if payload:
        payload["job_id"] = job.job_id
    return CampaignResult(
        job, result.get("status", "error"), payload=payload or None,
        error=result.get("error"), elapsed=result.get("elapsed", 0.0))


class ServiceClient:
    """Thin HTTP client for one service endpoint (and optionally one tenant).

    Refused and reset connections -- the signature of a daemon that is
    down, restarting, or being bounced by a supervisor -- are retried
    transparently with capped exponential backoff and deterministic
    jitter (*connect_retries* retries, ``base * 2**attempt`` capped at
    *connect_backoff_cap* seconds, scaled by a per-request factor in
    [0.75, 1.25) derived from the URL so concurrent clients fan out
    without shared RNG state).  This is deliberately distinct from the
    429 handling of :meth:`submit`: a 429 is the daemon *answering* with
    a Retry-After hint, a refused connection is the daemon not being
    there at all.
    """

    def __init__(self, base_url, tenant=None, timeout=60.0,
                 connect_retries=4, connect_backoff=0.2,
                 connect_backoff_cap=5.0):
        self.base_url = str(base_url).rstrip("/")
        self.tenant = tenant
        self.timeout = timeout
        self.connect_retries = int(connect_retries)
        self.connect_backoff = float(connect_backoff)
        self.connect_backoff_cap = float(connect_backoff_cap)

    # -- transport -----------------------------------------------------------

    def _open(self, method, path, payload=None):
        """Open with retries on refused/reset connections."""
        attempt = 0
        while True:
            try:
                return self._open_once(method, path, payload)
            except (urllib.error.URLError, ConnectionResetError) as error:
                cause = _connection_error(error)
                if cause is None:
                    raise
                if attempt >= self.connect_retries:
                    raise ServiceClientError(
                        "cannot reach the service at {} after {} "
                        "attempt(s): {}".format(
                            self.base_url, attempt + 1, cause))
                delay = min(self.connect_backoff * (2 ** attempt),
                            self.connect_backoff_cap)
                seed = zlib.crc32("{}:{}:{}".format(
                    self.base_url, path, attempt).encode("utf-8"))
                time.sleep(delay * (0.75 + (seed % 1000) / 2000.0))
                attempt += 1

    def _open_once(self, method, path, payload=None):
        request = urllib.request.Request(
            self.base_url + path,
            data=(json.dumps(payload).encode("utf-8")
                  if payload is not None else None),
            method=method)
        request.add_header("Content-Type", "application/json")
        if self.tenant is not None:
            request.add_header("X-Repro-Tenant", str(self.tenant))
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                detail = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                detail = {"error": body.decode("utf-8", "replace")}
            message = detail.get("error", "HTTP {}".format(error.code))
            if error.code == 429:
                try:
                    retry_after = float(error.headers.get("Retry-After", 1.0))
                except (TypeError, ValueError):
                    retry_after = 1.0
                raise ServiceBusy(message, retry_after=retry_after,
                                  payload=detail)
            raise ServiceClientError(message, status=error.code,
                                     payload=detail)

    def _request(self, method, path, payload=None, raw=False):
        with self._open(method, path, payload) as response:
            body = response.read()
        if raw:
            return body.decode("utf-8")
        return json.loads(body.decode("utf-8"))

    # -- protocol ------------------------------------------------------------

    def submit(self, job, retries=0, max_backoff=5.0):
        """POST a job (an object with ``to_dict`` or a wire-form dict).

        On 429 the call sleeps for the server's ``Retry-After`` (capped at
        *max_backoff*) and retries up to *retries* times before giving up.
        Returns the ticket record (which carries the job ``"id"``).
        """
        payload = job.to_dict() if hasattr(job, "to_dict") else dict(job)
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", payload)
            except ServiceBusy as busy:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(min(busy.retry_after, max_backoff))

    def job(self, ticket_id):
        """GET the current ticket record."""
        return self._request("GET", "/jobs/{}".format(ticket_id))

    def wait(self, ticket_id, timeout=600.0, interval=0.1):
        """Poll until the job is done; return its final ticket record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(ticket_id)
            if record.get("status") == "done":
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    "job {} still {} after {:g}s".format(
                        ticket_id, record.get("status"), timeout))
            time.sleep(interval)

    def events(self, ticket_id):
        """Iterate the job's event stream (one dict per NDJSON line)."""
        response = self._open("GET", "/jobs/{}/events".format(ticket_id))
        try:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            response.close()

    def report(self, ticket_id, fmt="json"):
        """GET the finished job's report: a dict (json) or text (markdown)."""
        path = "/reports/{}?format={}".format(ticket_id, fmt)
        return self._request("GET", path, raw=(fmt == "markdown"))

    def healthz(self):
        return self._request("GET", "/healthz")

    def stats(self):
        return self._request("GET", "/stats")

    # -- campaign front ------------------------------------------------------

    def run_jobs(self, jobs, timeout=600.0, retries=8):
        """Submit *jobs*, wait for all, return local ``CampaignResult``s.

        Submissions go out first (so the daemon coalesces and parallelises
        across them), then each ticket is awaited in order.
        """
        jobs = list(jobs)
        tickets = [self.submit(job, retries=retries) for job in jobs]
        results = []
        for job, ticket in zip(jobs, tickets):
            record = self.wait(ticket["id"], timeout=timeout)
            results.append(result_from_record(job, record))
        return results
