"""The asyncio HTTP/JSON front of the verification service (stdlib only).

A deliberately small HTTP/1.1 server -- ``asyncio.start_server`` plus a
hand-rolled request parser -- so the daemon has **zero** dependencies
beyond the standard library.  Every response closes its connection
(``Connection: close``), which keeps the parser honest and lets the event
stream use end-of-stream as its framing.

Endpoints
---------
* ``POST /jobs`` -- submit a job description (the
  :meth:`~repro.campaign.jobs.VerificationJob.to_dict` wire form, or
  ``{"job": {...}, "tenant": "..."}``); answers 202 with the ticket, 400
  on a malformed job, 429 + ``Retry-After`` on backpressure or rate limit.
  The tenant comes from the ``X-Repro-Tenant`` header (or the wrapper).
* ``GET /jobs/<id>`` -- poll a ticket (status, job, result when done).
* ``GET /jobs/<id>/events`` -- stream the ticket's event log as NDJSON,
  one JSON object per line, live until the job finishes.
* ``GET /reports/<id>`` -- the finished job as a one-job campaign report;
  ``?format=markdown`` renders markdown, the default is JSON.  409 while
  the job is still running.
* ``GET /healthz`` / ``GET /stats`` -- liveness and counters.

Model construction for single-flight keying runs in a thread-pool executor
so a slow factory never stalls the event loop.
"""

import asyncio
import json
import signal
import traceback
import urllib.parse

from repro.campaign.report import CampaignReport
from repro.exceptions import ConfigurationError, ReproError, VerificationError
from repro.service.core import ServiceBusy

_MAX_LINE = 8192
_MAX_BODY = 4 * 1024 * 1024
_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                409: "Conflict", 429: "Too Many Requests",
                500: "Internal Server Error"}


class _BadRequest(Exception):
    pass


async def _read_request(reader):
    """Parse one HTTP/1.1 request; return (method, path, headers, body)."""
    line = await reader.readline()
    if not line:
        return None
    if len(line) > _MAX_LINE:
        raise _BadRequest("request line too long")
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _BadRequest("malformed request line")
    headers = {}
    while True:
        line = await reader.readline()
        if len(line) > _MAX_LINE:
            raise _BadRequest("header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length:
        try:
            length = int(length)
        except ValueError:
            raise _BadRequest("malformed Content-Length")
        if length > _MAX_BODY:
            raise _BadRequest("request body too large")
        body = await reader.readexactly(length)
    return method.upper(), target, headers, body


def _encode_response(status, payload, content_type="application/json",
                     extra_headers=None):
    if isinstance(payload, (dict, list)):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    else:
        body = str(payload).encode("utf-8")
    lines = ["HTTP/1.1 {} {}".format(status, _STATUS_TEXT.get(status, "")),
             "Content-Type: {}".format(content_type),
             "Content-Length: {}".format(len(body)),
             "Connection: close"]
    for name, value in (extra_headers or {}).items():
        lines.append("{}: {}".format(name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class ServiceDaemon:
    """The asyncio server binding a :class:`VerificationService` to TCP."""

    def __init__(self, service, host="127.0.0.1", port=0):
        self.service = service
        self.host = host
        self.port = port
        self._server = None

    async def start(self):
        """Bind and start accepting; resolves ``self.port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self):
        return "http://{}:{}".format(self.host, self.port)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            try:
                request = await _read_request(reader)
            except _BadRequest as bad:
                writer.write(_encode_response(400, {"error": str(bad)}))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if request is None:
                return
            method, target, headers, body = request
            try:
                await self._route(method, target, headers, body, writer)
            except ConnectionError:
                return
            except Exception:
                writer.write(_encode_response(
                    500, {"error": traceback.format_exc()}))
                await writer.drain()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, method, target, headers, body, writer):
        parsed = urllib.parse.urlsplit(target)
        query = urllib.parse.parse_qs(parsed.query)
        segments = [segment for segment in parsed.path.split("/") if segment]

        async def respond(status, payload, **kwargs):
            writer.write(_encode_response(status, payload, **kwargs))
            await writer.drain()

        if segments == ["healthz"] and method == "GET":
            await respond(200, self.service.healthz())
        elif segments == ["stats"] and method == "GET":
            await respond(200, self.service.stats())
        elif segments == ["jobs"] and method == "POST":
            await self._submit(headers, body, respond)
        elif len(segments) == 2 and segments[0] == "jobs" and method == "GET":
            ticket = self.service.ticket(segments[1])
            if ticket is None:
                await respond(404, {"error": "no such job"})
            else:
                await respond(200, ticket.to_dict())
        elif (len(segments) == 3 and segments[0] == "jobs"
                and segments[2] == "events" and method == "GET"):
            await self._stream_events(segments[1], writer)
        elif len(segments) == 2 and segments[0] == "reports" and method == "GET":
            await self._report(segments[1], query, respond)
        elif segments and segments[0] in ("jobs", "reports", "healthz", "stats"):
            await respond(405, {"error": "method not allowed"})
        else:
            await respond(404, {"error": "no such endpoint"})

    async def _submit(self, headers, body, respond):
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            await respond(400, {"error": "request body is not valid JSON"})
            return
        tenant = headers.get("x-repro-tenant") or None
        if isinstance(payload, dict) and "job" in payload:
            tenant = payload.get("tenant", tenant)
            payload = payload["job"]
        if not isinstance(payload, dict):
            await respond(400, {"error": "a job description must be a JSON "
                                         "object"})
            return
        loop = asyncio.get_running_loop()
        try:
            ticket = await loop.run_in_executor(
                None, lambda: self.service.submit(payload, tenant=tenant))
        except ServiceBusy as busy:
            await respond(429, {"error": str(busy),
                                "retry_after": busy.retry_after},
                          extra_headers={
                              "Retry-After":
                                  "{:d}".format(max(1, int(busy.retry_after)))})
        except (ConfigurationError, VerificationError) as bad:
            await respond(400, {"error": str(bad)})
        except ReproError as bad:
            await respond(400, {"error": str(bad)})
        else:
            record = ticket.to_dict()
            record["links"] = {
                "self": "/jobs/{}".format(ticket.id),
                "events": "/jobs/{}/events".format(ticket.id),
                "report": "/reports/{}".format(ticket.id),
            }
            await respond(202, record)

    async def _stream_events(self, ticket_id, writer):
        ticket = self.service.ticket(ticket_id)
        if ticket is None:
            writer.write(_encode_response(404, {"error": "no such job"}))
            await writer.drain()
            return
        writer.write(("HTTP/1.1 200 OK\r\n"
                      "Content-Type: application/x-ndjson\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1"))
        sent = 0

        def flush_from(start):
            events = ticket.events(start)
            for event in events:
                writer.write((json.dumps(event, sort_keys=True) + "\n")
                             .encode("utf-8"))
            return start + len(events)

        while True:
            sent = flush_from(sent)
            await writer.drain()
            if ticket.done:
                # "job-finished" is recorded before the done flag flips, so
                # one final flush after seeing it drains the complete log.
                sent = flush_from(sent)
                await writer.drain()
                return
            await asyncio.sleep(0.05)

    async def _report(self, ticket_id, query, respond):
        ticket = self.service.ticket(ticket_id)
        if ticket is None:
            await respond(404, {"error": "no such job"})
            return
        if not ticket.done:
            await respond(409, {"error": "job is still {}".format(
                ticket.status), "status": ticket.status})
            return
        elapsed = (ticket.finished or 0.0) - ticket.submitted
        report = CampaignReport(
            [ticket.result], parallelism=self.service.scheduler.parallelism,
            elapsed=max(elapsed, 0.0))
        fmt = (query.get("format") or ["json"])[0]
        if fmt == "markdown":
            await respond(200, report.to_markdown(),
                          content_type="text/markdown; charset=utf-8")
        elif fmt == "json":
            await respond(200, report.to_dict())
        else:
            await respond(400, {"error": "unknown report format {!r} "
                                         "(json or markdown)".format(fmt)})


def run_daemon(service, host="127.0.0.1", port=8765, ready=None):
    """Serve *service* until SIGINT/SIGTERM; blocking, returns 0.

    *ready* is called with the started :class:`ServiceDaemon` once the
    socket is bound (the CLI prints the address from it; tests grab the
    ephemeral port).  The scheduler is shut down -- cancelling queued jobs
    and terminating active workers -- before returning, so a Ctrl-C leaves
    no orphaned worker processes behind.
    """

    async def _main():
        daemon = ServiceDaemon(service, host=host, port=port)
        await daemon.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        if ready is not None:
            ready(daemon)
        try:
            await stop.wait()
        except asyncio.CancelledError:
            pass
        await daemon.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass  # a second Ctrl-C during shutdown is still a clean exit
    service.close()
    return 0
