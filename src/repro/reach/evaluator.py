"""Evaluation of Reach expressions on markings and reachability graphs.

Graphs produced by the compiled bitmask engine
(:mod:`repro.petri.compiled`) expose ``mask_of`` / ``scan_masks``; on those,
expressions are compiled down to predicates over the raw ``int`` states, so
witness searches never decode non-matching markings.
"""

from repro.exceptions import ReachEvaluationError
from repro.reach import ast as _ast
from repro.reach.ast import ReachExpression
from repro.reach.parser import parse


def _as_expression(expression):
    if isinstance(expression, ReachExpression):
        return expression
    if isinstance(expression, str):
        return parse(expression)
    raise ReachEvaluationError(
        "expected a Reach expression or string, found {!r}".format(type(expression))
    )


def check_places(expression, net):
    """Raise :class:`ReachEvaluationError` for places absent from *net*."""
    unknown = {place for place in expression.places() if not net.has_place(place)}
    if unknown:
        raise ReachEvaluationError(
            "Reach expression references unknown place(s): {}".format(
                ", ".join(sorted(unknown))
            )
        )


def compile_mask_predicate(expression, mask_of):
    """Compile a Reach AST into a predicate over ``int`` bitmask states.

    *mask_of* maps a place name to its single-bit mask (``0`` for unknown
    places, which then hold zero tokens -- matching marking semantics on
    1-safe states).  Returns ``None`` when the expression contains a node
    kind this compiler does not know (e.g. a user-defined AST subclass), in
    which case callers fall back to marking-level evaluation.
    """
    if isinstance(expression, _ast.Constant):
        value = expression.value
        return lambda state: value
    if isinstance(expression, _ast.Marked):
        bit = mask_of(expression.place)
        return lambda state: bool(state & bit)
    if isinstance(expression, _ast.Compare):
        bit = mask_of(expression.place)
        operator = _ast.Compare._OPERATORS[expression.operator]
        value = expression.value
        return lambda state: operator(1 if state & bit else 0, value)
    if isinstance(expression, _ast.Not):
        operand = compile_mask_predicate(expression.operand, mask_of)
        if operand is None:
            return None
        return lambda state: not operand(state)
    if isinstance(expression, (_ast.And, _ast.Or, _ast.Implies)):
        left = compile_mask_predicate(expression.left, mask_of)
        right = compile_mask_predicate(expression.right, mask_of)
        if left is None or right is None:
            return None
        if isinstance(expression, _ast.And):
            return lambda state: left(state) and right(state)
        if isinstance(expression, _ast.Or):
            return lambda state: left(state) or right(state)
        return lambda state: (not left(state)) or right(state)
    return None


def _columnar_scan(expression, graph):
    """Return a vectorised row-level scanner for *graph*, or ``None``.

    Columnar graphs (:mod:`repro.petri.batch`) store states as a uint64
    word matrix; on those the expression compiles to one whole-table
    vector operation instead of a per-state predicate call.
    """
    word_bit_of = getattr(graph, "word_bit_of", None)
    scan = getattr(graph, "scan_rows", None)
    if word_bit_of is None or scan is None:
        return None
    from repro.petri.batch import compile_row_predicate

    predicate = compile_row_predicate(expression, word_bit_of)
    if predicate is None:
        return None
    return lambda limit: scan(predicate, limit=limit)


def _compiled_scan(expression, graph):
    """Return the fastest mask-level scanner for *graph*, or ``None``."""
    scanner = _columnar_scan(expression, graph)
    if scanner is not None:
        return scanner
    mask_of = getattr(graph, "mask_of", None)
    scan = getattr(graph, "scan_masks", None)
    if mask_of is None or scan is None:
        return None
    predicate = compile_mask_predicate(expression, mask_of)
    if predicate is None:
        return None
    return lambda limit: scan(predicate, limit=limit)


def evaluate(expression, marking, net=None):
    """Evaluate *expression* (AST or text) on a single marking."""
    expression = _as_expression(expression)
    if net is not None:
        check_places(expression, net)
    return expression.evaluate(marking)


def marking_predicate(expression, net=None):
    """Compile *expression* (AST or text) into a ``marking -> bool`` callable.

    This is the single-marking counterpart of :func:`find_witnesses`: it
    needs no materialised reachability graph, so callers that visit markings
    on the fly (simulation hooks, external explorers) can test each state as
    they reach it.  (The random-walk checker works on raw ``int`` states and
    uses :func:`compile_mask_predicate` instead.)  When *net* is given,
    place names are validated once at compile time instead of on every
    call.
    """
    expression = _as_expression(expression)
    if net is not None:
        check_places(expression, net)
    return expression.evaluate


def find_witnesses(expression, graph, max_witnesses=5, with_traces=True):
    """Return reachable states of *graph* satisfying *expression*.

    Each witness is a dictionary with a ``marking`` key and, when
    *with_traces* is true, a ``trace`` key holding a shortest firing sequence
    leading to the witness.
    """
    expression = _as_expression(expression)
    check_places(expression, graph.net)
    scan = _compiled_scan(expression, graph)
    if scan is not None:
        markings = scan(max_witnesses)
    else:
        markings = (m for m in graph.states if expression.evaluate(m))
    witnesses = []
    for marking in markings:
        witness = {"marking": marking}
        if with_traces:
            witness["trace"] = graph.trace_to(marking)
        witnesses.append(witness)
        if len(witnesses) >= max_witnesses:
            break
    return witnesses


def holds_somewhere(expression, graph):
    """Return ``True`` when some reachable state satisfies *expression*."""
    expression = _as_expression(expression)
    check_places(expression, graph.net)
    scan = _compiled_scan(expression, graph)
    if scan is not None:
        return next(iter(scan(1)), None) is not None
    return graph.find(expression.evaluate) is not None
