"""Evaluation of Reach expressions on markings and reachability graphs."""

from repro.exceptions import ReachEvaluationError
from repro.reach.ast import ReachExpression
from repro.reach.parser import parse


def _as_expression(expression):
    if isinstance(expression, ReachExpression):
        return expression
    if isinstance(expression, str):
        return parse(expression)
    raise ReachEvaluationError(
        "expected a Reach expression or string, found {!r}".format(type(expression))
    )


def _check_places(expression, net):
    unknown = {place for place in expression.places() if not net.has_place(place)}
    if unknown:
        raise ReachEvaluationError(
            "Reach expression references unknown place(s): {}".format(
                ", ".join(sorted(unknown))
            )
        )


def evaluate(expression, marking, net=None):
    """Evaluate *expression* (AST or text) on a single marking."""
    expression = _as_expression(expression)
    if net is not None:
        _check_places(expression, net)
    return expression.evaluate(marking)


def find_witnesses(expression, graph, max_witnesses=5, with_traces=True):
    """Return reachable states of *graph* satisfying *expression*.

    Each witness is a dictionary with a ``marking`` key and, when
    *with_traces* is true, a ``trace`` key holding a shortest firing sequence
    leading to the witness.
    """
    expression = _as_expression(expression)
    _check_places(expression, graph.net)
    witnesses = []
    for marking in graph.states:
        if expression.evaluate(marking):
            witness = {"marking": marking}
            if with_traces:
                witness["trace"] = graph.trace_to(marking)
            witnesses.append(witness)
            if len(witnesses) >= max_witnesses:
                break
    return witnesses


def holds_somewhere(expression, graph):
    """Return ``True`` when some reachable state satisfies *expression*."""
    expression = _as_expression(expression)
    _check_places(expression, graph.net)
    return graph.find(expression.evaluate) is not None
