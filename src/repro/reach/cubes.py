"""Disjunctive normal form of Reach expressions over 1-safe markings.

The graph-based evaluator scans materialised states, so it can take any
predicate as an opaque callable.  Symbolic checkers cannot: the inductive
engine of :mod:`repro.verification.checkers` reasons about *sets* of
markings, and needs the bad-state predicate as a union of **cubes** --
conjunctions of place literals ("these places marked, those empty").  This
module normalises a Reach AST into that form.

Token-count comparisons are resolved under the 1-safe assumption (every
place holds zero or one token), which is exact for the DFS translations the
checkers operate on: ``tokens(p) >= 1`` becomes "p marked", ``tokens(p) < 1``
becomes "p empty", and comparisons no 0/1 count can satisfy collapse to the
``false`` constant.

Normalisation can blow up exponentially, so it carries a cube budget;
:func:`to_cubes` returns ``None`` (not an error) when the expression holds a
node kind it does not know or exceeds the budget, mirroring
``compile_mask_predicate`` -- callers then fall back to enumerative
checking.
"""

from repro.reach import ast as _ast


class Cube:
    """A conjunction of place literals: *true_places* marked, *false_places* empty."""

    __slots__ = ("true_places", "false_places")

    def __init__(self, true_places=(), false_places=()):
        self.true_places = frozenset(true_places)
        self.false_places = frozenset(false_places)

    def conjoin(self, other):
        """Conjunction with *other*; ``None`` when contradictory."""
        true_places = self.true_places | other.true_places
        false_places = self.false_places | other.false_places
        if true_places & false_places:
            return None
        return Cube(true_places, false_places)

    def evaluate(self, marking):
        """Evaluate the cube on a marking (1-safe semantics)."""
        return (all(marking[place] > 0 for place in self.true_places)
                and all(marking[place] == 0 for place in self.false_places))

    def places(self):
        return self.true_places | self.false_places

    def __eq__(self, other):
        return (isinstance(other, Cube)
                and self.true_places == other.true_places
                and self.false_places == other.false_places)

    def __hash__(self):
        return hash((self.true_places, self.false_places))

    def __repr__(self):
        literals = sorted(self.true_places) + [
            "!" + place for place in sorted(self.false_places)]
        return "Cube({})".format(" & ".join(literals) or "true")


def _compare_literal(expression, positive):
    """Resolve a token-count comparison to a literal under 1-safety."""
    operator = _ast.Compare._OPERATORS[expression.operator]
    satisfied_empty = operator(0, expression.value)
    satisfied_marked = operator(1, expression.value)
    if not positive:
        satisfied_empty = not satisfied_empty
        satisfied_marked = not satisfied_marked
    if satisfied_empty and satisfied_marked:
        return [Cube()]
    if not satisfied_empty and not satisfied_marked:
        return []
    if satisfied_marked:
        return [Cube(true_places=(expression.place,))]
    return [Cube(false_places=(expression.place,))]


def _dnf(expression, positive, max_cubes):
    if isinstance(expression, _ast.Constant):
        return [Cube()] if expression.value == positive else []
    if isinstance(expression, _ast.Marked):
        if positive:
            return [Cube(true_places=(expression.place,))]
        return [Cube(false_places=(expression.place,))]
    if isinstance(expression, _ast.Compare):
        return _compare_literal(expression, positive)
    if isinstance(expression, _ast.Not):
        return _dnf(expression.operand, not positive, max_cubes)
    if isinstance(expression, (_ast.And, _ast.Or, _ast.Implies)):
        left_positive = positive if not isinstance(expression, _ast.Implies) \
            else not positive
        if isinstance(expression, _ast.Implies):
            # a -> b  ==  !a | b; under negation it is  a & !b.
            disjunctive = positive
            left = _dnf(expression.left, left_positive, max_cubes)
            right = _dnf(expression.right, positive, max_cubes)
        elif isinstance(expression, _ast.Or):
            disjunctive = positive
            left = _dnf(expression.left, positive, max_cubes)
            right = _dnf(expression.right, positive, max_cubes)
        else:  # And: conjunctive when positive, disjunctive when negated
            disjunctive = not positive
            left = _dnf(expression.left, positive, max_cubes)
            right = _dnf(expression.right, positive, max_cubes)
        if left is None or right is None:
            return None
        if disjunctive:
            combined = left + right
            if len(combined) > max_cubes:
                return None
            return combined
        product = []
        for cube_a in left:
            for cube_b in right:
                cube = cube_a.conjoin(cube_b)
                if cube is not None:
                    product.append(cube)
                if len(product) > max_cubes:
                    return None
        return product
    return None  # unknown AST node kind (e.g. a user-defined subclass)


def _prune_subsumed(cubes):
    """Drop cubes covered by a more general cube (fewer literals)."""
    kept = []
    for i, cube in enumerate(cubes):
        subsumed = False
        for j, other in enumerate(cubes):
            if i == j:
                continue
            if (other.true_places <= cube.true_places
                    and other.false_places <= cube.false_places
                    and (other != cube or j < i)):
                subsumed = True
                break
        if not subsumed:
            kept.append(cube)
    return kept


def to_cubes(expression, max_cubes=256):
    """Normalise a Reach AST into a list of :class:`Cube` (DNF).

    An empty list means the expression is unsatisfiable on 1-safe markings.
    Returns ``None`` when the AST holds an unknown node kind or the
    normalised form would exceed *max_cubes* cubes; callers fall back to
    enumerative evaluation in that case.
    """
    cubes = _dnf(expression, True, max_cubes)
    if cubes is None:
        return None
    return _prune_subsumed(list(dict.fromkeys(cubes)))
