"""Recursive-descent parser for the Reach predicate language."""

import re

from repro.exceptions import ReachSyntaxError
from repro.reach.ast import And, Compare, Constant, Implies, Marked, Not, Or

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<cmp>==|!=|<=|>=|<|>)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>!)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<dollar>\$)
  | (?P<quoted>"[^"]*")
  | (?P<int>[0-9]+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\.\[\]]*)
""",
    re.VERBOSE,
)

_KEYWORDS = {"true", "false", "tokens"}


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self):
        return "_Token({!r}, {!r})".format(self.kind, self.value)


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise ReachSyntaxError(
                "unexpected character {!r} at position {}".format(text[position], position)
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind == "ws":
            continue
        if kind == "name" and value in _KEYWORDS:
            kind = value
        tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    def _peek(self):
        return self._tokens[self._index]

    def _advance(self):
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind):
        token = self._peek()
        if token.kind != kind:
            raise ReachSyntaxError(
                "expected {} but found {!r} at position {}".format(
                    kind, token.value or "end of input", token.position
                )
            )
        return self._advance()

    # Grammar: implies -> or -> and -> not -> atom
    def parse(self):
        expression = self._implies()
        self._expect("eof")
        return expression

    def _implies(self):
        left = self._or()
        while self._peek().kind == "arrow":
            self._advance()
            right = self._or()
            left = Implies(left, right)
        return left

    def _or(self):
        left = self._and()
        while self._peek().kind == "or":
            self._advance()
            left = Or(left, self._and())
        return left

    def _and(self):
        left = self._not()
        while self._peek().kind == "and":
            self._advance()
            left = And(left, self._not())
        return left

    def _not(self):
        if self._peek().kind == "not":
            self._advance()
            return Not(self._not())
        return self._atom()

    def _atom(self):
        token = self._peek()
        if token.kind == "lparen":
            self._advance()
            expression = self._implies()
            self._expect("rparen")
            return expression
        if token.kind == "true":
            self._advance()
            return Constant(True)
        if token.kind == "false":
            self._advance()
            return Constant(False)
        if token.kind == "dollar":
            self._advance()
            name = self._expect("quoted").value.strip('"')
            return Marked(name)
        if token.kind == "quoted":
            self._advance()
            return Marked(token.value.strip('"'))
        if token.kind == "tokens":
            self._advance()
            self._expect("lparen")
            place_token = self._peek()
            if place_token.kind in ("name", "quoted"):
                self._advance()
                place = place_token.value.strip('"')
            else:
                raise ReachSyntaxError(
                    "expected a place name at position {}".format(place_token.position)
                )
            self._expect("rparen")
            operator = self._expect("cmp").value
            value = self._expect("int").value
            return Compare(place, operator, int(value))
        if token.kind == "name":
            self._advance()
            return Marked(token.value)
        raise ReachSyntaxError(
            "unexpected token {!r} at position {}".format(
                token.value or "end of input", token.position
            )
        )


def parse(text):
    """Parse a Reach expression and return its AST.

    >>> expression = parse('$"M_r_1" & !$"C_f_1"')
    >>> sorted(expression.places())
    ['C_f_1', 'M_r_1']
    """
    if not isinstance(text, str) or not text.strip():
        raise ReachSyntaxError("empty Reach expression")
    return _Parser(_tokenize(text)).parse()
