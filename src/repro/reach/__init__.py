"""A small Reach-like predicate language for custom functional properties.

The paper verifies "custom functional properties (such as hazards) expressed
in Reach language" on the Petri-net translation of a DFS model.  This package
provides a compact re-implementation of the useful core of that idea: Boolean
predicates over place markings, parsed from text, evaluated either on a
single marking or over a whole reachability graph (returning witness states).

Syntax summary
--------------

::

    expr    := implies
    implies := or ( "->" or )*
    or      := and ( "|" and )*
    and     := not ( "&" not )*
    not     := "!" not | atom
    atom    := "(" expr ")" | "true" | "false"
             | '$"' NAME '"'            # place NAME is marked
             | NAME                     # shorthand for the same
             | "tokens" "(" NAME ")" CMP INT

    CMP     := "==" | "!=" | "<" | "<=" | ">" | ">="

A property written in this language describes the *bad* states (as in MPSAT's
Reach): verification succeeds when no reachable state satisfies it.
"""

from repro.reach.ast import (
    And,
    Compare,
    Constant,
    Implies,
    Marked,
    Not,
    Or,
    ReachExpression,
)
from repro.reach.cubes import Cube, to_cubes
from repro.reach.parser import parse
from repro.reach.evaluator import (
    evaluate,
    find_witnesses,
    holds_somewhere,
    marking_predicate,
)

__all__ = [
    "And",
    "Compare",
    "Constant",
    "Cube",
    "Implies",
    "Marked",
    "Not",
    "Or",
    "ReachExpression",
    "evaluate",
    "find_witnesses",
    "holds_somewhere",
    "marking_predicate",
    "parse",
    "to_cubes",
]
