"""Abstract syntax tree of Reach predicate expressions."""


class ReachExpression:
    """Base class of all Reach AST nodes."""

    def evaluate(self, marking):
        """Evaluate this expression on a marking; subclasses must override."""
        raise NotImplementedError

    def places(self):
        """Return the set of place names referenced by the expression."""
        return set()

    # Operator sugar so that expressions can also be composed in Python.
    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __invert__(self):
        return Not(self)


class Constant(ReachExpression):
    """The literal ``true`` or ``false``."""

    def __init__(self, value):
        self.value = bool(value)

    def evaluate(self, marking):
        return self.value

    def __repr__(self):
        return "true" if self.value else "false"


class Marked(ReachExpression):
    """``$"place"`` -- true when the place holds at least one token."""

    def __init__(self, place):
        self.place = place

    def evaluate(self, marking):
        return marking[self.place] > 0

    def places(self):
        return {self.place}

    def __repr__(self):
        return '$"{}"'.format(self.place)


class Compare(ReachExpression):
    """``tokens(place) OP value`` for a numeric comparison operator."""

    _OPERATORS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, place, operator, value):
        if operator not in self._OPERATORS:
            raise ValueError("unknown comparison operator: {!r}".format(operator))
        self.place = place
        self.operator = operator
        self.value = int(value)

    def evaluate(self, marking):
        return self._OPERATORS[self.operator](marking[self.place], self.value)

    def places(self):
        return {self.place}

    def __repr__(self):
        return "tokens({}) {} {}".format(self.place, self.operator, self.value)


class Not(ReachExpression):
    """Logical negation."""

    def __init__(self, operand):
        self.operand = operand

    def evaluate(self, marking):
        return not self.operand.evaluate(marking)

    def places(self):
        return self.operand.places()

    def __repr__(self):
        return "!({!r})".format(self.operand)


class _Binary(ReachExpression):
    symbol = "?"

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def places(self):
        return self.left.places() | self.right.places()

    def __repr__(self):
        return "({!r} {} {!r})".format(self.left, self.symbol, self.right)


class And(_Binary):
    """Logical conjunction."""

    symbol = "&"

    def evaluate(self, marking):
        return self.left.evaluate(marking) and self.right.evaluate(marking)


class Or(_Binary):
    """Logical disjunction."""

    symbol = "|"

    def evaluate(self, marking):
        return self.left.evaluate(marking) or self.right.evaluate(marking)


class Implies(_Binary):
    """Logical implication."""

    symbol = "->"

    def evaluate(self, marking):
        return (not self.left.evaluate(marking)) or self.right.evaluate(marking)


def conjunction(expressions):
    """Fold an iterable of expressions with ``&`` (``true`` when empty)."""
    result = None
    for expression in expressions:
        result = expression if result is None else And(result, expression)
    return result if result is not None else Constant(True)


def disjunction(expressions):
    """Fold an iterable of expressions with ``|`` (``false`` when empty)."""
    result = None
    for expression in expressions:
        result = expression if result is None else Or(result, expression)
    return result if result is not None else Constant(False)
