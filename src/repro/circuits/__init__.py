"""Asynchronous circuit back-end: NCL-D dual-rail components and netlists.

The paper translates a verified DFS model "into a circuit implementation
netlist using a library of pre-built NCL-D style asynchronous dual-rail
components (comparator, adder, and a set of registers) that rely on 4-phase
communication protocol", and exports the result as a Verilog netlist for a
conventional back-end flow.  This package provides:

* :mod:`repro.circuits.signals`   -- dual-rail signal encoding with spacers;
* :mod:`repro.circuits.gates`     -- C-elements, threshold gates and simple
  Boolean gates with behavioural evaluation;
* :mod:`repro.circuits.library`   -- a behavioural cell/component library with
  area, delay and energy figures (loosely modelled on a 90 nm low-power
  process);
* :mod:`repro.circuits.netlist`   -- hierarchical netlists (modules,
  instances, nets, ports);
* :mod:`repro.circuits.handshake` -- 4-phase dual-rail channels;
* :mod:`repro.circuits.mapping`   -- direct mapping of DFS nodes onto library
  components (including the daisy-chain / tree C-element synchronisation
  choice evaluated in the paper);
* :mod:`repro.circuits.simulation`-- event-driven simulation of mapped
  netlists with energy accounting;
* :mod:`repro.circuits.verilog`   -- Verilog netlist export.
"""

from repro.circuits.signals import DualRail, Rail, encode_word, decode_word
from repro.circuits.gates import CElement, Gate, NclGate, majority, threshold
from repro.circuits.library import Cell, CellLibrary, Component, default_library
from repro.circuits.netlist import Instance, Module, Net, Netlist, Port, PortDirection
from repro.circuits.handshake import Channel, ChannelPhase, FourPhaseProtocol
from repro.circuits.mapping import MappingOptions, SyncStyle, map_dfs_to_netlist
from repro.circuits.simulation import CircuitSimulator, SimulationStats
from repro.circuits.verilog import to_verilog

__all__ = [
    "CElement",
    "Cell",
    "CellLibrary",
    "Channel",
    "ChannelPhase",
    "CircuitSimulator",
    "Component",
    "DualRail",
    "FourPhaseProtocol",
    "Gate",
    "Instance",
    "MappingOptions",
    "Module",
    "NclGate",
    "Net",
    "Netlist",
    "Port",
    "PortDirection",
    "Rail",
    "SimulationStats",
    "SyncStyle",
    "decode_word",
    "default_library",
    "encode_word",
    "majority",
    "map_dfs_to_netlist",
    "threshold",
    "to_verilog",
]
