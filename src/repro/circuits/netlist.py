"""Hierarchical circuit netlists.

A :class:`Netlist` holds a set of :class:`Module` definitions; each module
has ports, nets and component instances.  The structure intentionally mirrors
what a structural Verilog netlist can express, because the Verilog exporter
(:mod:`repro.circuits.verilog`) is a straightforward rendering of it.
"""

from enum import Enum

from repro.exceptions import CircuitError
from repro.utils.naming import NameRegistry, is_valid_name


class PortDirection(Enum):
    """Direction of a module port."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


class Port:
    """A module port (a named bundle of *width* wires)."""

    def __init__(self, name, direction, width=1):
        if not is_valid_name(name):
            raise CircuitError("invalid port name: {!r}".format(name))
        self.name = name
        self.direction = direction
        self.width = int(width)

    def __repr__(self):
        return "Port({!r}, {}, width={})".format(self.name, self.direction.value, self.width)


class Net:
    """A named net (wire bundle) inside a module."""

    def __init__(self, name, width=1):
        if not is_valid_name(name):
            raise CircuitError("invalid net name: {!r}".format(name))
        self.name = name
        self.width = int(width)

    def __repr__(self):
        return "Net({!r}, width={})".format(self.name, self.width)


class Instance:
    """An instantiation of a component or sub-module inside a module.

    ``connections`` maps formal port names of the instantiated element to net
    names of the enclosing module.
    """

    def __init__(self, name, reference, connections=None, attributes=None):
        if not is_valid_name(name):
            raise CircuitError("invalid instance name: {!r}".format(name))
        self.name = name
        self.reference = reference
        self.connections = dict(connections or {})
        self.attributes = dict(attributes or {})

    def connect(self, port, net):
        self.connections[port] = net

    def __repr__(self):
        return "Instance({!r}, of={!r})".format(self.name, self.reference)


class Module:
    """A module: ports, nets and instances."""

    def __init__(self, name):
        if not is_valid_name(name):
            raise CircuitError("invalid module name: {!r}".format(name))
        self.name = name
        self._names = NameRegistry()
        self._ports = {}
        self._nets = {}
        self._instances = {}

    # -- construction -----------------------------------------------------------

    def add_port(self, name, direction, width=1):
        self._names.register(name)
        port = Port(name, direction, width=width)
        self._ports[name] = port
        # A port is also usable as a net inside the module.
        self._nets[name] = Net(name, width=width)
        return port

    def add_input(self, name, width=1):
        return self.add_port(name, PortDirection.INPUT, width=width)

    def add_output(self, name, width=1):
        return self.add_port(name, PortDirection.OUTPUT, width=width)

    def add_net(self, name, width=1):
        if name in self._ports:
            return self._nets[name]
        self._names.register(name)
        net = Net(name, width=width)
        self._nets[name] = net
        return net

    def add_instance(self, name, reference, connections=None, attributes=None):
        self._names.register(name)
        instance = Instance(name, reference, connections=connections, attributes=attributes)
        self._instances[name] = instance
        return instance

    # -- access -------------------------------------------------------------------

    @property
    def ports(self):
        return dict(self._ports)

    @property
    def nets(self):
        return dict(self._nets)

    @property
    def instances(self):
        return dict(self._instances)

    def instance(self, name):
        try:
            return self._instances[name]
        except KeyError:
            raise CircuitError("unknown instance: {!r}".format(name))

    def has_net(self, name):
        return name in self._nets

    def validate(self):
        """Check that every instance connection refers to an existing net."""
        for instance in self._instances.values():
            for port, net in instance.connections.items():
                if net not in self._nets:
                    raise CircuitError(
                        "instance {!r} connects port {!r} to unknown net {!r}".format(
                            instance.name, port, net)
                    )
        return True

    def __repr__(self):
        return "Module({!r}, ports={}, nets={}, instances={})".format(
            self.name, len(self._ports), len(self._nets), len(self._instances))


class Netlist:
    """A collection of modules with a designated top module."""

    def __init__(self, name, library=None):
        self.name = name
        self.library = library
        self._modules = {}
        self.top = None

    def add_module(self, module, top=False):
        if module.name in self._modules:
            raise CircuitError("duplicate module: {!r}".format(module.name))
        self._modules[module.name] = module
        if top or self.top is None:
            self.top = module.name
        return module

    def new_module(self, name, top=False):
        return self.add_module(Module(name), top=top)

    @property
    def modules(self):
        return dict(self._modules)

    def module(self, name):
        try:
            return self._modules[name]
        except KeyError:
            raise CircuitError("unknown module: {!r}".format(name))

    def top_module(self):
        if self.top is None:
            raise CircuitError("the netlist has no top module")
        return self._modules[self.top]

    def validate(self):
        for module in self._modules.values():
            module.validate()
        return True

    # -- aggregate figures -----------------------------------------------------------

    def component_counts(self, module_name=None):
        """Count instantiated library components (recursively through sub-modules)."""
        module = self.module(module_name or self.top)
        counts = {}
        for instance in module.instances.values():
            reference = instance.reference
            if reference in self._modules:
                nested = self.component_counts(reference)
                for name, count in nested.items():
                    counts[name] = counts.get(name, 0) + count
            else:
                counts[reference] = counts.get(reference, 0) + 1
        return counts

    def total_area(self, module_name=None):
        """Total silicon area (needs a library attached)."""
        if self.library is None:
            raise CircuitError("the netlist has no component library attached")
        counts = self.component_counts(module_name)
        return sum(self.library.component(name).area * count
                   for name, count in counts.items())

    def total_leakage(self, module_name=None):
        """Total leakage (nW at nominal voltage; needs a library attached)."""
        if self.library is None:
            raise CircuitError("the netlist has no component library attached")
        counts = self.component_counts(module_name)
        return sum(self.library.component(name).leakage * count
                   for name, count in counts.items())

    def __repr__(self):
        return "Netlist({!r}, modules={}, top={!r})".format(
            self.name, len(self._modules), self.top)
