"""Dual-rail signal encoding used by NCL-D circuits.

A dual-rail signal carries one bit on two wires: ``(t, f)``.  The NULL state
(spacer) is ``(0, 0)``; logic one is ``(1, 0)``; logic zero is ``(0, 1)``;
``(1, 1)`` is illegal.  A data word is a tuple of dual-rail bits; a word is
*complete* when every bit holds data, and *null* when every bit is a spacer.
Completion detection over a word is what drives the 4-phase handshake.
"""

from enum import Enum

from repro.exceptions import CircuitError


class Rail(Enum):
    """State of a single dual-rail bit."""

    NULL = "null"
    TRUE = "true"
    FALSE = "false"

    @property
    def is_data(self):
        return self is not Rail.NULL


class DualRail:
    """A single dual-rail encoded bit."""

    __slots__ = ("t", "f")

    def __init__(self, t=0, f=0):
        self.t = int(bool(t))
        self.f = int(bool(f))
        if self.t and self.f:
            raise CircuitError("illegal dual-rail state: both rails asserted")

    @classmethod
    def null(cls):
        """The spacer (NULL) state."""
        return cls(0, 0)

    @classmethod
    def from_bool(cls, value):
        """Encode a Boolean as a dual-rail bit."""
        return cls(1, 0) if value else cls(0, 1)

    @property
    def state(self):
        if self.t:
            return Rail.TRUE
        if self.f:
            return Rail.FALSE
        return Rail.NULL

    @property
    def is_data(self):
        return self.t != self.f

    @property
    def is_null(self):
        return not self.t and not self.f

    def to_bool(self):
        """Decode to a Boolean; raises on a spacer."""
        if self.is_null:
            raise CircuitError("cannot decode a NULL dual-rail bit")
        return bool(self.t)

    def __eq__(self, other):
        return isinstance(other, DualRail) and self.t == other.t and self.f == other.f

    def __hash__(self):
        return hash((self.t, self.f))

    def __repr__(self):
        return "DualRail({})".format(self.state.value)


def encode_word(value, width):
    """Encode an integer as a tuple of dual-rail bits (LSB first).

    >>> [bit.state.value for bit in encode_word(5, 4)]
    ['true', 'false', 'true', 'false']
    """
    if value < 0:
        raise CircuitError("dual-rail words encode non-negative integers only")
    if value >= (1 << width):
        raise CircuitError(
            "value {} does not fit in a {}-bit dual-rail word".format(value, width)
        )
    return tuple(DualRail.from_bool(bool((value >> index) & 1)) for index in range(width))


def null_word(width):
    """Return an all-spacer word of the given width."""
    return tuple(DualRail.null() for _ in range(width))


def decode_word(word):
    """Decode a complete dual-rail word back to an integer (LSB first)."""
    value = 0
    for index, bit in enumerate(word):
        if bit.is_null:
            raise CircuitError("cannot decode an incomplete dual-rail word")
        if bit.to_bool():
            value |= 1 << index
    return value


def is_complete(word):
    """True when every bit of the word carries data."""
    return all(bit.is_data for bit in word)


def is_null(word):
    """True when every bit of the word is a spacer."""
    return all(bit.is_null for bit in word)


def completion(word):
    """Completion-detection value of a word.

    Returns ``1`` for a complete word, ``0`` for an all-NULL word and ``None``
    while the word is partially switched (the completion detector holds its
    previous value in that case -- hysteresis is provided by the C-elements of
    the detector, modelled at a higher level in the simulator).
    """
    if is_complete(word):
        return 1
    if is_null(word):
        return 0
    return None
