"""Direct mapping of DFS models onto NCL-D library components.

"A verified and optimised DFS model can be automatically translated into an
asynchronous circuit netlist by directly mapping its nodes into pre-built
components and connecting them according to the dataflow arcs" (Section II-D).
This module implements that direct mapping:

* every DFS node becomes one component instance (chosen by node type and, for
  logic nodes, by their ``function`` annotation);
* every DFS edge becomes a dual-rail data net plus an acknowledge net;
* wherever a node's acknowledgements must be merged (fan-out to several
  registers), a synchronisation structure of 2-input C-elements is inserted,
  either as a **daisy chain** (the style fabricated for the reconfigurable
  OPE pipeline, responsible for its 36 % performance overhead) or as a
  balanced **tree** (the style of the static pipeline, and the planned fix).
"""

import re
from enum import Enum

from repro.exceptions import MappingError
from repro.dfs.nodes import NodeType
from repro.circuits.library import default_library
from repro.circuits.netlist import Netlist


class SyncStyle(Enum):
    """C-element synchronisation structure used for acknowledge merging."""

    DAISY_CHAIN = "daisy_chain"
    TREE = "tree"


#: Default mapping from logic-node ``function`` annotations to components.
DEFAULT_FUNCTION_MAP = {
    "cond": "dr_comparator",
    "compare": "dr_comparator",
    "comp": "dr_function",
    "rank": "dr_incrementer",
    "add": "dr_adder",
    "sum": "dr_adder",
    "aggregate": "dr_adder",
}

#: Mapping from register node types to components.
REGISTER_COMPONENTS = {
    NodeType.REGISTER: "dr_register",
    NodeType.CONTROL: "ctrl_register",
    NodeType.PUSH: "push_register",
    NodeType.POP: "pop_register",
}


class MappingOptions:
    """Options of the DFS-to-netlist mapping."""

    def __init__(self, data_width=16, sync_style=SyncStyle.TREE,
                 function_map=None, default_logic_component="dr_function"):
        self.data_width = int(data_width)
        self.sync_style = sync_style
        self.function_map = dict(DEFAULT_FUNCTION_MAP)
        if function_map:
            self.function_map.update(function_map)
        self.default_logic_component = default_logic_component

    def __repr__(self):
        return "MappingOptions(width={}, sync={})".format(
            self.data_width, self.sync_style.value)


def sanitize(name):
    """Turn a DFS node name into a netlist-friendly identifier."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def _component_for_node(dfs, name, library, options):
    node = dfs.node(name)
    if node.node_type is NodeType.LOGIC:
        component_name = options.function_map.get(
            node.function, options.default_logic_component)
    else:
        component_name = REGISTER_COMPONENTS[node.node_type]
    if not library.has_component(component_name):
        raise MappingError(
            "library {!r} has no component {!r} needed for node {!r}".format(
                library.name, component_name, name))
    return component_name


def _build_sync_structure(module, base_name, ack_nets, style):
    """Merge several acknowledge nets with C-elements; return the merged net.

    A daisy chain merges them pairwise in sequence (depth ``k - 1``); a tree
    merges them level by level (depth ``ceil(log2 k)``).
    """
    if not ack_nets:
        raise MappingError("cannot build a synchronisation structure over zero nets")
    if len(ack_nets) == 1:
        return ack_nets[0]
    counter = 0
    if style is SyncStyle.DAISY_CHAIN:
        current = ack_nets[0]
        for net in ack_nets[1:]:
            merged = module.add_net("{}_sync{}".format(base_name, counter))
            module.add_instance(
                "{}_c{}".format(base_name, counter), "c_element",
                connections={"a": current, "b": net, "z": merged.name},
                attributes={"role": "ack-merge", "style": "daisy_chain"},
            )
            current = merged.name
            counter += 1
        return current
    # Balanced tree.
    level = list(ack_nets)
    while len(level) > 1:
        next_level = []
        for index in range(0, len(level) - 1, 2):
            merged = module.add_net("{}_sync{}".format(base_name, counter))
            module.add_instance(
                "{}_c{}".format(base_name, counter), "c_element",
                connections={"a": level[index], "b": level[index + 1], "z": merged.name},
                attributes={"role": "ack-merge", "style": "tree"},
            )
            next_level.append(merged.name)
            counter += 1
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0]


def map_dfs_to_netlist(dfs, library=None, options=None, name=None):
    """Map a DFS model onto library components and return a :class:`Netlist`."""
    library = library or default_library()
    options = options or MappingOptions()
    netlist = Netlist(name or "{}_netlist".format(dfs.name), library=library)
    top = netlist.new_module(sanitize("{}_top".format(dfs.name)), top=True)

    # Environment-facing ports.
    for register in dfs.input_registers():
        top.add_input("{}_in".format(sanitize(register)), width=2 * options.data_width)
    for register in dfs.output_registers():
        top.add_output("{}_out".format(sanitize(register)), width=2 * options.data_width)
    top.add_input("rst")

    # Data and acknowledge nets, one pair per DFS edge.
    data_nets = {}
    ack_nets = {}
    for source, target in sorted(dfs.edges):
        net_base = "{}__{}".format(sanitize(source), sanitize(target))
        data_nets[(source, target)] = top.add_net(
            "d_{}".format(net_base), width=2 * options.data_width).name
        ack_nets[(source, target)] = top.add_net("a_{}".format(net_base)).name

    # One component instance per DFS node.
    for node_name in sorted(dfs.nodes):
        component_name = _component_for_node(dfs, node_name, library, options)
        instance_name = "u_{}".format(sanitize(node_name))
        connections = {"rst": "rst"}
        # Input side: data from each predecessor, acknowledge back to it.
        for index, predecessor in enumerate(sorted(dfs.preset(node_name))):
            connections["i{}".format(index)] = data_nets[(predecessor, node_name)]
            connections["i{}_ack".format(index)] = ack_nets[(predecessor, node_name)]
        # Output side: data to each successor; their acknowledgements are
        # merged through the configured synchronisation structure.
        successor_acks = []
        for index, successor in enumerate(sorted(dfs.postset(node_name))):
            connections["o{}".format(index)] = data_nets[(node_name, successor)]
            successor_acks.append(ack_nets[(node_name, successor)])
        if successor_acks:
            merged = _build_sync_structure(
                top, "u_{}".format(sanitize(node_name)) + "_ack", successor_acks,
                options.sync_style)
            connections["o_ack"] = merged
        # Environment connections.
        if not dfs.preset(node_name) and dfs.node(node_name).is_register:
            connections["i0"] = "{}_in".format(sanitize(node_name))
        if not dfs.postset(node_name) and dfs.node(node_name).is_register:
            connections["o0"] = "{}_out".format(sanitize(node_name))
        top.add_instance(instance_name, component_name,
                         connections=connections,
                         attributes={"dfs_node": node_name,
                                     "node_type": dfs.kind(node_name).value})
    netlist.validate()
    return netlist


def mapping_summary(netlist):
    """Return component counts, total area and leakage of a mapped netlist."""
    counts = netlist.component_counts()
    return {
        "components": counts,
        "instances": sum(counts.values()),
        "area_um2": netlist.total_area(),
        "leakage_nw": netlist.total_leakage(),
        "sync_elements": counts.get("c_element", 0),
    }
