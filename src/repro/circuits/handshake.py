"""4-phase dual-rail handshake channels.

NCL-D components communicate over channels following the 4-phase (return to
zero) protocol: the sender drives a data wave, the receiver acknowledges, the
sender drives the NULL (spacer) wave, and the receiver releases the
acknowledgement.  One *token transfer* therefore consists of four phases, and
the channel cycle time is the sum of the four phase delays.

The :class:`Channel` class models one channel as a small state machine; the
component-level simulator advances channels through their phases and charges
the corresponding delays and energies.
"""

from enum import Enum

from repro.exceptions import CircuitError


class ChannelPhase(Enum):
    """Phases of the 4-phase protocol."""

    IDLE = "idle"              # spacer on data, ack low
    DATA_VALID = "data_valid"  # data wave asserted, waiting for ack
    ACKNOWLEDGED = "acked"     # ack high, waiting for spacer
    RETURN_TO_ZERO = "rtz"     # spacer asserted, waiting for ack release


#: The cyclic order of phases; completing the last returns the channel to IDLE.
PHASE_ORDER = [
    ChannelPhase.IDLE,
    ChannelPhase.DATA_VALID,
    ChannelPhase.ACKNOWLEDGED,
    ChannelPhase.RETURN_TO_ZERO,
]


class FourPhaseProtocol:
    """Timing of one 4-phase cycle, split per phase.

    ``data_delay`` is the forward propagation of the data wave through the
    receiving logic, ``ack_delay`` the completion detection plus
    acknowledgement, ``rtz_delay`` the spacer wave and ``release_delay`` the
    acknowledgement release.  The cycle time is their sum.
    """

    def __init__(self, data_delay, ack_delay, rtz_delay=None, release_delay=None):
        self.data_delay = float(data_delay)
        self.ack_delay = float(ack_delay)
        self.rtz_delay = float(rtz_delay) if rtz_delay is not None else self.data_delay
        self.release_delay = (float(release_delay) if release_delay is not None
                              else self.ack_delay)

    @property
    def cycle_time(self):
        return self.data_delay + self.ack_delay + self.rtz_delay + self.release_delay

    def phase_delay(self, phase):
        return {
            ChannelPhase.IDLE: self.data_delay,
            ChannelPhase.DATA_VALID: self.ack_delay,
            ChannelPhase.ACKNOWLEDGED: self.rtz_delay,
            ChannelPhase.RETURN_TO_ZERO: self.release_delay,
        }[phase]

    def __repr__(self):
        return "FourPhaseProtocol(cycle_time={:.3g}ns)".format(self.cycle_time)


class Channel:
    """A point-to-point dual-rail channel between two component instances."""

    def __init__(self, name, source, target, protocol, width=1):
        self.name = name
        self.source = source
        self.target = target
        self.protocol = protocol
        self.width = int(width)
        self.phase = ChannelPhase.IDLE
        self.transfers = 0
        self.payload = None

    def advance(self, payload=None):
        """Move to the next phase; returns the delay spent in the current one.

        A full IDLE -> DATA_VALID -> ACKNOWLEDGED -> RETURN_TO_ZERO -> IDLE
        round trip counts as one completed token transfer.
        """
        delay = self.protocol.phase_delay(self.phase)
        index = PHASE_ORDER.index(self.phase)
        next_phase = PHASE_ORDER[(index + 1) % len(PHASE_ORDER)]
        if self.phase is ChannelPhase.IDLE:
            self.payload = payload
        if next_phase is ChannelPhase.IDLE:
            self.transfers += 1
            self.payload = None
        self.phase = next_phase
        return delay

    def complete_transfer(self, payload=None):
        """Run a whole 4-phase cycle; return the total time spent."""
        if self.phase is not ChannelPhase.IDLE:
            raise CircuitError(
                "channel {!r} cannot start a transfer from phase {!r}".format(
                    self.name, self.phase.value))
        total = 0.0
        for _ in PHASE_ORDER:
            total += self.advance(payload)
        return total

    @property
    def busy(self):
        return self.phase is not ChannelPhase.IDLE

    def __repr__(self):
        return "Channel({!r}, {} -> {}, phase={}, transfers={})".format(
            self.name, self.source, self.target, self.phase.value, self.transfers)
