"""Gate-level primitives of NCL-style asynchronous circuits.

NCL (Null Convention Logic) circuits are built from *threshold gates with
hysteresis*: a ``THmn`` gate has ``n`` inputs and asserts its output once at
least ``m`` of them are asserted; it then holds the output until *all* inputs
return to zero.  The Muller C-element is the special case ``THnn``.  This
module provides behavioural models of these gates, sufficient for the
component-level simulation and for documenting the structure of the mapped
circuits.
"""

from repro.exceptions import CircuitError


class Gate:
    """A simple combinational gate evaluated from a Boolean function."""

    def __init__(self, name, inputs, function):
        self.name = name
        self.inputs = int(inputs)
        self._function = function

    def evaluate(self, values, previous=0):
        """Evaluate the gate; *previous* is ignored for combinational gates."""
        if len(values) != self.inputs:
            raise CircuitError(
                "gate {!r} expects {} inputs, got {}".format(self.name, self.inputs, len(values))
            )
        return int(bool(self._function([int(bool(v)) for v in values])))

    def __repr__(self):
        return "Gate({!r}, inputs={})".format(self.name, self.inputs)


class NclGate:
    """A threshold gate with hysteresis (``THmn``)."""

    def __init__(self, threshold_count, inputs, name=None):
        if not 1 <= threshold_count <= inputs:
            raise CircuitError(
                "invalid threshold gate TH{}{}".format(threshold_count, inputs)
            )
        self.threshold = int(threshold_count)
        self.inputs = int(inputs)
        self.name = name or "TH{}{}".format(threshold_count, inputs)

    def evaluate(self, values, previous=0):
        """Evaluate with hysteresis: set at the threshold, reset only at all-zero."""
        if len(values) != self.inputs:
            raise CircuitError(
                "gate {!r} expects {} inputs, got {}".format(self.name, self.inputs, len(values))
            )
        asserted = sum(1 for value in values if value)
        if asserted >= self.threshold:
            return 1
        if asserted == 0:
            return 0
        return int(bool(previous))

    def __repr__(self):
        return "NclGate({!r})".format(self.name)


class CElement(NclGate):
    """The Muller C-element: output follows the inputs when they agree."""

    def __init__(self, inputs=2, name=None):
        super().__init__(inputs, inputs, name=name or "C{}".format(inputs))


def and_gate(inputs=2):
    """A plain AND gate."""
    return Gate("AND{}".format(inputs), inputs, lambda values: all(values))


def or_gate(inputs=2):
    """A plain OR gate."""
    return Gate("OR{}".format(inputs), inputs, lambda values: any(values))


def not_gate():
    """A plain inverter."""
    return Gate("NOT", 1, lambda values: not values[0])


def threshold(m, n):
    """Shorthand for a ``THmn`` NCL gate."""
    return NclGate(m, n)


def majority(inputs=3):
    """A majority gate (used in completion-detection trees)."""
    if inputs % 2 == 0:
        raise CircuitError("a majority gate needs an odd number of inputs")
    return NclGate((inputs // 2) + 1, inputs, name="MAJ{}".format(inputs))


def c_element_tree_depth(leaves, fan_in=2):
    """Depth (in gate levels) of a C-element tree joining *leaves* inputs.

    The static OPE pipeline synchronises its stages with such a tree, while
    the fabricated reconfigurable pipeline used a daisy chain (depth equal to
    the number of leaves), which is the source of its 36 % performance
    overhead (Section IV of the paper).
    """
    if leaves <= 0:
        raise CircuitError("a C-element tree needs at least one leaf")
    if fan_in < 2:
        raise CircuitError("C-element tree fan-in must be at least 2")
    depth = 0
    count = leaves
    while count > 1:
        count = (count + fan_in - 1) // fan_in
        depth += 1
    return depth


def c_element_chain_depth(leaves):
    """Depth of a daisy chain of 2-input C-elements joining *leaves* inputs."""
    if leaves <= 0:
        raise CircuitError("a C-element chain needs at least one leaf")
    return max(leaves - 1, 0)
