"""Component-level simulation of mapped circuits with energy accounting.

The simulator replays the DFS token game with the timing of the mapped
components: each node's delay is taken from the library component it was
mapped to (optionally scaled by a voltage model), marking events charge the
component's per-token switching energy, and leakage accrues with elapsed
time.  This gives measured cycle time, throughput and energy per processed
token for small circuits; the full-chip figures of the evaluation benches are
produced by the analytic model in :mod:`repro.silicon`, which is calibrated
against the same library.
"""

from repro.exceptions import CircuitError
from repro.dfs.nodes import NodeType
from repro.dfs.semantics import EventAction
from repro.circuits.library import default_library
from repro.circuits.mapping import MappingOptions, _component_for_node
from repro.performance.timed import TimedDfsSimulator


class SimulationStats:
    """Result of a circuit-level simulation run."""

    def __init__(self, elapsed_ns, tokens, dynamic_energy_pj, leakage_energy_pj,
                 events, observed):
        self.elapsed_ns = float(elapsed_ns)
        self.tokens = int(tokens)
        self.dynamic_energy_pj = float(dynamic_energy_pj)
        self.leakage_energy_pj = float(leakage_energy_pj)
        self.events = int(events)
        self.observed = observed

    @property
    def energy_pj(self):
        """Total energy (switching plus leakage) in picojoules."""
        return self.dynamic_energy_pj + self.leakage_energy_pj

    @property
    def energy_per_token_pj(self):
        if self.tokens == 0:
            return float("inf")
        return self.energy_pj / self.tokens

    @property
    def cycle_time_ns(self):
        """Average time between tokens at the observation register."""
        if self.tokens == 0:
            return float("inf")
        return self.elapsed_ns / self.tokens

    @property
    def throughput_mhz(self):
        """Token rate in MHz (tokens per microsecond times 1000 / 1000)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return 1e3 * self.tokens / self.elapsed_ns

    def __repr__(self):
        return ("SimulationStats(elapsed={:.4g}ns, tokens={}, cycle={:.4g}ns, "
                "energy/token={:.4g}pJ)").format(
                    self.elapsed_ns, self.tokens, self.cycle_time_ns,
                    self.energy_per_token_pj)


class CircuitSimulator:
    """Timed simulation of a DFS model with mapped-component timing and energy."""

    def __init__(self, dfs, library=None, options=None, delay_scale=1.0,
                 energy_scale=1.0, leakage_scale=1.0, choice_policy=None, seed=0):
        """Create a circuit simulator.

        Parameters
        ----------
        dfs:
            The DFS model whose mapped circuit is simulated.
        library / options:
            Component library and mapping options (defaults match
            :func:`repro.circuits.mapping.map_dfs_to_netlist`).
        delay_scale / energy_scale / leakage_scale:
            Scale factors applied to the nominal-voltage figures; a
            :class:`repro.silicon.voltage.VoltageModel` provides consistent
            triples of these for any supply voltage.
        choice_policy:
            Optional policy resolving non-deterministic control choices.
        """
        self.dfs = dfs
        self.library = library or default_library()
        self.options = options or MappingOptions()
        self.delay_scale = float(delay_scale)
        self.energy_scale = float(energy_scale)
        self.leakage_scale = float(leakage_scale)
        self._component_of = {}
        self._timed = self._build_timed_simulator(choice_policy, seed)

    def _build_timed_simulator(self, choice_policy, seed):
        # Work on a copy so that the caller's model keeps its abstract delays.
        timed_model = self.dfs.copy("{}_timed".format(self.dfs.name))
        total_leakage = 0.0
        for name in sorted(timed_model.nodes):
            component_name = _component_for_node(self.dfs, name, self.library, self.options)
            component = self.library.component(component_name)
            self._component_of[name] = component
            node = timed_model.node(name)
            if node.node_type is NodeType.LOGIC:
                node.delay = component.forward_delay * self.delay_scale
            else:
                # A register event (mark or unmark) is half of its cycle.
                node.delay = 0.5 * component.cycle_delay * self.delay_scale
            total_leakage += component.leakage
        self.total_leakage_nw = total_leakage * self.leakage_scale
        return TimedDfsSimulator(timed_model, choice_policy=choice_policy, seed=seed)

    def run(self, observed, token_goal=20, max_events=200000):
        """Run until *token_goal* tokens pass through *observed*; return stats."""
        if observed not in self.dfs.register_nodes:
            raise CircuitError("unknown observation register: {!r}".format(observed))
        run = self._timed.run(observed, token_goal=token_goal, max_events=max_events)
        dynamic = 0.0
        marking_actions = {EventAction.MARK, EventAction.MARK_TRUE, EventAction.MARK_FALSE}
        for _, event_name in run.fired_events:
            event = self._timed.events[event_name]
            if event.action in marking_actions:
                component = self._component_of[event.node]
                dynamic += component.energy_per_token * self.energy_scale
        # leakage power [nW] * time [ns] = 1e-9 W * 1e-9 s = 1e-18 J = 1e-6 pJ.
        leakage = self.total_leakage_nw * run.elapsed * 1e-6
        return SimulationStats(
            elapsed_ns=run.elapsed,
            tokens=run.tokens_at_observed,
            dynamic_energy_pj=dynamic,
            leakage_energy_pj=leakage,
            events=len(run.fired_events),
            observed=observed,
        )
