"""A behavioural NCL-D component library with area / delay / energy figures.

The figures are *representative* of a 90 nm low-power CMOS process at the
nominal 1.2 V supply: they are not the (unpublished) characterisation data of
the paper's standard cells, but they are internally consistent and calibrated
so that the assembled OPE pipelines land close to the silicon measurements
reported in the paper (1.22 s / 2.74 mJ for 16 M items on the 18-stage static
pipeline at 1.2 V).  All delays are in nanoseconds, energies in picojoules,
areas in square micrometres and leakage in nanowatts.
"""

from repro.exceptions import CircuitError


class Cell:
    """A leaf standard cell."""

    def __init__(self, name, area, delay, energy, leakage, description=""):
        self.name = name
        self.area = float(area)
        self.delay = float(delay)
        self.energy = float(energy)
        self.leakage = float(leakage)
        self.description = description

    def __repr__(self):
        return "Cell({!r}, delay={}ns, energy={}pJ)".format(self.name, self.delay, self.energy)


class Component:
    """A pre-built dual-rail component (register, comparator, adder, ...).

    Components are what the direct mapping instantiates for DFS nodes; their
    figures are aggregates over the cells they are built from.
    """

    def __init__(self, name, kind, width, area, forward_delay, cycle_delay,
                 energy_per_token, leakage, cells=None, description=""):
        self.name = name
        self.kind = kind
        self.width = int(width)
        self.area = float(area)
        self.forward_delay = float(forward_delay)
        self.cycle_delay = float(cycle_delay)
        self.energy_per_token = float(energy_per_token)
        self.leakage = float(leakage)
        self.cells = dict(cells or {})
        self.description = description

    def __repr__(self):
        return "Component({!r}, kind={!r}, width={})".format(self.name, self.kind, self.width)


class CellLibrary:
    """A named collection of cells and components."""

    def __init__(self, name, nominal_voltage=1.2, process="generic-90nm-lp"):
        self.name = name
        self.nominal_voltage = float(nominal_voltage)
        self.process = process
        self._cells = {}
        self._components = {}

    # -- population ---------------------------------------------------------------

    def add_cell(self, cell):
        if cell.name in self._cells:
            raise CircuitError("duplicate cell: {!r}".format(cell.name))
        self._cells[cell.name] = cell
        return cell

    def add_component(self, component):
        if component.name in self._components:
            raise CircuitError("duplicate component: {!r}".format(component.name))
        self._components[component.name] = component
        return component

    # -- lookup ----------------------------------------------------------------------

    @property
    def cells(self):
        return dict(self._cells)

    @property
    def components(self):
        return dict(self._components)

    def cell(self, name):
        try:
            return self._cells[name]
        except KeyError:
            raise CircuitError("unknown cell: {!r}".format(name))

    def component(self, name):
        try:
            return self._components[name]
        except KeyError:
            raise CircuitError("unknown component: {!r}".format(name))

    def has_component(self, name):
        return name in self._components

    def components_of_kind(self, kind):
        return [c for c in self._components.values() if c.kind == kind]

    def __repr__(self):
        return "CellLibrary({!r}, cells={}, components={})".format(
            self.name, len(self._cells), len(self._components))


def _populate_cells(library):
    """Leaf cells (NCL threshold gates, C-elements, latches)."""
    cells = [
        Cell("TH12", 6.0, 0.08, 0.010, 0.6, "OR-like threshold gate"),
        Cell("TH22", 7.5, 0.10, 0.012, 0.7, "2-input C-element"),
        Cell("TH23", 9.5, 0.12, 0.015, 0.9, "2-of-3 threshold gate"),
        Cell("TH33", 10.5, 0.14, 0.016, 1.0, "3-input C-element"),
        Cell("TH34", 13.0, 0.16, 0.020, 1.2, "3-of-4 threshold gate"),
        Cell("TH44", 14.0, 0.18, 0.022, 1.3, "4-input C-element"),
        Cell("INV", 2.0, 0.03, 0.003, 0.2, "inverter"),
        Cell("NOR2", 3.5, 0.05, 0.005, 0.3, "2-input NOR"),
        Cell("NAND2", 3.5, 0.05, 0.005, 0.3, "2-input NAND"),
        Cell("DRLATCH", 16.0, 0.20, 0.030, 1.5, "dual-rail latch bit"),
    ]
    for cell in cells:
        library.add_cell(cell)


def _populate_components(library, data_width=16):
    """Pre-built NCL-D dual-rail components used by the OPE design."""
    w = data_width
    components = [
        # Registers: plain, control, push and pop variants (Fig. 2 node types).
        Component("dr_register", "register", w, area=18.0 * w,
                  forward_delay=0.45, cycle_delay=1.8,
                  energy_per_token=0.030 * w, leakage=1.6 * w,
                  cells={"DRLATCH": w, "TH22": w, "TH12": 2},
                  description="dual-rail data register with completion detection"),
        Component("ctrl_register", "control", 1, area=40.0,
                  forward_delay=0.50, cycle_delay=1.9,
                  energy_per_token=0.060, leakage=3.0,
                  cells={"DRLATCH": 1, "TH22": 3, "TH12": 2},
                  description="control register holding a True/False token"),
        Component("push_register", "push", w, area=20.0 * w + 30.0,
                  forward_delay=0.50, cycle_delay=1.9,
                  energy_per_token=0.032 * w + 0.05, leakage=1.7 * w + 2.0,
                  cells={"DRLATCH": w, "TH22": w + 2, "TH23": 2},
                  description="push register: static when true-controlled, token sink otherwise"),
        Component("pop_register", "pop", w, area=20.0 * w + 30.0,
                  forward_delay=0.50, cycle_delay=1.9,
                  energy_per_token=0.032 * w + 0.05, leakage=1.7 * w + 2.0,
                  cells={"DRLATCH": w, "TH22": w + 2, "TH23": 2},
                  description="pop register: static when true-controlled, token source otherwise"),
        # Datapath logic.
        Component("dr_comparator", "logic", w, area=14.0 * w,
                  forward_delay=1.10, cycle_delay=2.2,
                  energy_per_token=0.045 * w, leakage=1.2 * w,
                  cells={"TH23": 2 * w, "TH12": w},
                  description="dual-rail magnitude comparator"),
        Component("dr_adder", "logic", w, area=16.0 * w,
                  forward_delay=1.30, cycle_delay=2.6,
                  energy_per_token=0.055 * w, leakage=1.4 * w,
                  cells={"TH23": 2 * w, "TH34": w},
                  description="dual-rail ripple-carry adder"),
        Component("dr_incrementer", "logic", w, area=9.0 * w,
                  forward_delay=0.80, cycle_delay=1.6,
                  energy_per_token=0.028 * w, leakage=0.8 * w,
                  cells={"TH22": w, "TH12": w},
                  description="dual-rail incrementer (rank update)"),
        Component("dr_function", "logic", w, area=12.0 * w,
                  forward_delay=1.00, cycle_delay=2.0,
                  energy_per_token=0.040 * w, leakage=1.0 * w,
                  cells={"TH23": w, "TH12": w},
                  description="generic dual-rail combinational function"),
        # Synchronisation and completion detection.
        Component("c_element", "sync", 1, area=7.5,
                  forward_delay=1.67, cycle_delay=1.67,
                  energy_per_token=0.012, leakage=0.7,
                  cells={"TH22": 1},
                  description="2-input C-element used in synchronisation chains/trees"),
        Component("completion_detector", "sync", w, area=5.0 * w,
                  forward_delay=0.60, cycle_delay=0.60,
                  energy_per_token=0.015 * w, leakage=0.5 * w,
                  cells={"TH12": w, "TH22": w - 1 if w > 1 else 1},
                  description="completion detection tree over a dual-rail word"),
        # Chip infrastructure (Fig. 8a).
        Component("lfsr16", "infrastructure", 16, area=420.0,
                  forward_delay=0.90, cycle_delay=1.8,
                  energy_per_token=0.55, leakage=22.0,
                  cells={"DRLATCH": 16, "NAND2": 8, "INV": 4},
                  description="16-bit linear-feedback shift register stimulus generator"),
        Component("accumulator32", "infrastructure", 32, area=820.0,
                  forward_delay=1.40, cycle_delay=2.8,
                  energy_per_token=1.10, leakage=40.0,
                  cells={"DRLATCH": 32, "TH23": 32},
                  description="32-bit checksum accumulator"),
        Component("mux2", "infrastructure", w, area=4.0 * w,
                  forward_delay=0.25, cycle_delay=0.5,
                  energy_per_token=0.008 * w, leakage=0.3 * w,
                  cells={"NAND2": 3 * w},
                  description="2-way multiplexer (mode / config steering)"),
    ]
    for component in components:
        library.add_component(component)


def default_library(data_width=16):
    """Build the default NCL-D component library used by the mapping."""
    library = CellLibrary("ncl-d-90nm-lp", nominal_voltage=1.2)
    _populate_cells(library)
    _populate_components(library, data_width=data_width)
    return library
