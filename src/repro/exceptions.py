"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A structural problem in a model (duplicate names, dangling edges...)."""


class SimulationError(ReproError):
    """An error raised during simulation (no enabled events, bad input...)."""


class VerificationError(ReproError):
    """An error raised by the verification engine."""


class CompilationError(ReproError):
    """A Petri net cannot be compiled to the bitmask reachability engine."""


class SafenessOverflowError(CompilationError):
    """A firing produced a second token into a place of a compiled net.

    The compiled engine represents 1-safe markings only; callers catch this
    to fall back to the explicit multiset explorer.
    """

    def __init__(self, transition, place):
        self.transition = transition
        self.place = place
        super().__init__(
            "firing {!r} produces a second token into place {!r}; "
            "the net is not 1-safe".format(transition, place)
        )


class SolverError(VerificationError):
    """An external SMT solver process failed or broke protocol."""


class SolverUnavailableError(SolverError):
    """The optional SMT solver binary is not available.

    Carries an actionable message (which binary, how to install it or which
    environment variable disabled it); the solver-backed checkers catch this
    to skip cleanly, and the CLI turns it into an exit-2 diagnostic.
    """


class SolverTimeoutError(SolverError):
    """An SMT solver query exceeded its wall-clock budget (process killed)."""


class TranslationError(ReproError):
    """An error raised while translating between formalisms."""


class SerializationError(ReproError):
    """An error raised while reading or writing model files."""


class ReachSyntaxError(ReproError):
    """A syntax error in a Reach property expression."""


class ReachEvaluationError(ReproError):
    """A semantic error while evaluating a Reach property expression."""


class MappingError(ReproError):
    """An error raised by the DFS-to-circuit technology mapping."""


class CircuitError(ReproError):
    """An error raised by the circuit netlist or its simulation."""


class ConfigurationError(ReproError):
    """An invalid pipeline or chip configuration."""


class MeasurementError(ReproError):
    """An error raised by the silicon measurement harness."""
