"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A structural problem in a model (duplicate names, dangling edges...)."""


class SimulationError(ReproError):
    """An error raised during simulation (no enabled events, bad input...)."""


class VerificationError(ReproError):
    """An error raised by the verification engine."""


class TranslationError(ReproError):
    """An error raised while translating between formalisms."""


class SerializationError(ReproError):
    """An error raised while reading or writing model files."""


class ReachSyntaxError(ReproError):
    """A syntax error in a Reach property expression."""


class ReachEvaluationError(ReproError):
    """A semantic error while evaluating a Reach property expression."""


class MappingError(ReproError):
    """An error raised by the DFS-to-circuit technology mapping."""


class CircuitError(ReproError):
    """An error raised by the circuit netlist or its simulation."""


class ConfigurationError(ReproError):
    """An invalid pipeline or chip configuration."""


class MeasurementError(ReproError):
    """An error raised by the silicon measurement harness."""
