"""Shared utilities: naming, graph algorithms and serialization helpers."""

from repro.utils.naming import NameRegistry, is_valid_name, make_unique
from repro.utils.graphs import (
    enumerate_simple_cycles,
    reachable_from,
    strongly_connected_components,
    topological_order,
)
from repro.utils.serialization import dump_json, load_json

__all__ = [
    "NameRegistry",
    "is_valid_name",
    "make_unique",
    "enumerate_simple_cycles",
    "reachable_from",
    "strongly_connected_components",
    "topological_order",
    "dump_json",
    "load_json",
]
