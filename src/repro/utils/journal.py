"""An append-only write-ahead log of JSON records, tolerant of torn tails.

This is the durability layer under the campaign scheduler's ticket store
(:mod:`repro.campaign.scheduler`): every lifecycle event is appended here
*before* it takes effect in memory, so a ``kill -9`` of the daemon loses at
most the record being written -- never an acknowledged one.

The format is deliberately boring.  A journal is a directory of segment
files (``wal-0000000001.log``, ...); each record is framed as::

    <payload length, 4 bytes LE> <crc32(payload), 4 bytes LE> <payload>

where the payload is :func:`~repro.utils.diskcache.canonical_json` encoded
as UTF-8.  Appends are fsync'd before returning, segments rotate at a size
threshold (the finished segment and the directory entry are fsync'd on
rotation), and the reader stops at the first torn or corrupt record instead
of failing -- a half-written tail is the expected crash artefact, not an
error.  Reopening a journal for writing physically truncates that torn
tail, so the next append lands on a clean record boundary.
"""

import json
import os
import re
import struct
import threading
import zlib

from .diskcache import canonical_json

#: ``<payload length> <crc32(payload)>``, both unsigned 32-bit little-endian.
_HEADER = struct.Struct("<II")

#: Rotation threshold: a segment that has grown past this many bytes is
#: finished (fsync'd) and a fresh one is started by the next append.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^wal-(\d{10})\.log$")


def _segment_name(serial):
    return "wal-{:010d}.log".format(serial)


def _fsync_directory(directory):
    """Flush the directory entry so a fresh segment survives a crash."""
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(descriptor)


def list_segments(directory):
    """The journal's segment paths in append order (may be empty)."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _, path in sorted(found)]


def _scan_segment(path):
    """Yield ``(offset, record)`` pairs up to the first torn/corrupt record.

    Returns the list of decoded records and the byte offset of the first
    frame that failed to decode (== file size when the segment is clean).
    """
    records = []
    offset = 0
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return records, 0, False
    size = len(data)
    while offset + _HEADER.size <= size:
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return records, offset, True  # torn tail: frame overruns the file
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
            return records, offset, True  # bit rot: checksum mismatch
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, ValueError):
            return records, offset, True
        offset = end
    # A dangling partial header is torn as well.
    return records, offset, offset != size


def read_journal(directory):
    """Every intact record in the journal, in append order.

    Reading stops at the first torn or corrupt record: everything before it
    is returned, everything after it (including later segments -- they were
    written after the damage point) is ignored.  A missing directory or an
    empty segment simply contributes no records.
    """
    records = []
    for path in list_segments(directory):
        segment_records, _, damaged = _scan_segment(path)
        records.extend(segment_records)
        if damaged:
            break
    return records


class JournalWriter:
    """Appends framed JSON records to the journal under *directory*.

    Thread-safe: the scheduler appends from both its submit path and its
    supervision thread.  Opening a writer repairs a torn tail (truncating
    the damaged segment at the last intact record) and resumes appending to
    the newest segment, rotating once it exceeds *segment_bytes*.
    """

    def __init__(self, directory, segment_bytes=DEFAULT_SEGMENT_BYTES,
                 fsync=True):
        self.directory = str(directory)
        self.segment_bytes = int(segment_bytes)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._handle = None
        self._offset = 0
        self._serial = 0
        os.makedirs(self.directory, exist_ok=True)
        self._open_tail()

    def _open_tail(self):
        segments = list_segments(self.directory)
        if segments:
            tail = segments[-1]
            self._serial = int(_SEGMENT_RE.match(os.path.basename(tail)).group(1))
            _, intact_end, damaged = _scan_segment(tail)
            self._handle = open(tail, "ab")
            if damaged or intact_end != os.path.getsize(tail):
                # Repair: drop the torn tail so appends stay frame-aligned.
                self._handle.truncate(intact_end)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._offset = intact_end
        else:
            self._serial = 1
            path = os.path.join(self.directory, _segment_name(self._serial))
            self._handle = open(path, "ab")
            self._offset = 0
            _fsync_directory(self.directory)

    def _rotate(self):
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._serial += 1
        path = os.path.join(self.directory, _segment_name(self._serial))
        self._handle = open(path, "ab")
        self._offset = 0
        _fsync_directory(self.directory)

    def append(self, record):
        """Durably append one JSON-able *record*; returns after fsync."""
        payload = canonical_json(record).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        with self._lock:
            if self._handle is None:
                raise ValueError("journal writer is closed")
            if self._offset >= self.segment_bytes:
                self._rotate()
            self._handle.write(frame)
            self._handle.write(payload)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._offset += len(frame) + len(payload)

    def close(self):
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "JournalWriter({!r}, segment={})".format(
            self.directory, self._serial)
