"""A directory of JSON cache entries, written atomically, keyed by hash.

This is the storage layer shared by the campaign verdict cache
(:mod:`repro.campaign.cache`) and the semiflow cache
(:mod:`repro.petri.invariants`): one JSON file per key, written atomically
(temp file + ``os.replace``) so that parallel workers can share a cache
directory without locking, and unreadable or corrupt entries counting as
misses so a damaged cache degrades to recomputation instead of failure.
"""

import hashlib
import json
import os
import tempfile


def canonical_json(payload):
    """Serialise *payload* deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload):
    """Stable hex digest of a JSON-able *payload*."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class JsonDiskCache:
    """A directory of cached JSON payloads, one file per cache key."""

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    @staticmethod
    def key(fingerprint, options_digest):
        """Combine a model fingerprint and an options digest into one key."""
        return hashlib.sha256(
            "{}:{}".format(fingerprint, options_digest).encode("utf-8")
        ).hexdigest()

    def path(self, key):
        return os.path.join(self.directory, key + ".json")

    def get(self, key):
        """Return the cached payload for *key*, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses: the caller then
        recomputes and overwrites them.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key, payload):
        """Store *payload* (a JSON-able value) under *key* atomically."""
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".cache-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, self.path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return key

    def __len__(self):
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))

    def clear(self):
        """Delete every cached entry."""
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    def __repr__(self):
        return "{}({!r}, entries={})".format(
            type(self).__name__, self.directory, len(self))
