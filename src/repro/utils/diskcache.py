"""A directory of JSON cache entries, written atomically, keyed by hash.

This is the storage layer shared by the campaign verdict cache
(:mod:`repro.campaign.cache`) and the semiflow cache
(:mod:`repro.petri.invariants`): one JSON file per key, written atomically
(temp file + ``os.replace``) so that parallel workers can share a cache
directory without locking, and unreadable or corrupt entries counting as
misses so a damaged cache degrades to recomputation instead of failure.

Two serving-stack primitives live here as well:

* :meth:`JsonDiskCache.namespace` derives an isolated sub-cache (one
  subdirectory per namespace) -- the per-tenant verdict caches of the
  verification service are namespaces of one cache root, so tenants can
  never observe each other's entries while sharing one storage tree.
* :class:`SingleFlight` coalesces concurrent computations of one cache
  key: the first caller becomes the *leader* and actually computes, every
  concurrent caller of the same key attaches to the leader's flight and is
  answered by the leader's result -- the classic anti-stampede pattern in
  front of a content-addressed cache.
"""

import hashlib
import json
import os
import tempfile
import threading


def canonical_json(payload):
    """Serialise *payload* deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload):
    """Stable hex digest of a JSON-able *payload*."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def safe_segment(name):
    """A filesystem-safe directory segment for a caller-supplied *name*.

    Alphanumerics, dash, underscore and dot pass through; anything else
    (path separators, a leading dot, an empty name, exotic unicode) is
    replaced by a stable hash-suffixed form so distinct names can never
    collide into one directory or escape the cache root.
    """
    name = str(name)
    cleaned = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in name)
    if cleaned == name and name and not name.startswith("."):
        return name
    suffix = hashlib.sha256(name.encode("utf-8")).hexdigest()[:12]
    return "{}-{}".format(cleaned.lstrip(".") or "ns", suffix)


class JsonDiskCache:
    """A directory of cached JSON payloads, one file per cache key."""

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    @staticmethod
    def key(fingerprint, options_digest):
        """Combine a model fingerprint and an options digest into one key."""
        return hashlib.sha256(
            "{}:{}".format(fingerprint, options_digest).encode("utf-8")
        ).hexdigest()

    def path(self, key):
        return os.path.join(self.directory, key + ".json")

    def get(self, key):
        """Return the cached payload for *key*, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses: the caller then
        recomputes and overwrites them.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key, payload):
        """Store *payload* (a JSON-able value) under *key* atomically."""
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".cache-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, self.path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return key

    def __len__(self):
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))

    def clear(self):
        """Delete every cached entry."""
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    def namespace(self, *parts):
        """An isolated sub-cache rooted at ``<directory>/<part>/...``.

        Each *part* is sanitised with :func:`safe_segment`, so namespaces
        derived from caller-supplied names (service tenants) can neither
        collide nor escape the cache root.  The sub-cache is the same class
        as *self* (a namespaced :class:`ResultCache` is a ResultCache).
        """
        return type(self)(os.path.join(
            self.directory, *[safe_segment(part) for part in parts]))

    def __repr__(self):
        return "{}({!r}, entries={})".format(
            type(self).__name__, self.directory, len(self))


class Flight:
    """One in-progress computation of a single-flight key.

    The leader eventually calls :meth:`resolve` (or :meth:`fail`); every
    subscriber registered before or after that point is called exactly once
    with the flight.  ``result``/``error`` stay stable after resolution.
    """

    __slots__ = ("key", "result", "error", "_event", "_lock", "_callbacks")

    def __init__(self, key):
        self.key = key
        self.result = None
        self.error = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks = []

    @property
    def done(self):
        return self._event.is_set()

    def subscribe(self, callback):
        """Call *callback(flight)* on resolution (immediately if resolved)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _finish(self, result, error):
        with self._lock:
            if self._event.is_set():
                raise RuntimeError(
                    "flight {!r} resolved twice".format(self.key))
            self.result = result
            self.error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for callback in callbacks:
            callback(self)

    def resolve(self, result):
        """Deliver the leader's *result* to every subscriber."""
        self._finish(result, None)

    def fail(self, error):
        """Deliver the leader's failure to every subscriber."""
        self._finish(None, error)

    def wait(self, timeout=None):
        """Block until resolution; return ``result`` (raises on ``fail``)."""
        if not self._event.wait(timeout):
            raise TimeoutError("flight {!r} still in progress".format(self.key))
        if self.error is not None:
            raise self.error
        return self.result

    def __repr__(self):
        return "Flight({!r}, done={})".format(self.key, self.done)


class SingleFlight:
    """An in-process registry coalescing concurrent work on one key.

    ``acquire(key)`` returns ``(flight, leader)``: the first caller of a
    key gets a fresh flight and ``leader=True`` -- it must eventually call
    ``flight.resolve(...)`` or ``flight.fail(...)``.  Concurrent callers of
    the same key get the *same* flight with ``leader=False`` and simply
    subscribe or wait.  A flight is forgotten the moment it resolves, so
    later acquisitions start a new computation (which is what lets callers
    re-probe a disk cache that the previous leader has since populated).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights = {}

    def acquire(self, key):
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            return flight, True

    def release(self, key):
        """Forget the flight for *key* (before resolving it to subscribers).

        The leader calls this first, then resolves: new acquisitions after
        release start fresh instead of attaching to a finished flight.
        """
        with self._lock:
            return self._flights.pop(key, None)

    def __len__(self):
        with self._lock:
            return len(self._flights)
