"""Helpers for node, place and signal names.

All model elements in the library are addressed by string names (mirroring the
way Workcraft models reference components).  Names must be valid identifiers
extended with dots and square brackets so that hierarchical names such as
``s3.local_in`` or ``stage[4].f`` can be used directly.
"""

import re

_NAME_RE = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*|\[[0-9]+\])*[+-]?$"
)


def is_valid_name(name):
    """Return ``True`` when *name* is a well-formed element name.

    A trailing ``+`` or ``-`` is allowed so that Petri-net transition names in
    the paper's style (``Mt_ctrl+``, ``C_f-``) are valid element names.

    >>> is_valid_name("local_in")
    True
    >>> is_valid_name("s3.local_in")
    True
    >>> is_valid_name("stage[4]")
    True
    >>> is_valid_name("Mt_ctrl+")
    True
    >>> is_valid_name("3bad")
    False
    """
    return isinstance(name, str) and bool(_NAME_RE.match(name))


def make_unique(base, taken):
    """Return *base* if unused, otherwise ``base_1``, ``base_2``, ...

    ``taken`` is any container supporting ``in``.
    """
    if base not in taken:
        return base
    index = 1
    while True:
        candidate = "{}_{}".format(base, index)
        if candidate not in taken:
            return candidate
        index += 1


class NameRegistry:
    """Keeps track of names already used in a model and produces fresh ones."""

    def __init__(self):
        self._taken = set()

    def __contains__(self, name):
        return name in self._taken

    def __len__(self):
        return len(self._taken)

    def register(self, name):
        """Register *name*, raising ``ValueError`` on duplicates or bad names."""
        if not is_valid_name(name):
            raise ValueError("invalid element name: {!r}".format(name))
        if name in self._taken:
            raise ValueError("duplicate element name: {!r}".format(name))
        self._taken.add(name)
        return name

    def fresh(self, base):
        """Register and return a fresh name derived from *base*."""
        name = make_unique(base, self._taken)
        self._taken.add(name)
        return name

    def release(self, name):
        """Remove *name* from the registry (used when deleting elements)."""
        self._taken.discard(name)
