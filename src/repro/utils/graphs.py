"""Thin graph-algorithm layer shared by the DFS and Petri-net packages.

The heavy lifting is delegated to :mod:`networkx`; this module provides a
stable interface over the handful of algorithms the library needs (simple
cycle enumeration for performance analysis, SCCs and reachability for
structural validation) so that the rest of the code never imports networkx
directly.
"""

import networkx as nx


def _as_digraph(edges, nodes=None):
    graph = nx.DiGraph()
    if nodes is not None:
        graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    return graph


def enumerate_simple_cycles(edges, nodes=None, limit=None):
    """Enumerate simple (elementary) cycles of a directed graph.

    Parameters
    ----------
    edges:
        Iterable of ``(src, dst)`` pairs.
    nodes:
        Optional iterable of nodes (to include isolated nodes).
    limit:
        Optional maximum number of cycles to return; ``None`` means all.

    Returns
    -------
    list of lists -- each inner list is the sequence of nodes along one cycle.
    """
    graph = _as_digraph(edges, nodes)
    cycles = []
    for cycle in nx.simple_cycles(graph):
        cycles.append(list(cycle))
        if limit is not None and len(cycles) >= limit:
            break
    return cycles


def strongly_connected_components(edges, nodes=None):
    """Return the list of SCCs (each a ``set`` of nodes) of a directed graph."""
    graph = _as_digraph(edges, nodes)
    return [set(component) for component in nx.strongly_connected_components(graph)]


def reachable_from(edges, sources, nodes=None):
    """Return the set of nodes reachable from any node in *sources*."""
    graph = _as_digraph(edges, nodes)
    reached = set()
    for source in sources:
        if source not in graph:
            continue
        reached.add(source)
        reached.update(nx.descendants(graph, source))
    return reached


def topological_order(edges, nodes=None):
    """Return a topological ordering, or ``None`` if the graph has a cycle."""
    graph = _as_digraph(edges, nodes)
    try:
        return list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible:
        return None
