"""Deterministic fault injection for the crash-recovery test tier.

Faults are declared in the ``REPRO_FAULTS`` environment variable as a
comma-separated list of specs::

    REPRO_FAULTS=kill_worker@level=3,solver_crash:p=0.5,io_error@write=7

Each spec names a fault site that the production code guards with
:func:`trigger`; a spec fires either

* on the *n*-th hit of a named counter -- ``kill_worker@level=3`` fires the
  third time exploration reaches a ``level`` fault point, or
* probabilistically -- ``solver_crash:p=0.5`` fires on roughly half the
  hits, decided by a hash of ``(seed, name, site, hit count)`` so a given
  ``REPRO_FAULTS_SEED`` reproduces the exact same fault schedule.

The environment is read once per process (workers inherit it through
``fork``/``spawn``), and :func:`trigger` is a cheap no-op -- one global
``None`` check -- when no faults are configured, so the guarded hot paths
pay nothing in production.
"""

import hashlib
import os
import threading

__all__ = ["FaultError", "FaultPlan", "trigger", "reset"]

#: Counter name used when a fault point does not name a site explicitly.
_DEFAULT_SITE = "hit"


class FaultError(OSError):
    """The error raised by non-lethal injected faults (e.g. ``io_error``)."""


class _FaultSpec:
    __slots__ = ("name", "site", "nth", "probability")

    def __init__(self, name, site, nth, probability):
        self.name = name
        self.site = site
        self.nth = nth
        self.probability = probability

    def matches(self, name, site):
        if self.name != name:
            return False
        return self.site is None or self.site == site

    def fires(self, seed, site, count):
        if self.nth is not None:
            return count == self.nth
        material = "{}:{}:{}:{}".format(seed, self.name, site, count)
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.probability


def _parse_spec(text):
    """One spec: ``name[@site=N][:p=F]`` -> :class:`_FaultSpec`."""
    text = text.strip()
    if not text:
        return None
    probability = None
    if ":" in text:
        text, _, tail = text.partition(":")
        key, _, value = tail.partition("=")
        if key.strip() != "p":
            raise ValueError("unknown fault option {!r}".format(tail))
        probability = float(value)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("fault probability {} not in [0, 1]".format(value))
    site = None
    nth = None
    if "@" in text:
        text, _, tail = text.partition("@")
        key, _, value = tail.partition("=")
        site = key.strip()
        if value:
            nth = int(value)
            if nth < 1:
                raise ValueError(
                    "fault counter {!r} must be >= 1".format(tail))
        elif probability is None:
            # A bare @site is only meaningful as a probability restriction
            # (name@site:p=F); a counter spec must say which hit.
            raise ValueError("fault counter {!r} needs =N".format(tail))
    name = text.strip()
    if not name:
        raise ValueError("fault spec with no name")
    if nth is None and probability is None:
        nth = 1  # a bare name fires on its first hit
    return _FaultSpec(name, site, nth, probability)


class FaultPlan:
    """A parsed fault schedule with per-``(name, site)`` hit counters."""

    def __init__(self, specs, seed=0):
        self.specs = [spec for spec in specs if spec is not None]
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._counts = {}

    @classmethod
    def parse(cls, text, seed=0):
        specs = [_parse_spec(part) for part in str(text).split(",")]
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls, environ=None):
        """The plan configured by ``REPRO_FAULTS``, or ``None``."""
        environ = os.environ if environ is None else environ
        text = environ.get("REPRO_FAULTS", "").strip()
        if not text:
            return None
        seed = int(environ.get("REPRO_FAULTS_SEED", "0") or "0")
        return cls.parse(text, seed=seed)

    def trigger(self, name, site=None):
        """Record one hit of fault point *name*; ``True`` if a fault fires."""
        site = _DEFAULT_SITE if site is None else str(site)
        with self._lock:
            key = (name, site)
            count = self._counts.get(key, 0) + 1
            self._counts[key] = count
        fired = False
        for spec in self.specs:
            if spec.matches(name, site) and spec.fires(self.seed, site, count):
                fired = True
        return fired

    def counts(self):
        with self._lock:
            return dict(self._counts)

    def __repr__(self):
        parts = ["{}@{}".format(spec.name, spec.site or _DEFAULT_SITE)
                 for spec in self.specs]
        return "FaultPlan([{}], seed={})".format(", ".join(parts), self.seed)


#: The process-wide plan: unset until the first :func:`trigger` call, then
#: either a :class:`FaultPlan` or ``False`` (parsed, nothing configured).
_PLAN = None
_PLAN_LOCK = threading.Lock()


def _plan():
    global _PLAN
    if _PLAN is None:
        with _PLAN_LOCK:
            if _PLAN is None:
                _PLAN = FaultPlan.from_env() or False
    return _PLAN


def trigger(name, site=None):
    """``True`` when the configured plan fires fault *name* at *site*.

    The caller decides what a firing means: the supervised pool SIGKILLs
    the worker, the solver shim kills the z3 child, the spill layer raises
    :class:`FaultError` from the write path.  With no ``REPRO_FAULTS`` in
    the environment this is a single global check.
    """
    plan = _plan()
    if not plan:
        return False
    return plan.trigger(name, site)


def reset():
    """Forget the cached plan so the next trigger re-reads the environment.

    Test-only: lets one process flip ``REPRO_FAULTS`` between cases.
    """
    global _PLAN
    with _PLAN_LOCK:
        _PLAN = None
