"""JSON helpers used by the model serializers.

All on-disk model formats in this library are JSON documents with a
``"format"`` and ``"version"`` header so that files are self-describing, in
the spirit of Workcraft ``.work`` files.
"""

import json
import os

from repro.exceptions import SerializationError


def dump_json(document, path=None, indent=2):
    """Serialize *document* to JSON.

    When *path* is given the document is written to that file (creating parent
    directories as needed) and the path is returned; otherwise the JSON text
    is returned.
    """
    text = json.dumps(document, indent=indent, sort_keys=False)
    if path is None:
        return text
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def load_json(source):
    """Load a JSON document from a file path or a JSON string.

    Raises :class:`~repro.exceptions.SerializationError` on malformed input.
    """
    text = source
    if isinstance(source, str) and os.path.exists(source):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        return json.loads(text)
    except (TypeError, ValueError) as error:
        raise SerializationError("malformed JSON document: {}".format(error))


def expect_format(document, expected_format):
    """Check the ``format`` header of a loaded document."""
    actual = document.get("format") if isinstance(document, dict) else None
    if actual != expected_format:
        raise SerializationError(
            "expected a {!r} document, found {!r}".format(expected_format, actual)
        )
    return document
